"""Exception-flow rule (interprocedural successor of ``rules_errors``).

PR 3/4 unified failure handling behind two roots — ``net/errors.py``'s
``RpcError`` tree and ``fs/errors.py``'s ``FsError`` tree — so that
every retry/abort/rollback path can catch one ancestor.  The old rule
only saw *direct* ``raise`` statements inside ``net/``, ``fs/`` and
``migration/``; a handler calling a kernel helper that raises
``RuntimeError`` three frames down sailed straight past it and past
``except RpcError`` at runtime.

This rule propagates raised exception types transitively along the call
graph (:func:`~repro.analysis.dataflow.exception_escapes`, with
hierarchy-aware ``try/except`` filtering) and checks them at the
*entry points* whose contract the hierarchy is: every function defined
under ``net/``, ``fs/``, ``migration/`` or ``checkpoint/`` (RPC plumbing,
txn steps, checkpoint daemons) plus every registered RPC handler
wherever it lives.  An escaping builtin outside the allowed
programmer-error set is reported at the *raise site* that originates
it, so the fix (derive from RpcError/FsError) and any justifying pragma
land where the code is.

As before, ``ValueError``/``TypeError``/``NotImplementedError``/
``AssertionError``/``KeyError``/``StopIteration`` signal bugs in the
simulation itself and are allowed to crash loudly anywhere.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, Iterable, List, Set, Tuple

from .callgraph import CallGraph, FunctionNode
from .core import Finding, Rule, Tree, register_rule
from .dataflow import exception_escapes

__all__ = ["ExceptionFlowRule"]

_SCOPED_DIRS = ("net/", "fs/", "migration/", "checkpoint/")
_HIERARCHY_FILES = ("net/errors.py", "fs/errors.py")

#: builtins that indicate a bug in the code, not a simulated failure —
#: these should crash the run loudly and are allowed anywhere.
_ALLOWED_BUILTINS = {
    "ValueError",
    "TypeError",
    "NotImplementedError",
    "AssertionError",
    "KeyError",
    "StopIteration",
}


def _builtin_exceptions() -> Set[str]:
    names = set()
    for name in dir(builtins):
        obj = getattr(builtins, name)
        if isinstance(obj, type) and issubclass(obj, BaseException):
            names.add(name)
    return names


def compliant_classes(tree: Tree) -> Set[str]:
    """Classes in the declared hierarchies plus everything transitively
    deriving from one, wherever it is defined."""
    bases: Dict[str, Set[str]] = {}
    seeds: Set[str] = set()
    for module in tree.parsed():
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = {
                base.id if isinstance(base, ast.Name) else base.attr
                for base in node.bases
                if isinstance(base, (ast.Name, ast.Attribute))
            }
            bases[node.name] = base_names
            if module.rel in _HIERARCHY_FILES:
                seeds.add(node.name)
    compliant = set(seeds)
    changed = True
    while changed:
        changed = False
        for name, base_names in bases.items():
            if name not in compliant and base_names & compliant:
                compliant.add(name)
                changed = True
    return compliant


def _entry_points(tree: Tree, graph: CallGraph) -> List[FunctionNode]:
    """Scoped-dir functions plus registered RPC handlers, sorted."""
    entries: Dict[Tuple[str, str], FunctionNode] = {}
    for fn in graph.functions.values():
        if fn.rel.startswith(_SCOPED_DIRS):
            entries[fn.key] = fn
    # handlers registered anywhere: port.register("name", self._handler)
    refs: Dict[int, List[FunctionNode]] = {}
    for edge in graph.edges:
        if edge.kind == "ref":
            refs.setdefault(id(edge.site), []).append(edge.callee)
    for module in tree.parsed():
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr == "register"
            ):
                continue
            for arg in node.args:
                for handler in refs.get(id(arg), []):
                    entries[handler.key] = handler
    return [entries[key] for key in sorted(entries)]


class ExceptionFlowRule(Rule):
    id = "exception-flow"
    description = (
        "Exceptions escaping net/, fs/, migration/ and checkpoint/ "
        "entry points (transitively, through every callee) must belong "
        "to the RpcError / FsError hierarchies or the programmer-error "
        "builtins."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        compliant = compliant_classes(tree)
        if not compliant:
            return  # fixture tree with no hierarchy files: rule is inert
        banned = _builtin_exceptions() - _ALLOWED_BUILTINS
        graph = tree.callgraph()
        escapes = exception_escapes(graph)
        reported: Set[Tuple[str, int, str]] = set()
        for entry in _entry_points(tree, graph):
            for name, (rel, line) in sorted(escapes[entry.key].items()):
                if name in compliant or name not in banned:
                    continue
                site = (rel, line, name)
                if site in reported:
                    continue
                reported.add(site)
                origin = tree.module(rel)
                if origin is None:
                    continue
                in_entry = entry.key == (rel, _qualname_at(graph, rel, line))
                via = (
                    ""
                    if in_entry
                    else f" (escapes `{entry.qualname}` in {entry.rel})"
                )
                yield origin.finding(
                    self.id,
                    line,
                    f"builtin {name} raised here escapes a hierarchy "
                    f"entry point{via}; derive from RpcError "
                    "(net/errors.py) or FsError (fs/errors.py) so "
                    "unified except/retry paths catch it",
                )


def _qualname_at(graph: CallGraph, rel: str, line: int) -> str:
    """Qualname of the function containing (rel, line), best-effort."""
    best = ""
    best_line = -1
    for fn in graph.functions.values():
        if fn.rel != rel:
            continue
        end = getattr(fn.node, "end_lineno", fn.line)
        if fn.line <= line <= (end or fn.line) and fn.line > best_line:
            best, best_line = fn.qualname, fn.line
    return best


register_rule(ExceptionFlowRule())
