"""Error-hierarchy rule.

PR 3/4 unified failure handling behind two roots — ``net/errors.py``'s
``RpcError`` tree and ``fs/errors.py``'s ``FsError`` tree — so that
every retry/abort/rollback path can catch one ancestor.  A module under
``net/``, ``fs/`` or ``migration/`` that raises a bare builtin
(``RuntimeError``, ``OSError``…) punches a hole in that contract: the
exception sails past ``except RpcError`` and aborts the whole task.

The rule builds a cross-tree class table: every class defined in
``net/errors.py`` / ``fs/errors.py`` is a hierarchy member, as is any
class transitively deriving from one (wherever it is defined, e.g.
``MigrationRefused(RpcError)`` in ``migration/mechanism.py``).

Deliberately out of scope: bare ``raise`` (re-raise), raising a
variable, and a small set of programmer-error builtins (``ValueError``,
``TypeError``, ``NotImplementedError``, ``AssertionError``) which
signal bugs in the simulation itself, not simulated failures.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, Iterable, Optional, Set

from .core import Finding, Rule, Tree, register_rule

_SCOPED_DIRS = ("net/", "fs/", "migration/")
_HIERARCHY_FILES = ("net/errors.py", "fs/errors.py")

#: builtins that indicate a bug in the code, not a simulated failure —
#: these should crash the run loudly and are allowed anywhere.
_ALLOWED_BUILTINS = {
    "ValueError",
    "TypeError",
    "NotImplementedError",
    "AssertionError",
    "KeyError",
    "StopIteration",
}


def _builtin_exceptions() -> Set[str]:
    names = set()
    for name in dir(builtins):
        obj = getattr(builtins, name)
        if isinstance(obj, type) and issubclass(obj, BaseException):
            names.add(name)
    return names


class ErrorHierarchyRule(Rule):
    id = "error-hierarchy"
    description = (
        "net/, fs/ and migration/ raise only through the unified "
        "RpcError / FsError hierarchies (plus programmer-error builtins)."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        compliant = self._compliant_classes(tree)
        if not compliant:
            return  # fixture tree with no hierarchy files: rule is inert
        banned_builtins = _builtin_exceptions() - _ALLOWED_BUILTINS
        for module in tree.parsed():
            if not module.rel.startswith(_SCOPED_DIRS):
                continue
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                name = _raised_class_name(node.exc)
                if name is None or name in compliant:
                    continue
                if name in _ALLOWED_BUILTINS:
                    continue
                if name in banned_builtins:
                    yield module.finding(
                        self.id,
                        node,
                        f"raises builtin {name}; derive from RpcError "
                        "(net/errors.py) or FsError (fs/errors.py) so "
                        "unified except/retry paths catch it",
                    )
                # unknown class names (imported helpers, variables) are
                # skipped rather than guessed at

    @staticmethod
    def _compliant_classes(tree: Tree) -> Set[str]:
        bases: Dict[str, Set[str]] = {}
        seeds: Set[str] = set()
        for module in tree.parsed():
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                base_names = {
                    base.id if isinstance(base, ast.Name) else base.attr
                    for base in node.bases
                    if isinstance(base, (ast.Name, ast.Attribute))
                }
                bases[node.name] = base_names
                if module.rel in _HIERARCHY_FILES:
                    seeds.add(node.name)
        compliant = set(seeds)
        changed = True
        while changed:
            changed = False
            for name, base_names in bases.items():
                if name not in compliant and base_names & compliant:
                    compliant.add(name)
                    changed = True
        return compliant


def _raised_class_name(exc: ast.AST) -> Optional[str]:
    """Class name of ``raise X(...)`` / ``raise X``, else None."""
    target = exc.func if isinstance(exc, ast.Call) else exc
    if isinstance(target, ast.Name):
        name = target.id
        # raising a lowercase variable (``raise err``) is a re-raise
        if name[:1].islower():
            return None
        return name
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


register_rule(ErrorHierarchyRule())
