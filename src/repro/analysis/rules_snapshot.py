"""Snapshot-safety rule for spawn factories.

PR 6's snapshot/restore pickles every unstarted :class:`Task` through
its zero-arg *factory* (``spawn(sim, coroutine_fn)``,
``Task(factory=...)``, ``functools.partial(...)`` factories).  Pickle
draws two hard lines the type system doesn't:

* a **lambda or nested closure** as a factory raises at capture time
  (``SnapshotError`` wrapping the pickle failure);
* any code the factory can reach that touches **module-level mutable
  state** silently breaks fork-equals-fresh determinism — the restored
  cluster re-runs the factory against whatever the *current* process
  left in that global, not the snapshotted value (module globals are
  not part of the snapshot).

This rule makes both failures static: every factory-form spawn site is
found, the factory callable is resolved through the call graph
(including ``partial``-wrapped and bound-method factories and callable
class instances via ``__call__``), and the transitive callee closure is
scanned for references to module-level mutable containers/counters —
including pragma-blessed ones, since a deliberate process-wide registry
is precisely what a snapshot cannot carry.

Immediate-generator spawns (``spawn(sim, worker(sim))``) are out of
scope: they have no factory and are rejected by the runtime if a
snapshot ever captures them.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .callgraph import CallGraph, FunctionNode
from .core import Finding, ModuleInfo, Rule, Tree, register_rule

__all__ = ["SnapshotSafetyRule"]


def _is_spawn_call(call: ast.Call) -> Optional[ast.AST]:
    """The factory-candidate argument of a spawn/Task site, if any."""
    func = call.func
    tail = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    if tail == "spawn" and len(call.args) >= 2:
        return call.args[1]
    if tail == "Task":
        for keyword in call.keywords:
            if keyword.arg == "factory":
                return keyword.value
    return None


def _locals_of(func: ast.AST) -> Set[str]:
    """Parameter and locally-assigned names (minus ``global`` decls)."""
    out: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (
            args.posonlyargs + args.args + args.kwonlyargs
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            out.add(arg.arg)
    declared_global: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        out.add(leaf.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    out.add(leaf.id)
    return out - declared_global


class SnapshotSafetyRule(Rule):
    id = "snapshot-safety"
    description = (
        "Spawn factories must survive pickling: no lambda/closure "
        "factories, and nothing reachable from a factory may touch "
        "module-level mutable state."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        graph = tree.callgraph()
        refs: Dict[int, List[FunctionNode]] = {}
        for edge in graph.edges:
            if edge.kind == "ref":
                refs.setdefault(id(edge.site), []).append(edge.callee)
        mutables: Dict[str, Dict[str, int]] = {}
        for module in tree.parsed():
            mutables[module.rel] = graph.module_mutable_globals(module)

        roots: Dict[Tuple[str, str], Tuple[FunctionNode, ModuleInfo,
                                           ast.AST]] = {}
        for module in tree.parsed():
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                factory = _is_spawn_call(node)
                if factory is None:
                    continue
                for finding in self._check_factory(
                    module, graph, refs, node, factory, roots
                ):
                    yield finding

        reported: Set[Tuple[str, int, str]] = set()
        for key in sorted(roots):
            root, site_module, site = roots[key]
            for fn in graph.reachable_from([root]):
                module = tree.module(fn.rel)
                if module is None:
                    continue
                table = mutables.get(fn.rel, {})
                if not table:
                    continue
                shadowed = _locals_of(fn.node)
                for name_node in ast.walk(fn.node):
                    if not isinstance(name_node, ast.Name):
                        continue
                    name = name_node.id
                    if name not in table or name in shadowed:
                        continue
                    item = (fn.rel, name_node.lineno, name)
                    if item in reported:
                        continue
                    reported.add(item)
                    yield module.finding(
                        self.id,
                        name_node,
                        f"`{fn.qualname}` is reachable from the spawn "
                        f"factory `{root.qualname}` "
                        f"({site_module.rel}:{site.lineno}) but touches "
                        f"module-level mutable `{name}` "
                        f"({fn.rel}:{table[name]}); module globals are "
                        "not captured by snapshots, so restore diverges "
                        "from the live run",
                    )

    def _check_factory(
        self,
        module: ModuleInfo,
        graph: CallGraph,
        refs: Dict[int, List[FunctionNode]],
        spawn_call: ast.Call,
        factory: ast.AST,
        roots: Dict[Tuple[str, str], Tuple[FunctionNode, ModuleInfo,
                                           ast.AST]],
    ) -> Iterable[Finding]:
        if isinstance(factory, ast.Lambda):
            yield module.finding(
                self.id,
                factory,
                "lambda spawn factory is not picklable; snapshot capture "
                "raises SnapshotError — use a module-level function or "
                "functools.partial",
            )
            return
        targets = refs.get(id(factory), [])
        for target in targets:
            if target.is_nested:
                yield module.finding(
                    self.id,
                    factory,
                    f"spawn factory `{target.qualname}` is a nested "
                    "function (closure); pickle cannot capture it — "
                    "hoist it to module level or use functools.partial",
                )
                continue
            roots.setdefault(target.key, (target, module, factory))
        if targets or not isinstance(factory, ast.Call):
            return
        # spawn(sim, helper(...)) / Task(factory=make_factory(...)):
        # a Call in factory position either builds a generator (the
        # immediate-gen spawn form — no factory, out of scope) or
        # produces the factory; root at the producer so its partial
        # payload is in the reachable set.
        callees = graph.call_targets(factory)
        if callees and all(c.is_generator for c in callees):
            return
        for callee in callees:
            roots.setdefault(callee.key, (callee, module, factory))
        klass = graph.constructed_class(factory)
        if klass is not None:
            for method in graph.resolve_method(klass.name, "__call__"):
                roots.setdefault(method.key, (method, module, factory))


register_rule(SnapshotSafetyRule())
