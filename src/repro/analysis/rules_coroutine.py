"""Coroutine-protocol rule.

The engine's coroutines are plain generator functions: calling one
builds a generator object and runs *no* body code.  The classic
simulator bug is therefore a call site that treats a coroutine like a
function — ``self.fs.close(stream)`` as a bare statement silently does
nothing, ``yield rpc.call(...)`` hands the scheduler a generator object
instead of an Effect, and ``if port.recv():`` is always true.  Every
one of these compiles, runs, and quietly corrupts the simulation.

Using the call graph, any call whose resolved targets are *all*
generator functions is checked at its use site:

* discarded as an expression statement  →  forgot ``yield from``;
* ``yield f()`` (not ``yield from``)    →  yields the generator object;
* used as a truth value (``if``/``while`` test, ``not f()``) →
  a generator object is always truthy.

Requiring *all* candidates to be generators keeps the name-only
fallback resolution honest: ``obj.close()`` where some tree classes
define a plain ``close`` and others a coroutine ``close`` is ambiguous
and skipped rather than guessed at.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .core import Finding, Rule, Tree, dotted_name, register_rule

__all__ = ["DiscardedCoroutineRule"]


class DiscardedCoroutineRule(Rule):
    id = "coroutine-protocol"
    description = (
        "A call to a coroutine (generator function) must be driven — "
        "`yield from` it, spawn it, or return it; discarding the "
        "generator object or testing its truthiness is a no-op bug."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        graph = tree.callgraph()
        for module in tree.parsed():
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                targets = graph.call_targets(node)
                if not targets or not all(t.is_generator for t in targets):
                    continue
                label = dotted_name(node.func)
                parent = module.parents.get(node)
                if isinstance(parent, ast.Expr):
                    yield module.finding(
                        self.id,
                        node,
                        f"call to coroutine `{label}` discards the "
                        "generator object — no body code runs; drive it "
                        "with `yield from` or spawn it",
                    )
                elif isinstance(parent, ast.Yield):
                    yield module.finding(
                        self.id,
                        node,
                        f"`yield {label}(...)` yields the generator "
                        "object itself; use `yield from` to drive the "
                        "coroutine",
                    )
                elif (
                    isinstance(parent, (ast.If, ast.While))
                    and parent.test is node
                ):
                    yield module.finding(
                        self.id,
                        node,
                        f"coroutine `{label}` used as a condition: a "
                        "generator object is always truthy; drive it "
                        "with `yield from` and test the result",
                    )
                elif isinstance(parent, ast.UnaryOp) and isinstance(
                    parent.op, ast.Not
                ):
                    yield module.finding(
                        self.id,
                        node,
                        f"`not {label}(...)` is always False: the call "
                        "builds a generator object; drive it with "
                        "`yield from` and test the result",
                    )


register_rule(DiscardedCoroutineRule())
