"""Interprocedural wall-clock / entropy taint rule.

``rules_determinism`` flags a *direct* ``time.time()`` in sim code, but
a helper that returns ``time.time()`` laundered the value: the call
site looked clean, the helper lived in an exempt module (or carried a
justifying pragma for its own legitimate use), and the timestamp still
leaked into simulated state — breaking fixed-seed reproducibility two
modules away from the source.

This rule closes that hole with
:func:`~repro.analysis.dataflow.tainted_returns`: a function whose
return value derives from an ambient source (the determinism rules'
wall-clock/entropy table), directly or through any chain of callees, is
*tainted*, and every call to it from simulation code is flagged — at
the call site, pointing back at the originating source line.

A ``determinism-wallclock`` pragma at the source justifies the source's
own use (e.g. wall-clock profiling in ``obs/``); it deliberately does
**not** bless downstream consumption of the value inside the simulation,
so taint flows through pragma'd sources unchanged.

Exempt callers (same boundary as the direct rules): ``obs/``,
``metrics/``, ``workloads/``, ``baselines/``, plus the report/CLI
surface — host-side tooling may consume real time; the simulation may
not.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .core import Finding, ModuleInfo, Rule, Tree, dotted_name, register_rule
from .dataflow import tainted_returns
from .rules_determinism import _WALLCLOCK_SUFFIXES

__all__ = ["TaintedReturnRule"]

_EXEMPT_HEADS = {"obs", "metrics", "workloads", "baselines"}
_EXEMPT_FILES = {"report.py", "cli.py", "__main__.py"}


def _exempt(module: ModuleInfo) -> bool:
    head = module.rel.split("/", 1)[0]
    return head in _EXEMPT_HEADS or module.rel in _EXEMPT_FILES


class TaintedReturnRule(Rule):
    id = "determinism-taint"
    description = (
        "Simulation code must not consume helper functions whose return "
        "value derives from wall-clock or ambient entropy, however many "
        "calls removed from the source."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        graph = tree.callgraph()
        tainted = tainted_returns(graph, _WALLCLOCK_SUFFIXES)
        if not tainted:
            return
        for module in tree.parsed():
            if _exempt(module):
                continue
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                for callee in graph.call_targets(node):
                    origin = tainted.get(callee.key)
                    if origin is None:
                        continue
                    src_rel, src_line = origin
                    yield module.finding(
                        self.id,
                        node,
                        f"`{dotted_name(node.func)}(...)` returns a "
                        "wall-clock/entropy-derived value (source at "
                        f"{src_rel}:{src_line}); sim code must draw "
                        "time from the engine and randomness from named "
                        "rng streams",
                    )
                    break  # one finding per call site


register_rule(TaintedReturnRule())
