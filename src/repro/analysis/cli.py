"""`python -m repro lint` — CLI driver for the invariant linter.

Exit codes: 0 clean (baselined findings count as clean), 1 findings or
parse errors, 2 usage errors (unknown rule id, missing path).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Optional

from .baseline import Baseline, DEFAULT_BASELINE_PATH
from .core import all_rules, default_src_root, run_lint

__all__ = ["add_arguments", "cmd_lint"]

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable findings on stdout",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE",
        help="run only this rule id (repeatable)",
    )
    parser.add_argument(
        "--baseline",
        choices=["update"],
        default=None,
        help="'update': rewrite tools/lint_baseline.json to grandfather "
        "all current findings, then exit 0",
    )
    parser.add_argument(
        "--path",
        default=None,
        metavar="SRC_ROOT",
        help="lint this source tree instead of src/repro "
        "(used by the test fixtures)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the checked-in baseline file",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="build the whole-tree call graph and print the "
        "reachability/dead-code report instead of linting "
        "(--json for a machine-readable dump, --dot for GraphViz)",
    )
    parser.add_argument(
        "--dot",
        action="store_true",
        help="with --graph: emit GraphViz DOT on stdout",
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const="default",
        default=None,
        metavar="CACHE_FILE",
        help="reuse lint results when the tree is unchanged "
        "(content-hash key; default file tools/lint_cache.json)",
    )


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}")
            print(f"    {rule.description}")
        return 0

    src_root = pathlib.Path(args.path) if args.path else default_src_root()
    if not src_root.is_dir():
        print(f"lint: not a directory: {src_root}", file=sys.stderr)
        return 2

    if args.graph:
        return _cmd_graph(args, src_root)

    baseline: Optional[Baseline] = None
    # Fixture trees (--path) never consult the repo baseline.
    use_baseline = args.path is None and not args.no_baseline
    if use_baseline and args.baseline != "update":
        baseline = Baseline.load(DEFAULT_BASELINE_PATH)

    cache_path: Optional[pathlib.Path] = None
    if args.cache is not None:
        from .cache import DEFAULT_CACHE_PATH

        cache_path = (
            DEFAULT_CACHE_PATH
            if args.cache == "default"
            else pathlib.Path(args.cache)
        )

    try:
        result = run_lint(
            src_root,
            rule_ids=args.rule,
            baseline=baseline,
            cache_path=cache_path,
        )
    except KeyError as err:
        print(f"lint: {err.args[0]}", file=sys.stderr)
        return 2

    if args.baseline == "update":
        new_baseline = Baseline.from_findings(result.findings)
        new_baseline.save(DEFAULT_BASELINE_PATH)
        print(
            f"baseline updated: {len(new_baseline)} finding(s) "
            f"grandfathered in {DEFAULT_BASELINE_PATH}"
        )
        return 0

    everything = result.parse_errors + result.findings
    if args.json:
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in everything],
                    "suppressed": result.suppressed,
                    "baselined": result.baselined,
                },
                indent=2,
            )
        )
    else:
        for finding in everything:
            print(
                f"{finding.location(_REPO_ROOT)}: "
                f"[{finding.rule}] {finding.message}"
            )
        if everything:
            print(f"\n{len(everything)} finding(s).")
        else:
            extras = []
            if result.suppressed:
                extras.append(f"{result.suppressed} pragma-suppressed")
            if result.baselined:
                extras.append(f"{result.baselined} baselined")
            suffix = f" ({', '.join(extras)})" if extras else ""
            print(f"lint: clean{suffix}")
    return 1 if everything else 0


def _cmd_graph(args: argparse.Namespace, src_root: pathlib.Path) -> int:
    """``lint --graph``: call-graph dump / dead-code report."""
    from .core import Tree

    tree = Tree.load(src_root)
    graph = tree.callgraph()
    if args.dot:
        sys.stdout.write(graph.to_dot())
    elif args.json:
        print(json.dumps(graph.to_dict(), indent=2))
    else:
        print(graph.render_report())
    return 0
