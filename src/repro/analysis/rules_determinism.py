"""Determinism rules.

The simulator's headline property is that a fixed seed yields a
byte-identical event trace (golden tests in
``tests/golden_engine_determinism.json``).  That only holds if no code
under ``src/repro`` consults wall clocks or ambient randomness, all
randomness flows through named :class:`~repro.sim.random.RandomStreams`
substreams, and nothing iterates an unordered container into the event
schedule or the network.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .core import (
    Finding,
    ModuleInfo,
    Rule,
    Tree,
    dotted_name,
    register_rule,
    resolve_str_arg,
)

#: call targets (matched by dotted-name suffix) that read wall clocks or
#: OS entropy — both vary run-to-run and poison trace fingerprints.
_WALLCLOCK_SUFFIXES = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.monotonic_ns": "wall-clock read",
    "time.perf_counter": "wall-clock read",
    "time.perf_counter_ns": "wall-clock read",
    "datetime.now": "wall-clock read",
    "datetime.utcnow": "wall-clock read",
    "datetime.today": "wall-clock read",
    "date.today": "wall-clock read",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "host/time-derived UUID",
    "uuid.uuid4": "OS-entropy UUID",
}

#: np.random entry points that are fine: explicitly seeded constructors.
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64"}

#: receiver names whose ``.stream(name)`` method is the sanctioned RNG
#: substream accessor (RandomStreams instances around the tree).
_STREAM_RECEIVERS = {"rng", "streams", "random_streams"}

#: effectful calls: reaching one of these from iteration over an
#: unordered container injects that container's order into the event
#: schedule or onto the wire.
_EFFECT_SUFFIXES = {
    "schedule",
    "schedule_many",
    "defer",
    "send",
    "broadcast",
    "transfer",
    "call",
    "spawn",
    "try_put",
    "try_put_batch",
    "put",
    "trigger",
    "fail",
    "interrupt",
    "emit",
}


class WallClockRule(Rule):
    id = "determinism-wallclock"
    description = (
        "No wall-clock, OS-entropy, or UUID reads inside src/repro; "
        "simulated time comes from engine.now."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        for module in tree.parsed():
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                for suffix, what in _WALLCLOCK_SUFFIXES.items():
                    if name == suffix or name.endswith("." + suffix):
                        yield module.finding(
                            self.id,
                            node,
                            f"{name}() is a {what}; use engine.now / "
                            "cluster.rng for anything trace-visible",
                        )
                        break


class GlobalRandomRule(Rule):
    id = "determinism-global-random"
    description = (
        "No stdlib `random` module and no ambient numpy global RNG; "
        "randomness must come from seeded generators."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        for module in tree.parsed():
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name == "random" or alias.name.startswith(
                            "random."
                        ):
                            yield module.finding(
                                self.id,
                                node,
                                "stdlib `random` is globally seeded state; "
                                "use cluster.rng.stream(name)",
                            )
                elif isinstance(node, ast.ImportFrom):
                    # level > 0 is a relative import (e.g. sim/.random)
                    if node.module == "random" and node.level == 0:
                        yield module.finding(
                            self.id,
                            node,
                            "stdlib `random` is globally seeded state; "
                            "use cluster.rng.stream(name)",
                        )
                elif isinstance(node, ast.Attribute):
                    name = dotted_name(node)
                    if (
                        name.startswith(("np.random.", "numpy.random."))
                        and name.rsplit(".", 1)[1] not in _NP_RANDOM_OK
                    ):
                        yield module.finding(
                            self.id,
                            node,
                            f"{name} uses numpy's ambient global RNG; "
                            "construct via np.random.default_rng(seed)",
                        )


class RngStreamLiteralRule(Rule):
    id = "determinism-rng-stream"
    description = (
        "RandomStreams.stream(name) must take a resolvable string "
        "literal so stream names can be audited for collisions."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        for module, call, resolved in _stream_calls(tree):
            if resolved is None:
                yield module.finding(
                    self.id,
                    call,
                    "stream name is not a resolvable string literal "
                    "(literal, module/class constant, or param default)",
                )


class StreamCollisionRule(Rule):
    id = "determinism-stream-collision"
    description = (
        "The same RNG substream name drawn from two different modules "
        "couples their random sequences."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        sites: Dict[str, List[Tuple[ModuleInfo, ast.Call]]] = {}
        for module, call, resolved in _stream_calls(tree):
            if resolved is not None:
                sites.setdefault(resolved, []).append((module, call))
        for name, uses in sorted(sites.items()):
            files = {module.rel for module, _ in uses}
            if len(files) < 2:
                continue
            for module, call in uses:
                others = ", ".join(sorted(files - {module.rel}))
                yield module.finding(
                    self.id,
                    call,
                    f'stream name "{name}" is also drawn in {others}; '
                    "shared substreams couple unrelated random sequences",
                )


def _stream_calls(
    tree: Tree,
) -> Iterable[Tuple[ModuleInfo, ast.Call, Optional[str]]]:
    for module in tree.parsed():
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "stream"):
                continue
            receiver = dotted_name(func.value)
            tail = receiver.rsplit(".", 1)[-1]
            if tail not in _STREAM_RECEIVERS:
                continue
            arg = node.args[0] if node.args else None
            yield module, node, resolve_str_arg(module, node, arg)


class UnorderedIterRule(Rule):
    id = "determinism-unordered-iter"
    description = (
        "for-loops over dict views / sets whose bodies schedule, send, "
        "or spawn must iterate sorted(...)."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        for module in tree.parsed():
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.For):
                    continue
                what = _unordered_source(node.iter)
                if what is None:
                    continue
                effect = _first_effect(node)
                if effect is None:
                    continue
                yield module.finding(
                    self.id,
                    node,
                    f"iterating {what} feeds {effect}() — wrap the "
                    "iterable in sorted() to pin the order",
                )


def _unordered_source(iter_node: ast.AST) -> Optional[str]:
    """Name the unordered container being iterated, or None if ordered."""
    if isinstance(iter_node, ast.Call):
        func = iter_node.func
        if isinstance(func, ast.Name):
            if func.id == "sorted":
                return None
            if func.id in ("set", "frozenset", "dict"):
                return f"{func.id}(...)"
            if func.id in ("list", "tuple", "enumerate", "reversed", "zip"):
                # ordered wrappers: recurse into the first argument
                if iter_node.args:
                    return _unordered_source(iter_node.args[0])
                return None
            return None
        if isinstance(func, ast.Attribute) and func.attr in (
            "keys",
            "values",
            "items",
        ):
            return f"{dotted_name(func)}()"
        return None
    if isinstance(iter_node, ast.Set):
        return "a set literal"
    if isinstance(iter_node, ast.SetComp):
        return "a set comprehension"
    return None


def _first_effect(loop: ast.For) -> Optional[str]:
    """First effectful call (or yield) inside the loop body, if any."""
    for child in loop.body + loop.orelse:
        for node in ast.walk(child):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "yield"
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                tail = name.rsplit(".", 1)[-1]
                if tail in _EFFECT_SUFFIXES:
                    return tail
    return None


register_rule(WallClockRule())
register_rule(GlobalRandomRule())
register_rule(RngStreamLiteralRule())
register_rule(StreamCollisionRule())
register_rule(UnorderedIterRule())
