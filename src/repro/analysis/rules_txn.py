"""Transaction hygiene rules for the migration journal (PR 4).

``migration/txn.py`` defines the canonical step ladder ``TXN_STEPS``;
the crash-matrix harness fires a fault at every step boundary, so a
step string that isn't in the ladder silently escapes the matrix.  The
undo log is symmetric state: every ``push_undo(kind, ...)`` must have a
replay arm comparing ``entry.kind == kind`` somewhere in ``migration/``
and vice versa, or rollback silently drops (or dead-codes) an entry.

Both rules read their ground truth from the AST of
``migration/txn.py`` / ``migration/*.py`` in the linted tree, so they
are inert on fixture trees that don't model transactions.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .core import (
    Finding,
    ModuleInfo,
    Rule,
    Tree,
    dotted_name,
    literal_str,
    register_rule,
)

_TXN_MODULE = "migration/txn.py"

#: call shapes that take a journal-step name: ``txn.step("frozen")``,
#: ``txn.did("frozen")``, and the mechanism's write-ahead helper
#: ``self._journal_step(txn, epoch, "frozen", ...)`` (step at index 2).
_STEP_METHODS = {"step": 0, "did": 0, "_journal_step": 2}


def _txn_steps(tree: Tree) -> Optional[Set[str]]:
    """Extract the TXN_STEPS tuple from migration/txn.py, if present."""
    module = tree.module(_TXN_MODULE)
    if module is None or module.tree is None:
        return None
    for node in module.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        targets = [
            target.id
            for target in node.targets
            if isinstance(target, ast.Name)
        ]
        if "TXN_STEPS" not in targets:
            continue
        if isinstance(node.value, (ast.Tuple, ast.List)):
            steps = {
                element.value
                for element in node.value.elts
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            }
            return steps
    return None


def _step_sites(tree: Tree) -> Iterable[Tuple[ModuleInfo, ast.Call, str]]:
    for module in tree.parsed():
        if not module.rel.startswith("migration/"):
            continue
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            index = _STEP_METHODS.get(func.attr)
            if index is None:
                continue
            if func.attr in ("step", "did"):
                receiver_tail = dotted_name(func.value).rsplit(".", 1)[-1]
                if receiver_tail not in ("txn", "transaction"):
                    continue
            if index < len(node.args):
                name = literal_str(node.args[index])
                if name is not None:
                    yield module, node, name


class UnknownStepRule(Rule):
    id = "txn-unknown-step"
    description = (
        "Every journaled step literal must appear in TXN_STEPS so the "
        "crash matrix covers its boundary."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        steps = _txn_steps(tree)
        if steps is None:
            return
        for module, node, name in _step_sites(tree):
            if name not in steps:
                yield module.finding(
                    self.id,
                    node,
                    f'step "{name}" is not in migration/txn.py TXN_STEPS; '
                    "the crash matrix will never fault at this boundary",
                )


class UndoCoverageRule(Rule):
    id = "txn-undo-coverage"
    description = (
        "Undo-log kinds must be pushed and replayed symmetrically: every "
        "push_undo(kind) needs an `entry.kind == kind` arm and vice versa."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        pushed: Dict[str, List[Tuple[ModuleInfo, ast.Call]]] = {}
        replayed: Dict[str, List[Tuple[ModuleInfo, ast.Compare]]] = {}
        for module in tree.parsed():
            if not module.rel.startswith("migration/"):
                continue
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr == "push_undo"
                        and node.args
                    ):
                        kind = literal_str(node.args[0])
                        if kind is not None:
                            pushed.setdefault(kind, []).append((module, node))
                elif isinstance(node, ast.Compare):
                    kind = _kind_comparison(node)
                    if kind is not None:
                        replayed.setdefault(kind, []).append((module, node))
        for kind, sites in sorted(pushed.items()):
            if kind in replayed:
                continue
            for module, node in sites:
                yield module.finding(
                    self.id,
                    node,
                    f'undo kind "{kind}" is pushed but no replay arm '
                    'compares `.kind == "' + kind + '"` — rollback would '
                    "silently drop it",
                )
        for kind, sites in sorted(replayed.items()):
            if kind in pushed:
                continue
            for module, node in sites:
                yield module.finding(
                    self.id,
                    node,
                    f'replay arm for undo kind "{kind}" matches nothing '
                    "any do-step pushes — dead rollback code",
                )


def _kind_comparison(node: ast.Compare) -> Optional[str]:
    """Match ``<expr>.kind == "literal"`` (either operand order)."""
    if len(node.ops) != 1 or not isinstance(node.ops[0], (ast.Eq, ast.In)):
        return None
    left, right = node.left, node.comparators[0]
    for attr_side, const_side in ((left, right), (right, left)):
        if (
            isinstance(attr_side, ast.Attribute)
            and attr_side.attr == "kind"
            and isinstance(const_side, ast.Constant)
            and isinstance(const_side.value, str)
        ):
            return const_side.value
    return None


register_rule(UnknownStepRule())
register_rule(UndoCoverageRule())
