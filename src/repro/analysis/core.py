"""Framework core: module loading, pragmas, the rule registry, driver.

The driver parses every ``*.py`` under one source root into a
:class:`Tree`, hands the whole tree to each registered :class:`Rule`
(rules are free to do cross-module analysis — the RPC conformance and
stream-collision rules depend on it), then filters the findings through
inline pragmas and the checked-in baseline.

Pragma grammar (suppression is per-line, per-rule, never blanket)::

    some_call()  # lint: disable=rule-id(reason why this site is fine)
    # lint: disable=rule-a,rule-b(one reason for both)

A pragma suppresses matching findings on its own line and on the line
directly below it (for statements too long to share a line with their
justification).  ``# span-guard: caller`` is kept as a legacy alias for
``# lint: disable=obs-unguarded-emit(caller holds the guard)``.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "Tree",
    "all_rules",
    "default_src_root",
    "dotted_name",
    "register_rule",
    "run_lint",
]

#: ``# lint: disable=rule-one,rule-two(reason...)``
_PRAGMA = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,()\- .:'\"/]+)")
_PRAGMA_ITEM = re.compile(r"([a-z0-9-]+)(?:\(([^)]*)\))?")
_SPAN_GUARD = re.compile(r"#\s*span-guard:\s*caller")


def default_src_root() -> pathlib.Path:
    """The package's own source tree (``src/repro`` in a checkout)."""
    return pathlib.Path(__file__).resolve().parents[1]


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted name of a call target / attribute chain.

    ``self.host.rpc.call`` -> ``"self.host.rpc.call"``; unresolvable
    pieces (subscripts, calls) become ``"?"`` so suffix matching on the
    tail still works.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        parts.append("?")
    return ".".join(reversed(parts))


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site."""

    rule: str
    path: pathlib.Path       #: absolute path of the offending file
    rel: str                 #: path relative to the lint root (posix)
    line: int
    message: str
    snippet: str = ""        #: stripped source line, used by the baseline

    def location(self, repo_root: Optional[pathlib.Path] = None) -> str:
        shown: str
        if repo_root is not None:
            try:
                shown = self.path.relative_to(repo_root).as_posix()
            except ValueError:
                shown = str(self.path)
        else:
            shown = str(self.path)
        return f"{shown}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "file": self.rel,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
        }


class ModuleInfo:
    """One parsed source file plus its pragma table."""

    def __init__(self, path: pathlib.Path, root: pathlib.Path):
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.source = path.read_text()
        self.lines = self.source.splitlines()
        self.error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(
                self.source, filename=str(path)
            )
        except SyntaxError as err:
            self.tree = None
            self.error = err
        #: line number -> {rule_id -> reason}; built lazily.
        self._pragmas: Optional[Dict[int, Dict[str, str]]] = None
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    # ------------------------------------------------------------------
    @property
    def pragmas(self) -> Dict[int, Dict[str, str]]:
        if self._pragmas is None:
            table: Dict[int, Dict[str, str]] = {}
            for index, line in enumerate(self.lines, start=1):
                if _SPAN_GUARD.search(line):
                    table.setdefault(index, {})["obs-unguarded-emit"] = (
                        "caller holds the guard"
                    )
                match = _PRAGMA.search(line)
                if match is None:
                    continue
                for item in match.group(1).split(","):
                    parsed = _PRAGMA_ITEM.match(item.strip())
                    if parsed is None:
                        continue
                    rule, reason = parsed.group(1), parsed.group(2) or ""
                    table.setdefault(index, {})[rule] = reason
            self._pragmas = table
        return self._pragmas

    def suppressed(self, rule: str, line: int) -> bool:
        """A pragma on the finding's line, or on the line above it
        (standalone-comment style), silences that rule there."""
        for candidate in (line, line - 1):
            if rule in self.pragmas.get(candidate, {}):
                return True
        return False

    # ------------------------------------------------------------------
    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """child node -> parent node, for dominance-style walks."""
        if self._parents is None:
            table: Dict[ast.AST, ast.AST] = {}
            assert self.tree is not None
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    table[child] = parent
            self._parents = table
        return self._parents

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: str, node_or_line, message: str) -> Finding:
        line = (
            node_or_line
            if isinstance(node_or_line, int)
            else getattr(node_or_line, "lineno", 0)
        )
        return Finding(
            rule=rule,
            path=self.path,
            rel=self.rel,
            line=line,
            message=message,
            snippet=self.line_at(line),
        )


class Tree:
    """Every parsed module under one source root."""

    def __init__(self, root: pathlib.Path, modules: Sequence[ModuleInfo]):
        self.root = root
        self.modules = list(modules)
        self._by_rel = {module.rel: module for module in self.modules}
        self._callgraph = None  # built lazily, shared by every rule

    @classmethod
    def load(cls, root: pathlib.Path) -> "Tree":
        root = root.resolve()
        modules = [
            ModuleInfo(path, root)
            for path in sorted(root.rglob("*.py"))
            if "analysis" not in path.relative_to(root).parts[:1]
        ]
        return cls(root, modules)

    def module(self, rel: str) -> Optional[ModuleInfo]:
        return self._by_rel.get(rel)

    def parsed(self) -> List[ModuleInfo]:
        return [module for module in self.modules if module.tree is not None]

    def callgraph(self):
        """The whole-tree :class:`~repro.analysis.callgraph.CallGraph`,
        built on first use and shared by every interprocedural rule."""
        if self._callgraph is None:
            from .callgraph import CallGraph

            self._callgraph = CallGraph.build(self)
        return self._callgraph


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------
class Rule:
    """Base class: subclass, set ``id``/``description``, implement
    :meth:`check`, and register with :func:`register_rule`."""

    id: str = ""
    description: str = ""

    def check(self, tree: Tree) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    if not rule.id:
        raise ValueError("rule needs an id")
    _REGISTRY[rule.id] = rule
    return rule


def all_rules() -> List[Rule]:
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
@dataclass
class LintResult:
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0      #: silenced by inline pragmas
    baselined: int = 0       #: grandfathered by the baseline file
    parse_errors: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors


def run_lint(
    src_root: Optional[pathlib.Path] = None,
    rule_ids: Optional[Sequence[str]] = None,
    baseline: Optional["Baseline"] = None,  # noqa: F821 - fwd ref
    cache_path: Optional[pathlib.Path] = None,
) -> LintResult:
    """Lint every module under ``src_root`` with the selected rules.

    With ``cache_path`` set, a content-hash key over the tree and rule
    selection is checked first: on a hit the parse/analyze pass is
    skipped entirely and only the baseline is re-applied (pragmas are
    content-derived, so cached findings are already post-pragma).
    """
    root = (src_root or default_src_root()).resolve()
    selected = all_rules()
    if rule_ids is not None:
        wanted = set(rule_ids)
        unknown = wanted - {rule.id for rule in selected}
        if unknown:
            raise KeyError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}"
            )
        selected = [rule for rule in selected if rule.id in wanted]

    key: Optional[str] = None
    if cache_path is not None:
        from . import cache as _cache

        key = _cache.cache_key(root, [rule.id for rule in selected])
        hit = _cache.load_cached(cache_path, key)
        if hit is not None:
            kept, suppressed, parse_errors = hit
            result = LintResult(
                suppressed=suppressed, parse_errors=parse_errors
            )
            if baseline is not None:
                kept, grandfathered = baseline.filter(kept)
                result.baselined = grandfathered
            result.findings = kept
            return result

    tree = Tree.load(root)
    result = LintResult()
    for module in tree.modules:
        if module.error is not None:
            result.parse_errors.append(
                Finding(
                    rule="parse-error",
                    path=module.path,
                    rel=module.rel,
                    line=module.error.lineno or 0,
                    message=f"syntax error: {module.error.msg}",
                )
            )
    raw: List[Finding] = []
    for rule in selected:
        raw.extend(rule.check(tree))
    kept: List[Finding] = []
    for finding in raw:
        module = tree.module(finding.rel)
        if module is not None and module.suppressed(finding.rule, finding.line):
            result.suppressed += 1
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.rel, f.line, f.rule, f.message))
    if cache_path is not None and key is not None:
        from . import cache as _cache

        _cache.store(cache_path, key, result, kept)
    if baseline is not None:
        kept, grandfathered = baseline.filter(kept)
        result.baselined = grandfathered
    result.findings = kept
    return result


# ----------------------------------------------------------------------
# Shared AST helpers used by several rules
# ----------------------------------------------------------------------
def literal_str(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def enclosing_function(
    module: ModuleInfo, node: ast.AST
) -> Optional[ast.AST]:
    current = module.parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = module.parents.get(current)
    return None


def enclosing_class(module: ModuleInfo, node: ast.AST) -> Optional[ast.ClassDef]:
    current = module.parents.get(node)
    while current is not None:
        if isinstance(current, ast.ClassDef):
            return current
        current = module.parents.get(current)
    return None


def is_generator(func: ast.AST) -> bool:
    """Does this def yield (ignoring nested defs/lambdas/comprehensions)?"""
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def module_constants(module_tree: ast.Module) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` string constants."""
    table: Dict[str, str] = {}
    for node in module_tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = literal_str(node.value)
            if isinstance(target, ast.Name) and value is not None:
                table[target.id] = value
    return table


def class_constants(klass: ast.ClassDef) -> Dict[str, str]:
    """Class-level ``NAME = "literal"`` string attributes."""
    table: Dict[str, str] = {}
    for node in klass.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = literal_str(node.value)
            if isinstance(target, ast.Name) and value is not None:
                table[target.id] = value
    return table


def resolve_str_arg(
    module: ModuleInfo, call_site: ast.AST, node: Optional[ast.AST]
) -> Optional[str]:
    """Resolve an argument to a string: literal, module constant, class
    constant via ``self.NAME`` / ``cls.NAME``, or a parameter's literal
    default in the enclosing function."""
    if node is None:
        return None
    direct = literal_str(node)
    if direct is not None:
        return direct
    assert module.tree is not None
    if isinstance(node, ast.Name):
        value = module_constants(module.tree).get(node.id)
        if value is not None:
            return value
        func = enclosing_function(module, call_site)
        if func is not None:
            value = _param_default(func, node.id)
            if value is not None:
                return value
        klass = enclosing_class(module, call_site)
        if klass is not None:
            return class_constants(klass).get(node.id)
        return None
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id in ("self", "cls"):
            klass = enclosing_class(module, call_site)
            if klass is not None:
                return class_constants(klass).get(node.attr)
        return None
    return None


def _param_default(func: ast.AST, name: str) -> Optional[str]:
    args = func.args  # type: ignore[union-attr]
    positional = args.posonlyargs + args.args
    defaults = args.defaults
    offset = len(positional) - len(defaults)
    for index, arg in enumerate(positional):
        if arg.arg == name and index >= offset:
            return literal_str(defaults[index - offset])
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if arg.arg == name:
            return literal_str(default)
    return None


def call_args(call: ast.Call) -> Tuple[List[ast.AST], Dict[str, ast.AST]]:
    return list(call.args), {
        kw.arg: kw.value for kw in call.keywords if kw.arg is not None
    }


def in_dirs(module: ModuleInfo, dirs: Set[str]) -> bool:
    head = module.rel.split("/", 1)[0]
    return head in dirs
