"""Observability guard rule.

The tracing layer's contract (PR 2) is zero cost when disabled: every
``tracer.emit`` / ``spans.start`` / ``spans.record`` call site must be
dominated by a cheap enabled-check so a disabled run never builds event
payloads.  This is the AST replacement for the old 5-line regex window
in ``tools/check_trace_guards.py`` — a guard counts wherever it
actually dominates the call, not just within 5 source lines of it.

A call is considered guarded when, inside its enclosing function:

* an ancestor ``if``/``elif``/``while`` test mentions ``.enabled`` or
  an ``is (not) None`` comparison, or a boolean expression short-
  circuits on one (``tracer.enabled and tracer.emit(...)``), or
* an earlier same-suite ``if`` with such a test ends in
  ``return``/``raise``/``continue`` (early-exit guard).

Sites that emit on behalf of callers carry ``# span-guard: caller``
(an alias for ``# lint: disable=obs-unguarded-emit``).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from .core import (
    Finding,
    ModuleInfo,
    Rule,
    Tree,
    call_args,
    dotted_name,
    enclosing_function,
    register_rule,
    resolve_str_arg,
)

#: method names whose call sites need a guard (matched on attribute
#: access, any receiver: ``self.tracer.emit``, ``host.spans.record`` …)
_EMIT_ATTRS = {"emit", "start", "record"}
_EMIT_RECEIVER_TAILS = {"tracer", "spans"}

#: trees that *implement* the tracing layer are exempt, as in the old tool
_EXEMPT_DIRS = {"obs"}
_EXEMPT_FILES = {"sim/trace.py"}


class UnguardedEmitRule(Rule):
    id = "obs-unguarded-emit"
    description = (
        "tracer.emit / spans.start / spans.record must be dominated by "
        "an `enabled` / `is not None` guard in the enclosing function."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        for module in tree.parsed():
            head = module.rel.split("/", 1)[0]
            if head in _EXEMPT_DIRS or module.rel in _EXEMPT_FILES:
                continue
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                if not _is_emit_call(node):
                    continue
                if _is_guarded(module, node):
                    continue
                yield module.finding(
                    self.id,
                    node,
                    f"{dotted_name(node.func)}() is not dominated by an "
                    "enabled/None guard; wrap in `if tracer.enabled:` or "
                    "mark `# span-guard: caller`",
                )


def is_emit_line(module: ModuleInfo, lineno: int) -> bool:
    """Does line ``lineno`` start an emit call?  (Used by the shim.)"""
    assert module.tree is not None
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and node.lineno == lineno
            and _is_emit_call(node)
        ):
            return True
    return False


def _is_emit_call(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _EMIT_ATTRS:
        return False
    receiver = dotted_name(func.value)
    return receiver.rsplit(".", 1)[-1] in _EMIT_RECEIVER_TAILS


def _test_is_guard(test: ast.AST) -> bool:
    """Does this condition check enabledness or non-None-ness?"""
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr == "enabled":
            return True
        if isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops
        ):
            if any(
                isinstance(cmp, ast.Constant) and cmp.value is None
                for cmp in node.comparators
            ):
                return True
    return False


def _suite_exits(body: List[ast.stmt]) -> bool:
    if not body:
        return False
    last = body[-1]
    return isinstance(last, (ast.Return, ast.Raise, ast.Continue, ast.Break))


def _is_guarded(module: ModuleInfo, call: ast.Call) -> bool:
    parents = module.parents
    child: ast.AST = call
    parent: Optional[ast.AST] = parents.get(call)
    while parent is not None:
        # ancestor conditional whose test is a guard and whose body
        # (not orelse) contains us
        if isinstance(parent, (ast.If, ast.While)):
            if _test_is_guard(parent.test) and _in_suite(parent.body, child):
                return True
        # short-circuit form: tracer.enabled and tracer.emit(...)
        if isinstance(parent, ast.BoolOp) and isinstance(parent.op, ast.And):
            index = parent.values.index(child) if child in parent.values else -1
            if index > 0 and any(
                _test_is_guard(value) for value in parent.values[:index]
            ):
                return True
        # conditional expression: emit(...) if tracer.enabled else None
        if isinstance(parent, ast.IfExp):
            if _test_is_guard(parent.test) and parent.body is child:
                return True
        # early-exit guard: a prior statement in the same suite is
        # `if not tracer.enabled: return`
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _early_exit_before(parent.body, child):
                return True
            return False  # stop at the function boundary
        if isinstance(parent, (ast.If, ast.While, ast.For, ast.Try, ast.With)):
            for suite in _suites_of(parent):
                if _in_suite(suite, child) and _early_exit_before(suite, child):
                    return True
        child = parent
        parent = parents.get(parent)
    return False


def _suites_of(node: ast.AST) -> List[List[ast.stmt]]:
    suites: List[List[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        suite = getattr(node, attr, None)
        if suite:
            suites.append(suite)
    for handler in getattr(node, "handlers", []) or []:
        suites.append(handler.body)
    return suites


def _in_suite(suite: List[ast.stmt], node: ast.AST) -> bool:
    for stmt in suite:
        if stmt is node or any(child is node for child in ast.walk(stmt)):
            return True
    return False


def _early_exit_before(suite: List[ast.stmt], node: ast.AST) -> bool:
    """Is there an `if <guard-test>: return/raise/continue` earlier in
    this suite than the statement containing ``node``?"""
    container_index = None
    for index, stmt in enumerate(suite):
        if stmt is node or any(child is node for child in ast.walk(stmt)):
            container_index = index
            break
    if container_index is None:
        return False
    for stmt in suite[:container_index]:
        if (
            isinstance(stmt, ast.If)
            and _test_is_guard(stmt.test)
            and _suite_exits(stmt.body)
        ):
            return True
    return False


class SpanCatalogueRule(Rule):
    """Span names must come from the registered catalogue.

    Critical-path attribution (:mod:`repro.obs.critpath`) and the
    migration breakdowns key on exact span-name strings; a site that
    invents (or typos) a name silently drops out of every analysis.
    This rule requires the ``name`` argument at each
    ``spans.start(...)`` / ``spans.record(...)`` call site to resolve
    to a member of :data:`repro.obs.spans.SPAN_CATALOGUE` — either as
    a resolvable string (literal / constant / parameter default) whose
    value is catalogued, or as a reference to one of the catalogue's
    own constants (``MIG_FREEZE``, ``RPC_CALL``, …).

    Wrapper functions that forward a ``name`` parameter (e.g. the
    migration mechanism's ``_phase``/``_step`` helpers) are handled by
    chasing same-module callers one level: the wrapper is clean when
    every caller passes a catalogued name.
    """

    id = "obs-span-catalogue"
    description = (
        "span names at spans.start/spans.record sites must resolve to "
        "a repro.obs.spans.SPAN_CATALOGUE member (constant or literal)."
    )

    def __init__(self) -> None:
        from ..obs import spans as spans_module

        self._catalogue = frozenset(spans_module.SPAN_CATALOGUE)
        #: constant name -> value, for sites that pass the constant.
        self._constants = {
            name: value
            for name, value in vars(spans_module).items()
            if isinstance(value, str) and value in self._catalogue
        }

    def check(self, tree: Tree) -> Iterable[Finding]:
        for module in tree.parsed():
            head = module.rel.split("/", 1)[0]
            if head == "obs":
                continue  # the layer's own implementation
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                if not _is_span_name_site(node):
                    continue
                problem = self._check_site(module, node)
                if problem is not None:
                    yield module.finding(self.id, node, problem)

    # ------------------------------------------------------------------
    def _check_site(
        self, module: ModuleInfo, call: ast.Call, chase: bool = True
    ) -> Optional[str]:
        """None when the site's name argument is catalogued, else the
        finding message."""
        args, kwargs = call_args(call)
        name_node = kwargs.get("name") if "name" in kwargs else (
            args[0] if args else None
        )
        if name_node is None:
            return "span call without a name argument"
        return self._check_name_node(module, call, name_node, chase)

    def _check_name_node(
        self,
        module: ModuleInfo,
        call: ast.Call,
        name_node: ast.AST,
        chase: bool,
    ) -> Optional[str]:
        # A direct reference to a catalogue constant (imported name or
        # ``spans_module.MIG_FREEZE``-style attribute).
        symbol = None
        if isinstance(name_node, ast.Name):
            symbol = name_node.id
        elif isinstance(name_node, ast.Attribute):
            symbol = name_node.attr
        if symbol is not None and symbol in self._constants:
            return None
        # A resolvable string (literal, module/class constant, literal
        # parameter default) whose value is catalogued.
        value = resolve_str_arg(module, call, name_node)
        if value is not None:
            if value in self._catalogue:
                return None
            return (
                f"span name {value!r} is not in repro.obs.spans."
                "SPAN_CATALOGUE; register it there (and import the "
                "constant) instead of inlining the string"
            )
        # A forwarded parameter of the enclosing wrapper function:
        # clean iff every same-module caller passes a catalogued name.
        if chase and isinstance(name_node, ast.Name):
            verdict = self._check_forwarded(module, call, name_node.id)
            if verdict is not None:
                return verdict or None
        return (
            f"span name argument `{ast.dump(name_node) if symbol is None else symbol}` "
            "cannot be resolved to a SPAN_CATALOGUE member"
        )

    def _check_forwarded(
        self, module: ModuleInfo, call: ast.Call, param: str
    ) -> Optional[str]:
        """Check a name forwarded through the enclosing function's
        parameter.  Returns None when this isn't a forwarding situation
        (fall through to the unresolvable message), "" when every
        caller is clean, or a finding message."""
        func = enclosing_function(module, call)
        if func is None:
            return None
        params = [a.arg for a in func.args.posonlyargs + func.args.args]
        if param not in params:
            return None
        index = params.index(param)
        skip_self = bool(params) and params[0] in ("self", "cls")
        callers = _callers_of(module, func.name)
        if not callers:
            return None
        for caller in callers:
            args, kwargs = call_args(caller)
            if param in kwargs:
                arg_node: Optional[ast.AST] = kwargs[param]
            else:
                position = index - (1 if skip_self else 0)
                arg_node = args[position] if position < len(args) else None
            if arg_node is None:
                return (
                    f"caller at line {caller.lineno} does not pass "
                    f"`{param}` positionally or by keyword"
                )
            problem = self._check_name_node(module, caller, arg_node, False)
            if problem is not None:
                return (
                    f"forwarded via `{func.name}({param}=...)`: {problem} "
                    f"(caller at line {caller.lineno})"
                )
        return ""


def _is_span_name_site(call: ast.Call) -> bool:
    """``<...>.spans.start(...)`` / ``<...>.spans.record(...)`` sites —
    the subset of emit sites where the first argument is a span name."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in (
        "start", "record"
    ):
        return False
    receiver = dotted_name(func.value)
    return receiver.rsplit(".", 1)[-1] == "spans"


def _callers_of(module: ModuleInfo, func_name: str) -> List[ast.Call]:
    assert module.tree is not None
    callers = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            target = node.func
            if isinstance(target, ast.Attribute) and target.attr == func_name:
                callers.append(node)
            elif isinstance(target, ast.Name) and target.id == func_name:
                callers.append(node)
    return callers


register_rule(UnguardedEmitRule())
register_rule(SpanCatalogueRule())
