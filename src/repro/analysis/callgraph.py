"""Whole-tree call graph for interprocedural rules.

One pass over every parsed module builds a :class:`CallGraph`:

* **Functions** — every ``def``/``async def`` (module-level, methods,
  nested) becomes a :class:`FunctionNode` keyed by
  ``(module.rel, qualname)``.
* **Classes** — a cross-module class-hierarchy index (merged by class
  name, exactly like the error-hierarchy census) used to resolve
  ``self.method(...)`` through base classes *and* subclass overrides.
* **Imports** — ``from .mod import name`` / ``from ..pkg import mod`` /
  absolute ``repro.`` imports are resolved to definitions, chasing
  ``__init__`` re-exports transitively.
* **Edges** — every call site is resolved once; besides plain calls the
  graph records *reference* edges for callables passed as values:
  ``rpc.register(name, self._handler)``, ``spawn(sim, factory)``,
  ``functools.partial(fn, ...)``, ``getattr(self, "method_name")``, and
  class constructions (edge to ``__init__``/``__call__``).

Resolution strategy, in decreasing precision:

1. lexical scope (nested defs, module functions, imported names);
2. ``self.``/``cls.`` receivers through the class-hierarchy index
   (nearest ancestor implementation plus every subclass override —
   dynamic dispatch may land on any of them);
3. module-alias receivers (``packaging.export_streams``);
4. *fallback by attribute name*: ``obj.meth(...)`` with an untyped
   receiver resolves to every tree method named ``meth`` (minus a small
   blocklist of ubiquitous builtin-container method names).  Fallback
   edges are marked ``sharp=False`` so rules can demand precision.

The graph is deliberately a may-call over-approximation (union
semantics); rules that must not false-positive filter on ``sharp`` or
on candidate agreement (e.g. "all candidates are generators").
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .core import ModuleInfo, Tree, is_generator

__all__ = ["CallEdge", "CallGraph", "ClassInfo", "FunctionNode"]

Key = Tuple[str, str]  # (module.rel, qualname)

#: Attribute names never resolved by the name-only fallback: they are
#: overwhelmingly builtin list/dict/set/str methods on untyped
#: receivers, and an edge guessed onto an unrelated tree method would
#: poison every downstream analysis.
_FALLBACK_BLOCKLIST = frozenset({
    "append", "extend", "insert", "sort", "reverse", "setdefault",
    "popitem", "strip", "lstrip", "rstrip", "split", "rsplit", "join",
    "format", "encode", "decode", "startswith", "endswith", "items",
    "keys", "values", "index", "copy", "replace", "lower", "upper",
    "remove", "discard", "add", "update", "pop", "clear", "popleft",
    "appendleft",
})


@dataclass(frozen=True)
class FunctionNode:
    """One function definition anywhere in the tree."""

    rel: str                 #: defining module, relative to the root
    qualname: str            #: e.g. ``"FsServer._callback"``
    node: ast.AST            #: the FunctionDef / AsyncFunctionDef
    class_name: Optional[str]  #: immediate enclosing class, if a method
    is_generator: bool
    is_nested: bool          #: defined inside another function (closure)

    @property
    def key(self) -> Key:
        return (self.rel, self.qualname)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 0)

    def __repr__(self) -> str:  # pragma: no cover - debug nicety
        return f"<fn {self.rel}::{self.qualname}>"


@dataclass
class ClassInfo:
    """One class name's definitions across the tree (merged by name)."""

    name: str
    rel: str                             #: first defining module
    line: int = 0
    bases: Set[str] = field(default_factory=set)
    methods: Dict[str, FunctionNode] = field(default_factory=dict)


@dataclass(frozen=True)
class CallEdge:
    """caller --(site)--> callee.  ``caller`` None = module-level code."""

    caller: Optional[FunctionNode]
    callee: FunctionNode
    module: ModuleInfo       #: module containing the site
    site: ast.AST            #: the Call (or the reference expression)
    call: Optional[ast.Call]  #: the ast.Call for call edges, None for refs
    kind: str                #: "call" | "ref"
    sharp: bool              #: False when resolved by name-only fallback


class _Scope:
    """Lexical scope node used while indexing and resolving."""

    __slots__ = ("function", "nested", "parent", "class_name")

    def __init__(self, function: Optional[FunctionNode],
                 parent: Optional["_Scope"], class_name: Optional[str]):
        self.function = function
        self.parent = parent
        self.class_name = class_name
        self.nested: Dict[str, FunctionNode] = {}


class CallGraph:
    """The whole-tree call graph; build with :meth:`build` (or, shared,
    via ``tree.callgraph()``)."""

    def __init__(self, tree: Tree):
        self.tree = tree
        self.functions: Dict[Key, FunctionNode] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.edges: List[CallEdge] = []
        self._edges_in: Dict[Key, List[CallEdge]] = {}
        self._edges_out: Dict[Key, List[CallEdge]] = {}
        self._call_targets: Dict[int, List[FunctionNode]] = {}
        self._call_sharp: Dict[int, bool] = {}
        self._call_class: Dict[int, ClassInfo] = {}
        self._fn_by_ast: Dict[int, FunctionNode] = {}
        self._module_funcs: Dict[str, Dict[str, FunctionNode]] = {}
        self._module_classes: Dict[str, Dict[str, str]] = {}
        self._imports: Dict[str, Dict[str, Tuple[str, str, str]]] = {}
        self._methods_by_name: Dict[str, List[FunctionNode]] = {}
        self._subclasses: Dict[str, Set[str]] = {}
        self._exports: Dict[str, Set[str]] = {}
        self._scopes: Dict[int, _Scope] = {}  # id(func ast) -> scope

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, tree: Tree) -> "CallGraph":
        graph = cls(tree)
        for module in tree.parsed():
            graph._index_module(module)
        graph._index_hierarchy()
        for module in tree.parsed():
            graph._resolve_module(module)
        for edge in graph.edges:
            graph._edges_in.setdefault(edge.callee.key, []).append(edge)
            if edge.caller is not None:
                graph._edges_out.setdefault(edge.caller.key, []).append(edge)
        return graph

    # -- pass 1: definitions -------------------------------------------
    def _index_module(self, module: ModuleInfo) -> None:
        assert module.tree is not None
        self._module_funcs[module.rel] = {}
        self._module_classes[module.rel] = {}
        self._imports[module.rel] = {}
        self._exports[module.rel] = _dunder_all(module.tree)
        self._collect_imports(module)
        root = _Scope(None, None, None)
        self._index_body(module, module.tree.body, root, [], None)

    def _index_body(
        self,
        module: ModuleInfo,
        body: Sequence[ast.stmt],
        scope: _Scope,
        qual: List[str],
        klass: Optional[ClassInfo],
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = ".".join(qual + [node.name])
                fn = FunctionNode(
                    rel=module.rel,
                    qualname=qualname,
                    node=node,
                    class_name=klass.name if klass is not None else None,
                    is_generator=is_generator(node),
                    is_nested=scope.function is not None,
                )
                self.functions[fn.key] = fn
                self._fn_by_ast[id(node)] = fn
                if klass is not None:
                    klass.methods.setdefault(node.name, fn)
                    self._methods_by_name.setdefault(node.name, []).append(fn)
                elif scope.function is None:
                    self._module_funcs[module.rel][node.name] = fn
                else:
                    scope.nested[node.name] = fn
                child = _Scope(fn, scope, None)
                self._scopes[id(node)] = child
                self._index_body(module, node.body, child, qual + [node.name],
                                 None)
            elif isinstance(node, ast.ClassDef):
                info = self.classes.get(node.name)
                if info is None:
                    info = ClassInfo(node.name, module.rel, node.lineno)
                    self.classes[node.name] = info
                info.bases.update(
                    base.id if isinstance(base, ast.Name) else base.attr
                    for base in node.bases
                    if isinstance(base, (ast.Name, ast.Attribute))
                )
                if scope.function is None:
                    self._module_classes[module.rel][node.name] = node.name
                self._index_body(module, node.body, scope,
                                 qual + [node.name], info)

    def _collect_imports(self, module: ModuleInfo) -> None:
        """Map imported names to ("obj"|"module", module-rel-ish, name)."""
        assert module.tree is not None
        table = self._imports[module.rel]
        package = _package_key(module.rel)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                base: Optional[Tuple[str, ...]]
                if node.level > 0:
                    up = node.level - 1
                    base = package[: len(package) - up] if up <= len(package) \
                        else None
                elif node.module and (
                    node.module == "repro" or node.module.startswith("repro.")
                ):
                    base = tuple(node.module.split(".")[1:])
                else:
                    base = None
                if base is None:
                    continue
                target = base
                if node.level > 0 and node.module:
                    target = base + tuple(node.module.split("."))
                for alias in node.names:
                    name = alias.asname or alias.name
                    if alias.name == "*":
                        continue
                    # `from pkg import mod` may name a submodule; record
                    # both readings, resolution tries object-first.
                    table[name] = ("obj", "/".join(target), alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    dotted = alias.name
                    if dotted == "repro" or dotted.startswith("repro."):
                        name = alias.asname or dotted.split(".")[0]
                        table[name] = (
                            "module", "/".join(dotted.split(".")[1:]), ""
                        )

    def _index_hierarchy(self) -> None:
        for info in self.classes.values():
            for base in info.bases:
                self._subclasses.setdefault(base, set()).add(info.name)

    # -- pass 2: edges -------------------------------------------------
    def _resolve_module(self, module: ModuleInfo) -> None:
        assert module.tree is not None
        self._walk_suite(module, module.tree.body,
                         _Scope(None, None, None), None)

    def _walk_suite(self, module: ModuleInfo, body: Sequence[ast.stmt],
                    scope: _Scope, klass: Optional[str]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._fn_by_ast[id(stmt)]
                child = self._scopes[id(stmt)]
                child.class_name = klass
                if scope.function is None and klass is None:
                    self._module_funcs[module.rel].setdefault(stmt.name, fn)
                else:
                    scope.nested.setdefault(stmt.name, fn)
                self._walk_suite(module, stmt.body, child, None)
            elif isinstance(stmt, ast.ClassDef):
                self._walk_suite(module, stmt.body, scope, stmt.name)
            else:
                self._walk_expr_calls(module, stmt, scope)

    def _walk_expr_calls(self, module: ModuleInfo, stmt: ast.stmt,
                         scope: _Scope) -> None:
        stack: List[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # nested defs are walked by _walk_suite via their scope
                fn = self._fn_by_ast.get(id(node))
                child = self._scopes.get(id(node))
                if fn is not None and child is not None:
                    scope.nested.setdefault(node.name, fn)
                    self._walk_suite(module, node.body, child, None)
                continue
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.Call):
                self._record_call(module, node, scope)
            elif isinstance(node, ast.Dict):
                for value in node.values:
                    self._record_ref(module, value, scope)
            elif isinstance(node, (ast.List, ast.Tuple, ast.Set)):
                for element in node.elts:
                    self._record_ref(module, element, scope)
            elif isinstance(node, ast.Return) and node.value is not None:
                self._record_ref(module, node.value, scope)
            elif isinstance(node, ast.Assign):
                self._record_ref(module, node.value, scope)
            stack.extend(ast.iter_child_nodes(node))

    def _record_call(self, module: ModuleInfo, call: ast.Call,
                     scope: _Scope) -> None:
        targets, sharp, klass = self._resolve_callable(
            module, call.func, scope
        )
        self._call_targets[id(call)] = targets
        self._call_sharp[id(call)] = sharp
        if klass is not None:
            self._call_class[id(call)] = klass
        caller = scope.function
        for target in targets:
            self.edges.append(CallEdge(
                caller=caller, callee=target, module=module, site=call,
                call=call, kind="call", sharp=sharp,
            ))
        # constructor edge: ClassName(...) -> __init__
        if klass is not None:
            init = self.resolve_method(klass.name, "__init__")
            for target in init:
                self.edges.append(CallEdge(
                    caller=caller, callee=target, module=module, site=call,
                    call=call, kind="call", sharp=True,
                ))
        # reference edges: callables passed as arguments
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            self._record_ref(module, arg, scope)

    def _record_ref(self, module: ModuleInfo, node: ast.AST,
                    scope: _Scope) -> None:
        """Ref edges for a callable used as a value: callback argument,
        dict/list table entry, `return fn`, `alias = self._handler`."""
        for target, ref_sharp in self._resolve_reference(module, node, scope):
            self.edges.append(CallEdge(
                caller=scope.function, callee=target, module=module,
                site=node, call=None, kind="ref", sharp=ref_sharp,
            ))

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _resolve_callable(
        self, module: ModuleInfo, func: ast.AST, scope: _Scope
    ) -> Tuple[List[FunctionNode], bool, Optional[ClassInfo]]:
        """Resolve a call's target expression.

        Returns ``(functions, sharp, constructed_class)``.
        """
        if isinstance(func, ast.Name):
            found = self._resolve_scoped_name(module, func.id, scope)
            if isinstance(found, FunctionNode):
                return [found], True, None
            if isinstance(found, ClassInfo):
                return [], True, found
            return [], True, None
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(module, func, scope)
        return [], True, None

    def _resolve_attribute(
        self, module: ModuleInfo, func: ast.Attribute, scope: _Scope
    ) -> Tuple[List[FunctionNode], bool, Optional[ClassInfo]]:
        attr = func.attr
        receiver = func.value
        if isinstance(receiver, ast.Name):
            # self.meth / cls.meth through the hierarchy
            if receiver.id in ("self", "cls"):
                klass = self._enclosing_class(scope)
                if klass is not None:
                    return self.resolve_method(klass, attr), True, None
                return [], True, None
            found = self._resolve_scoped_name(module, receiver.id, scope)
            if isinstance(found, ClassInfo):     # Klass.method(...)
                return self.resolve_method(found.name, attr), True, None
            entry = self._imports[module.rel].get(receiver.id)
            if entry is not None:
                resolved = self._resolve_import_attr(entry, attr)
                if isinstance(resolved, FunctionNode):
                    return [resolved], True, None
                if isinstance(resolved, ClassInfo):
                    return [], True, resolved
                return [], True, None
        # untyped receiver: fallback by method name
        if attr in _FALLBACK_BLOCKLIST:
            return [], False, None
        candidates = self._methods_by_name.get(attr, [])
        return list(candidates), False, None

    def _resolve_import_attr(self, entry: Tuple[str, str, str], attr: str):
        kind, target, objname = entry
        if kind == "module":
            return self._resolve_exported(target, attr, set())
        # `from pkg import mod` used as `mod.attr`
        submodule = f"{target}/{objname}" if target else objname
        return self._resolve_exported(submodule, attr, set())

    def _resolve_scoped_name(self, module: ModuleInfo, name: str,
                             scope: _Scope):
        current: Optional[_Scope] = scope
        while current is not None:
            if name in current.nested:
                return current.nested[name]
            current = current.parent
        fn = self._module_funcs[module.rel].get(name)
        if fn is not None:
            return fn
        if name in self._module_classes[module.rel]:
            return self.classes.get(name)
        entry = self._imports[module.rel].get(name)
        if entry is not None:
            kind, target, objname = entry
            if kind == "obj":
                return self._resolve_exported(target, objname, set())
        return None

    def _resolve_exported(self, module_key: str, name: str,
                          visited: Set[Tuple[str, str]]):
        """Chase ``name`` through a module's defs and re-exports."""
        rel = self._find_module(module_key)
        if rel is None or (rel, name) in visited:
            return None
        visited.add((rel, name))
        fn = self._module_funcs.get(rel, {}).get(name)
        if fn is not None:
            return fn
        if name in self._module_classes.get(rel, {}):
            return self.classes.get(name)
        entry = self._imports.get(rel, {}).get(name)
        if entry is not None:
            kind, target, objname = entry
            if kind == "obj":
                chased = self._resolve_exported(target, objname, visited)
                if chased is not None:
                    return chased
        return None

    def _find_module(self, module_key: str) -> Optional[str]:
        if not module_key:
            rel = "__init__.py"
            return rel if rel in self._module_funcs else None
        for candidate in (f"{module_key}.py", f"{module_key}/__init__.py"):
            if candidate in self._module_funcs:
                return candidate
        return None

    def _enclosing_class(self, scope: _Scope) -> Optional[str]:
        current: Optional[_Scope] = scope
        while current is not None:
            if current.class_name is not None:
                return current.class_name
            if current.function is not None and \
                    current.function.class_name is not None:
                return current.function.class_name
            current = current.parent
        return None

    def resolve_method(self, class_name: str, attr: str) -> List[FunctionNode]:
        """Implementations ``attr`` may dispatch to from ``class_name``:
        the nearest ancestor implementation plus every subclass override."""
        out: List[FunctionNode] = []
        seen: Set[Key] = set()
        # upward: nearest definition along the bases
        queue = [class_name]
        visited: Set[str] = set()
        while queue:
            current = queue.pop(0)
            if current in visited:
                continue
            visited.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            impl = info.methods.get(attr)
            if impl is not None:
                if impl.key not in seen:
                    seen.add(impl.key)
                    out.append(impl)
                break  # nearest wins on this chain
            queue.extend(sorted(info.bases))
        # downward: overrides anywhere below class_name
        for sub in sorted(self._transitive_subclasses(class_name)):
            info = self.classes.get(sub)
            if info is None:
                continue
            impl = info.methods.get(attr)
            if impl is not None and impl.key not in seen:
                seen.add(impl.key)
                out.append(impl)
        return out

    def _transitive_subclasses(self, class_name: str) -> Set[str]:
        out: Set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop()
            for sub in self._subclasses.get(current, ()):
                if sub not in out:
                    out.add(sub)
                    queue.append(sub)
        return out

    def _resolve_reference(
        self, module: ModuleInfo, node: ast.AST, scope: _Scope
    ) -> List[Tuple[FunctionNode, bool]]:
        """Function(s) a value expression refers to (callback position)."""
        if isinstance(node, ast.Name):
            found = self._resolve_scoped_name(module, node.id, scope)
            if isinstance(found, FunctionNode):
                return [(found, True)]
            return []
        if isinstance(node, ast.Attribute):
            targets, sharp, _klass = self._resolve_attribute(
                module, node, scope
            )
            return [(t, sharp) for t in targets]
        if isinstance(node, ast.Call):
            func = node.func
            tail = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            if tail == "partial" and node.args:
                # functools.partial(fn, ...): the wrapped fn is the target
                return self._resolve_reference(module, node.args[0], scope)
            if tail == "getattr" and len(node.args) >= 2:
                owner, name_arg = node.args[0], node.args[1]
                if (
                    isinstance(name_arg, ast.Constant)
                    and isinstance(name_arg.value, str)
                    and isinstance(owner, ast.Name)
                    and owner.id in ("self", "cls")
                ):
                    klass = self._enclosing_class(scope)
                    if klass is not None:
                        return [
                            (t, True)
                            for t in self.resolve_method(
                                klass, name_arg.value
                            )
                        ]
        return []

    # ------------------------------------------------------------------
    # Query API (used by the rules and the CLI)
    # ------------------------------------------------------------------
    def call_targets(self, call: ast.Call) -> List[FunctionNode]:
        return self._call_targets.get(id(call), [])

    def call_is_sharp(self, call: ast.Call) -> bool:
        return self._call_sharp.get(id(call), True)

    def constructed_class(self, call: ast.Call) -> Optional[ClassInfo]:
        return self._call_class.get(id(call))

    def function_of(self, node: ast.AST) -> Optional[FunctionNode]:
        """The FunctionNode for a def's AST node."""
        return self._fn_by_ast.get(id(node))

    def edges_in(self, fn: FunctionNode) -> List[CallEdge]:
        return self._edges_in.get(fn.key, [])

    def edges_out(self, fn: FunctionNode) -> List[CallEdge]:
        return self._edges_out.get(fn.key, [])

    def callers_of(self, fn: FunctionNode) -> List[FunctionNode]:
        seen: Set[Key] = set()
        out: List[FunctionNode] = []
        for edge in self.edges_in(fn):
            if edge.caller is not None and edge.caller.key not in seen:
                seen.add(edge.caller.key)
                out.append(edge.caller)
        return out

    def reachable_from(self, roots: Iterable[FunctionNode]) -> List[FunctionNode]:
        """Transitive closure over call+ref out-edges, roots included."""
        seen: Set[Key] = set()
        order: List[FunctionNode] = []
        queue = list(roots)
        while queue:
            fn = queue.pop(0)
            if fn.key in seen:
                continue
            seen.add(fn.key)
            order.append(fn)
            for edge in self.edges_out(fn):
                if edge.callee.key not in seen:
                    queue.append(edge.callee)
        return order

    def module_mutable_globals(self, module: ModuleInfo) -> Dict[str, int]:
        """Module-level non-constant names bound to mutable containers
        or counters — *including* pragma-suppressed ones (a deliberate
        process-wide registry is still unsafe to touch from snapshot
        factories)."""
        from .rules_state import _constant_by_convention, _is_counter_call, \
            _mutable_value

        out: Dict[str, int] = {}
        assert module.tree is not None
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            if not (_is_counter_call(value) or _mutable_value(value)):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and \
                        not _constant_by_convention(target.id):
                    out[target.id] = node.lineno
        return out

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def unreferenced(self) -> List[FunctionNode]:
        """Functions with zero in-edges that look like real dead-code
        candidates: not dunders, not decorated (properties and the like
        are reached without a Call), not exported via ``__all__`` —
        including re-exports, where a package ``__init__`` lists an
        imported name whose definition lives elsewhere."""
        exported: Set[Key] = set()
        for rel, names in self._exports.items():
            if rel.endswith("__init__.py"):
                module_key = rel[: -len("__init__.py")].rstrip("/")
            else:
                module_key = rel[:-3]
            for name in names:
                resolved = self._resolve_exported(module_key, name, set())
                if isinstance(resolved, FunctionNode):
                    exported.add(resolved.key)
        out: List[FunctionNode] = []
        for key in sorted(self.functions):
            fn = self.functions[key]
            if self._edges_in.get(key):
                continue
            name = fn.name
            if name.startswith("__") and name.endswith("__"):
                continue
            if getattr(fn.node, "decorator_list", []):
                continue
            if key in exported:
                continue
            out.append(fn)
        return out

    def stats(self) -> Dict[str, int]:
        return {
            "modules": len(self._module_funcs),
            "functions": len(self.functions),
            "classes": len(self.classes),
            "edges": len(self.edges),
            "call_edges": sum(1 for e in self.edges if e.kind == "call"),
            "ref_edges": sum(1 for e in self.edges if e.kind == "ref"),
            "generators": sum(
                1 for f in self.functions.values() if f.is_generator
            ),
            "unreferenced": len(self.unreferenced()),
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dump (stable ordering) for ``lint --graph --json``."""
        nodes = [
            {
                "id": f"{fn.rel}::{fn.qualname}",
                "file": fn.rel,
                "line": fn.line,
                "class": fn.class_name,
                "generator": fn.is_generator,
                "nested": fn.is_nested,
            }
            for key, fn in sorted(self.functions.items())
        ]
        edges = sorted(
            {
                (
                    f"{e.caller.rel}::{e.caller.qualname}"
                    if e.caller else f"{e.module.rel}::<module>",
                    f"{e.callee.rel}::{e.callee.qualname}",
                    e.kind,
                    bool(e.sharp),
                )
                for e in self.edges
            }
        )
        return {
            "stats": self.stats(),
            "nodes": nodes,
            "edges": [
                {"caller": c, "callee": t, "kind": k, "sharp": s}
                for (c, t, k, s) in edges
            ],
            "unreferenced": [
                f"{fn.rel}::{fn.qualname}" for fn in self.unreferenced()
            ],
        }

    def to_dot(self) -> str:
        """GraphViz dump (call edges solid, ref edges dashed)."""
        lines = ["digraph callgraph {", "  rankdir=LR;", "  node [shape=box];"]
        seen: Set[Tuple[str, str, str]] = set()
        for edge in self.edges:
            caller = (
                f"{edge.caller.rel}::{edge.caller.qualname}"
                if edge.caller else f"{edge.module.rel}::<module>"
            )
            callee = f"{edge.callee.rel}::{edge.callee.qualname}"
            item = (caller, callee, edge.kind)
            if item in seen:
                continue
            seen.add(item)
            style = ' [style=dashed]' if edge.kind == "ref" else ""
            lines.append(f'  "{caller}" -> "{callee}"{style};')
        lines.append("}")
        return "\n".join(lines) + "\n"

    def render_report(self) -> str:
        """Human-readable reachability / dead-code report."""
        stats = self.stats()
        lines = ["call graph:"]
        for key in (
            "modules", "functions", "classes", "edges", "call_edges",
            "ref_edges", "generators",
        ):
            lines.append(f"  {key:12} {stats[key]}")
        dead = self.unreferenced()
        lines.append(f"\nunreferenced functions ({len(dead)}) — no call or "
                     "reference edge anywhere under the linted root")
        lines.append("(excludes dunders, decorated defs, and __all__ exports;")
        lines.append(" entries may still be used by tests/benchmarks/examples)")
        for fn in dead:
            lines.append(f"  {fn.rel}:{fn.line} {fn.qualname}")
        return "\n".join(lines)


def _dunder_all(module_tree: ast.Module) -> Set[str]:
    for node in module_tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == "__all__" and \
                    isinstance(node.value, (ast.List, ast.Tuple)):
                return {
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                }
    return set()


def _package_key(rel: str) -> Tuple[str, ...]:
    """Package of a module rel-path: ``kernel/process.py`` -> ("kernel",)."""
    parts = rel.split("/")
    parts[-1] = parts[-1][:-3]  # strip .py
    if parts[-1] == "__init__":
        parts.pop()
        return tuple(parts)
    return tuple(parts[:-1])
