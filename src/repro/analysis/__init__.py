"""Static analysis for the reproduction's whole-codebase invariants.

The runtime guarantees this repo advertises — byte-identical fixed-seed
traces, zero-cost-when-disabled tracing, crash-consistent migration
transactions — are properties of *every* call site, not just the ones a
test happens to exercise.  This package checks them statically, on the
AST, so a violating PR fails CI even when no test covers the new code:

* :mod:`.rules_determinism` — no wall-clock or ambient randomness;
  named RNG substreams; ordered iteration into effectful calls.
* :mod:`.rules_observability` — every trace/span emission dominated by
  an ``enabled`` / ``is not None`` guard.
* :mod:`.rules_rpc` — service names registered and called consistently;
  handlers are generator coroutines.
* :mod:`.rules_txn` — journaled steps come from ``TXN_STEPS``; undo-log
  kinds are pushed and replayed symmetrically.
* :mod:`.rules_errors` — ``net/``, ``fs/`` and ``migration/`` raise
  only through the unified error hierarchies.
* :mod:`.rules_state` — no module-level mutable state (process-wide
  counters/caches); per-cluster state lives in ``sim.state``.
* :mod:`.rules_packaging` — migration and checkpointing stay on the
  shared process-packaging helpers (no divergent copies).

Run it as ``python -m repro lint``; see ``docs/static-analysis.md`` for
the rule catalogue, the ``# lint: disable=RULE(reason)`` pragma, and
the baseline workflow.
"""

from .baseline import Baseline, DEFAULT_BASELINE_PATH
from .core import (
    Finding,
    LintResult,
    ModuleInfo,
    Rule,
    Tree,
    all_rules,
    default_src_root,
    run_lint,
)

# Importing the rule modules registers their rules.
from . import rules_determinism  # noqa: F401
from . import rules_errors  # noqa: F401
from . import rules_observability  # noqa: F401
from . import rules_packaging  # noqa: F401
from . import rules_rpc  # noqa: F401
from . import rules_state  # noqa: F401
from . import rules_txn  # noqa: F401

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_PATH",
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "Tree",
    "all_rules",
    "default_src_root",
    "run_lint",
]
