"""Static analysis for the reproduction's whole-codebase invariants.

The runtime guarantees this repo advertises — byte-identical fixed-seed
traces, zero-cost-when-disabled tracing, crash-consistent migration
transactions — are properties of *every* call site, not just the ones a
test happens to exercise.  This package checks them statically, on the
AST, so a violating PR fails CI even when no test covers the new code:

* :mod:`.rules_determinism` — no wall-clock or ambient randomness;
  named RNG substreams; ordered iteration into effectful calls.
* :mod:`.rules_observability` — every trace/span emission dominated by
  an ``enabled`` / ``is not None`` guard.
* :mod:`.rules_rpc` — service names registered and called consistently;
  handlers are generator coroutines.
* :mod:`.rules_txn` — journaled steps come from ``TXN_STEPS``; undo-log
  kinds are pushed and replayed symmetrically.
* :mod:`.rules_exceptions` — exceptions escaping ``net/``, ``fs/``,
  ``migration/`` and ``checkpoint/`` entry points (transitively, along
  the call graph) stay inside the unified error hierarchies.
* :mod:`.rules_state` — no module-level mutable state (process-wide
  counters/caches); per-cluster state lives in ``sim.state``.
* :mod:`.rules_packaging` — migration and checkpointing stay on the
  shared process-packaging helpers (no divergent copies).
* :mod:`.rules_coroutine` — coroutine calls are driven (`yield from`/
  spawn), never discarded or truth-tested.
* :mod:`.rules_taint` — wall-clock/entropy taint cannot reach sim code
  through helper returns.
* :mod:`.rules_snapshot` — spawn factories are picklable and their
  reachable code touches no module-level mutable state.

The interprocedural rules share one whole-tree call graph
(:mod:`.callgraph`) and a summary-based dataflow engine
(:mod:`.dataflow`); see ``python -m repro lint --graph`` for the
reachability/dead-code report and DOT/JSON dumps.

Run it as ``python -m repro lint``; see ``docs/static-analysis.md`` for
the rule catalogue, the ``# lint: disable=RULE(reason)`` pragma, and
the baseline workflow.
"""

from .baseline import Baseline, DEFAULT_BASELINE_PATH
from .core import (
    Finding,
    LintResult,
    ModuleInfo,
    Rule,
    Tree,
    all_rules,
    default_src_root,
    run_lint,
)

# Importing the rule modules registers their rules.
from . import rules_coroutine  # noqa: F401
from . import rules_determinism  # noqa: F401
from . import rules_exceptions  # noqa: F401
from . import rules_observability  # noqa: F401
from . import rules_packaging  # noqa: F401
from . import rules_rpc  # noqa: F401
from . import rules_snapshot  # noqa: F401
from . import rules_state  # noqa: F401
from . import rules_taint  # noqa: F401
from . import rules_txn  # noqa: F401

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_PATH",
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "Tree",
    "all_rules",
    "default_src_root",
    "run_lint",
]
