"""RPC conformance rules.

``net/rpc.py``'s contract: services are registered by name with a
generator-function handler (``port.register(name, handler)``) and
invoked by name (``yield from port.call(dst, name, args)``).  The name
is a free-form string, so a typo on either side compiles fine and fails
only at runtime with an ``unknown service`` error on some code path a
test may never walk.  These rules close the loop statically:

* every called service name has a registration somewhere in the tree;
* every registered service name is called somewhere (dead services are
  usually a rename that missed the call sites);
* every registered handler is a generator function, since the RPC
  server drives handlers with ``yield from``;
* a handler registered ``idempotent=True`` opts out of the exactly-once
  dedup cache, so it must not mutate server state — a duplicated packet
  re-executes it.

Call-site names are resolved through module constants, class constants
(``self.GOSSIP_SERVICE``) and one level of forwarding helpers — a
method that passes its own parameter into the service slot of ``.call``
(e.g. ``FsServer._callback``) has its call sites' literals collected.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from .core import (
    Finding,
    ModuleInfo,
    Rule,
    Tree,
    dotted_name,
    is_generator,
    register_rule,
    resolve_str_arg,
)

_Site = Tuple[ModuleInfo, ast.AST]


def _is_rpc_receiver(receiver: str) -> bool:
    tail = receiver.rsplit(".", 1)[-1]
    return tail == "rpc" or tail.startswith("port")


def _service_arg(call: ast.Call) -> Optional[ast.AST]:
    """The service-name slot of ``port.call(dst, service, ...)``."""
    if len(call.args) >= 2:
        return call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "service":
            return keyword.value
    return None


def _collect(tree: Tree):
    """One pass over the tree: registrations, calls, forwarding helpers."""
    registered: Dict[str, List[_Site]] = {}
    handlers: List[Tuple[ModuleInfo, ast.Call, ast.AST]] = []
    called: Dict[str, List[_Site]] = {}
    unresolved_calls: List[_Site] = []
    # (module.rel, helper-name) -> 0-based positional index (after self)
    # of the parameter the helper forwards into the service slot.
    helper_params: Dict[Tuple[str, str], int] = {}

    for module in tree.parsed():
        assert module.tree is not None
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = [arg.arg for arg in func.args.args]
            if params and params[0] in ("self", "cls"):
                params = params[1:]
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                target = node.func
                if not isinstance(target, ast.Attribute):
                    continue
                if target.attr == "call" and _is_rpc_receiver(
                    dotted_name(target.value)
                ):
                    arg = _service_arg(node)
                    if (
                        isinstance(arg, ast.Name)
                        and arg.id in params
                        and resolve_str_arg(module, node, arg) is None
                    ):
                        helper_params[(module.rel, func.name)] = params.index(
                            arg.id
                        )

    for module in tree.parsed():
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = node.func
            if not isinstance(target, ast.Attribute):
                continue
            receiver = dotted_name(target.value)
            if target.attr == "register":
                name_arg = node.args[0] if node.args else None
                name = resolve_str_arg(module, node, name_arg)
                if name is None:
                    continue  # e.g. lan.register(node) — not a service
                registered.setdefault(name, []).append((module, node))
                if len(node.args) >= 2:
                    handlers.append((module, node, node.args[1]))
            elif target.attr == "call" and _is_rpc_receiver(receiver):
                arg = _service_arg(node)
                name = resolve_str_arg(module, node, arg)
                if name is None:
                    if not _inside_helper(module, node, arg, helper_params):
                        unresolved_calls.append((module, node))
                else:
                    called.setdefault(name, []).append((module, node))
            elif (module.rel, target.attr) in helper_params:
                index = helper_params[(module.rel, target.attr)]
                arg: Optional[ast.AST] = None
                if index < len(node.args):
                    arg = node.args[index]
                name = resolve_str_arg(module, node, arg)
                if name is not None:
                    called.setdefault(name, []).append((module, node))

    return registered, handlers, called, unresolved_calls


def _inside_helper(
    module: ModuleInfo,
    call: ast.Call,
    arg: Optional[ast.AST],
    helper_params: Dict[Tuple[str, str], int],
) -> bool:
    """Is this the body of a forwarding helper passing its own param?"""
    if not isinstance(arg, ast.Name):
        return False
    parent = module.parents.get(call)
    while parent is not None:
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return (module.rel, parent.name) in helper_params
        parent = module.parents.get(parent)
    return False


class UnregisteredServiceRule(Rule):
    id = "rpc-unregistered-service"
    description = (
        "Every service name passed to port.call must be registered "
        "somewhere in the tree."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        registered, _, called, unresolved = _collect(tree)
        for name, sites in sorted(called.items()):
            if name in registered:
                continue
            for module, node in sites:
                yield module.finding(
                    self.id,
                    node,
                    f'service "{name}" is called but never registered '
                    "with any RpcPort",
                )
        for module, node in unresolved:
            yield module.finding(
                self.id,
                node,
                "service name is not statically resolvable; use a "
                "literal or a module/class constant",
            )


class UnusedServiceRule(Rule):
    id = "rpc-unused-service"
    description = (
        "Every registered service should have at least one call site "
        "(dead registrations are usually missed renames)."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        registered, _, called, _ = _collect(tree)
        for name, sites in sorted(registered.items()):
            if name in called:
                continue
            for module, node in sites:
                yield module.finding(
                    self.id,
                    node,
                    f'service "{name}" is registered but no call site '
                    "references it",
                )


class HandlerNotGeneratorRule(Rule):
    id = "rpc-handler-not-generator"
    description = (
        "RPC handlers are driven with `yield from`; a registered "
        "handler must be a generator function."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        for module, call, handler in _handler_sites(tree):
            func = _resolve_handler(module, handler)
            if func is None:
                continue  # can't resolve: don't guess
            if not is_generator(func):
                yield module.finding(
                    self.id,
                    call,
                    f"handler `{dotted_name(handler)}` is not a generator "
                    "function (no yield); the RPC server drives handlers "
                    "with `yield from`",
                )


def _handler_sites(tree: Tree):
    _, handlers, _, _ = _collect(tree)
    return handlers


#: Method names that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear",
})


def _roots_at_self(node: ast.AST) -> bool:
    """Does this attribute/subscript chain start at ``self``?"""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


def _mutates_self(func: ast.AST) -> Optional[ast.AST]:
    """First statement in ``func`` that mutates ``self`` state, if any.

    Catches direct writes (``self.x = ...``, ``self.x[k] = ...``,
    ``self.x += ...``, ``del self.x[...]``) and in-place mutator calls
    (``self.cache.pop(...)``, ``self.seen.add(...)``).  Reads, locals
    and yields are fine — an idempotent handler may compute, just not
    leave a mark.
    """
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    if any(_roots_at_self(el) for el in target.elts):
                        return node
                elif (
                    isinstance(target, (ast.Attribute, ast.Subscript))
                    and _roots_at_self(target)
                ):
                    return node
        elif isinstance(node, ast.Delete):
            if any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                and _roots_at_self(t)
                for t in node.targets
            ):
                return node
        elif isinstance(node, ast.Call):
            target = node.func
            if (
                isinstance(target, ast.Attribute)
                and target.attr in _MUTATORS
                and _roots_at_self(target.value)
            ):
                return node
    return None


class IdempotentHandlerMutatesRule(Rule):
    id = "rpc-idempotency"
    description = (
        "A handler registered idempotent=True bypasses the exactly-once "
        "dedup cache; it must not mutate server state, or duplicated "
        "packets double-apply it."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        for module, call, handler in _handler_sites(tree):
            if not any(
                kw.arg == "idempotent"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in call.keywords
            ):
                continue
            func = _resolve_handler(module, handler)
            if func is None:
                continue  # can't resolve: don't guess
            mutation = _mutates_self(func)
            if mutation is not None:
                yield module.finding(
                    self.id,
                    call,
                    f"handler `{dotted_name(handler)}` is registered "
                    "idempotent=True but mutates self state "
                    f"(line {mutation.lineno}); drop the flag so the "
                    "dedup cache replays it, or make it read-only",
                )


def _resolve_handler(
    module: ModuleInfo, handler: ast.AST
) -> Optional[ast.AST]:
    """Find the def a handler expression refers to, if it's local."""
    assert module.tree is not None
    name: Optional[str] = None
    if isinstance(handler, ast.Attribute):
        name = handler.attr
    elif isinstance(handler, ast.Name):
        name = handler.id
    if name is None:
        return None
    for node in ast.walk(module.tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == name
        ):
            return node
    return None


register_rule(UnregisteredServiceRule())
register_rule(UnusedServiceRule())
register_rule(HandlerNotGeneratorRule())
register_rule(IdempotentHandlerMutatesRule())
