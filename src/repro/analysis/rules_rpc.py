"""RPC conformance rules.

``net/rpc.py``'s contract: services are registered by name with a
generator-function handler (``port.register(name, handler)``) and
invoked by name (``yield from port.call(dst, name, args)``).  The name
is a free-form string, so a typo on either side compiles fine and fails
only at runtime with an ``unknown service`` error on some code path a
test may never walk.  These rules close the loop statically:

* every called service name has a registration somewhere in the tree;
* every registered service name is called somewhere (dead services are
  usually a rename that missed the call sites);
* every registered handler is a generator function, since the RPC
  server drives handlers with ``yield from``;
* a handler registered ``idempotent=True`` opts out of the exactly-once
  dedup cache, so it must not mutate server state — a duplicated packet
  re-executes it.

Call-site names are resolved through module constants, class constants
(``self.GOSSIP_SERVICE``) and forwarding helpers: a function that
passes one of its own parameters into the service slot of ``.call``
(e.g. ``FsServer._callback``) has the literals collected from its call
sites, chased through the call graph to *any* forwarding depth — a
helper calling a helper calling ``.call`` resolves the same way.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .callgraph import CallGraph, FunctionNode
from .core import (
    Finding,
    ModuleInfo,
    Rule,
    Tree,
    dotted_name,
    enclosing_function,
    is_generator,
    register_rule,
    resolve_str_arg,
)

_Site = Tuple[ModuleInfo, ast.AST]


def _is_rpc_receiver(receiver: str) -> bool:
    tail = receiver.rsplit(".", 1)[-1]
    return tail == "rpc" or tail.startswith("port")


def _service_arg(call: ast.Call) -> Optional[ast.AST]:
    """The service-name slot of ``port.call(dst, service, ...)``."""
    if len(call.args) >= 2:
        return call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "service":
            return keyword.value
    return None


def _param_index(func: ast.AST, name: str) -> Optional[int]:
    """0-based positional index of a parameter, after self/cls."""
    params = [arg.arg for arg in func.args.args]  # type: ignore[union-attr]
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    try:
        return params.index(name)
    except ValueError:
        return None


def _chase_forwarded(
    graph: CallGraph,
    fn: FunctionNode,
    param_name: str,
    visited: Set[Tuple[Tuple[str, str], str]],
) -> List[Tuple[ModuleInfo, ast.Call, str]]:
    """Literal service names reaching ``param_name`` of ``fn`` from its
    call sites, chased through forwarding helpers to any depth.

    Call sites whose argument is neither a resolvable string nor a
    parameter of *their* enclosing function are skipped conservatively,
    exactly as the old one-level heuristic did.
    """
    results: List[Tuple[ModuleInfo, ast.Call, str]] = []
    key = (fn.key, param_name)
    if key in visited:
        return results
    visited.add(key)
    index = _param_index(fn.node, param_name)
    if index is None:
        return results
    for edge in graph.edges_in(fn):
        if edge.call is None:
            continue
        call, module = edge.call, edge.module
        arg: Optional[ast.AST] = None
        for keyword in call.keywords:
            if keyword.arg == param_name:
                arg = keyword.value
        if arg is None and index < len(call.args):
            arg = call.args[index]
        if arg is None:
            continue
        name = resolve_str_arg(module, call, arg)
        if name is not None:
            results.append((module, call, name))
            continue
        if isinstance(arg, ast.Name) and edge.caller is not None and \
                _param_index(edge.caller.node, arg.id) is not None:
            results.extend(
                _chase_forwarded(graph, edge.caller, arg.id, visited)
            )
    return results


def _collect(tree: Tree):
    """One pass over the tree: registrations, calls, forwarded literals."""
    graph: CallGraph = tree.callgraph()
    registered: Dict[str, List[_Site]] = {}
    handlers: List[Tuple[ModuleInfo, ast.Call, ast.AST]] = []
    called: Dict[str, List[_Site]] = {}
    unresolved_calls: List[_Site] = []

    for module in tree.parsed():
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = node.func
            if not isinstance(target, ast.Attribute):
                continue
            receiver = dotted_name(target.value)
            if target.attr == "register":
                name_arg = node.args[0] if node.args else None
                name = resolve_str_arg(module, node, name_arg)
                if name is None:
                    continue  # e.g. lan.register(node) — not a service
                registered.setdefault(name, []).append((module, node))
                if len(node.args) >= 2:
                    handlers.append((module, node, node.args[1]))
            elif target.attr == "call" and _is_rpc_receiver(receiver):
                arg = _service_arg(node)
                name = resolve_str_arg(module, node, arg)
                if name is not None:
                    called.setdefault(name, []).append((module, node))
                    continue
                # forwarding helper: the service slot holds one of the
                # enclosing function's own parameters — collect the
                # literals its (transitive) call sites pass in.
                func_ast = (
                    enclosing_function(module, node)
                    if isinstance(arg, ast.Name) else None
                )
                fn = (
                    graph.function_of(func_ast)
                    if func_ast is not None else None
                )
                if (
                    fn is not None
                    and isinstance(arg, ast.Name)
                    and _param_index(fn.node, arg.id) is not None
                ):
                    for cmodule, csite, cname in _chase_forwarded(
                        graph, fn, arg.id, set()
                    ):
                        called.setdefault(cname, []).append((cmodule, csite))
                else:
                    unresolved_calls.append((module, node))

    return registered, handlers, called, unresolved_calls


class UnregisteredServiceRule(Rule):
    id = "rpc-unregistered-service"
    description = (
        "Every service name passed to port.call must be registered "
        "somewhere in the tree."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        registered, _, called, unresolved = _collect(tree)
        for name, sites in sorted(called.items()):
            if name in registered:
                continue
            for module, node in sites:
                yield module.finding(
                    self.id,
                    node,
                    f'service "{name}" is called but never registered '
                    "with any RpcPort",
                )
        for module, node in unresolved:
            yield module.finding(
                self.id,
                node,
                "service name is not statically resolvable; use a "
                "literal or a module/class constant",
            )


class UnusedServiceRule(Rule):
    id = "rpc-unused-service"
    description = (
        "Every registered service should have at least one call site "
        "(dead registrations are usually missed renames)."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        registered, _, called, _ = _collect(tree)
        for name, sites in sorted(registered.items()):
            if name in called:
                continue
            for module, node in sites:
                yield module.finding(
                    self.id,
                    node,
                    f'service "{name}" is registered but no call site '
                    "references it",
                )


class HandlerNotGeneratorRule(Rule):
    id = "rpc-handler-not-generator"
    description = (
        "RPC handlers are driven with `yield from`; a registered "
        "handler must be a generator function."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        for module, call, handler in _handler_sites(tree):
            func = _resolve_handler(module, handler)
            if func is None:
                continue  # can't resolve: don't guess
            if not is_generator(func):
                yield module.finding(
                    self.id,
                    call,
                    f"handler `{dotted_name(handler)}` is not a generator "
                    "function (no yield); the RPC server drives handlers "
                    "with `yield from`",
                )


def _handler_sites(tree: Tree):
    _, handlers, _, _ = _collect(tree)
    return handlers


#: Method names that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear",
})


def _roots_at_self(node: ast.AST) -> bool:
    """Does this attribute/subscript chain start at ``self``?"""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


def _mutates_self(func: ast.AST) -> Optional[ast.AST]:
    """First statement in ``func`` that mutates ``self`` state, if any.

    Catches direct writes (``self.x = ...``, ``self.x[k] = ...``,
    ``self.x += ...``, ``del self.x[...]``) and in-place mutator calls
    (``self.cache.pop(...)``, ``self.seen.add(...)``).  Reads, locals
    and yields are fine — an idempotent handler may compute, just not
    leave a mark.
    """
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    if any(_roots_at_self(el) for el in target.elts):
                        return node
                elif (
                    isinstance(target, (ast.Attribute, ast.Subscript))
                    and _roots_at_self(target)
                ):
                    return node
        elif isinstance(node, ast.Delete):
            if any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                and _roots_at_self(t)
                for t in node.targets
            ):
                return node
        elif isinstance(node, ast.Call):
            target = node.func
            if (
                isinstance(target, ast.Attribute)
                and target.attr in _MUTATORS
                and _roots_at_self(target.value)
            ):
                return node
    return None


class IdempotentHandlerMutatesRule(Rule):
    id = "rpc-idempotency"
    description = (
        "A handler registered idempotent=True bypasses the exactly-once "
        "dedup cache; it must not mutate server state, or duplicated "
        "packets double-apply it."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        for module, call, handler in _handler_sites(tree):
            if not any(
                kw.arg == "idempotent"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in call.keywords
            ):
                continue
            func = _resolve_handler(module, handler)
            if func is None:
                continue  # can't resolve: don't guess
            mutation = _mutates_self(func)
            if mutation is not None:
                yield module.finding(
                    self.id,
                    call,
                    f"handler `{dotted_name(handler)}` is registered "
                    "idempotent=True but mutates self state "
                    f"(line {mutation.lineno}); drop the flag so the "
                    "dedup cache replays it, or make it read-only",
                )


def _resolve_handler(
    module: ModuleInfo, handler: ast.AST
) -> Optional[ast.AST]:
    """Find the def a handler expression refers to, if it's local."""
    assert module.tree is not None
    name: Optional[str] = None
    if isinstance(handler, ast.Attribute):
        name = handler.attr
    elif isinstance(handler, ast.Name):
        name = handler.id
    if name is None:
        return None
    for node in ast.walk(module.tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == name
        ):
            return node
    return None


register_rule(UnregisteredServiceRule())
register_rule(UnusedServiceRule())
register_rule(HandlerNotGeneratorRule())
register_rule(IdempotentHandlerMutatesRule())
