"""Grandfathered-finding baseline.

The baseline is a checked-in JSON file mapping known findings to how
many instances of each are tolerated.  Entries are keyed by
``(rule, file, snippet)`` rather than line number so unrelated edits
above a grandfathered site don't invalidate it; an edit *to* the site
itself changes the snippet and resurfaces the finding.

The goal state is an empty baseline — ``python -m repro lint --baseline
update`` exists for incremental adoption, not as a parking lot.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Tuple

from .core import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_PATH"]

#: repo-root-relative location of the checked-in baseline
DEFAULT_BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parents[3] / "tools" / "lint_baseline.json"
)

_Key = Tuple[str, str, str]


class Baseline:
    def __init__(self, entries: Optional[Dict[_Key, int]] = None):
        self.entries: Dict[_Key, int] = dict(entries or {})

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: pathlib.Path) -> "Baseline":
        if not path.exists():
            return cls()
        raw = json.loads(path.read_text())
        entries: Dict[_Key, int] = {}
        for item in raw.get("entries", []):
            key = (item["rule"], item["file"], item.get("snippet", ""))
            entries[key] = int(item.get("count", 1))
        return cls(entries)

    def save(self, path: pathlib.Path) -> None:
        items = [
            {"rule": rule, "file": file, "snippet": snippet, "count": count}
            for (rule, file, snippet), count in sorted(self.entries.items())
        ]
        payload = {
            "comment": (
                "Grandfathered lint findings; keep this empty. "
                "Regenerate with: python -m repro lint --baseline update"
            ),
            "entries": items,
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")

    # ------------------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        entries: Dict[_Key, int] = {}
        for finding in findings:
            key = (finding.rule, finding.rel, finding.snippet)
            entries[key] = entries.get(key, 0) + 1
        return cls(entries)

    def filter(self, findings: List[Finding]) -> Tuple[List[Finding], int]:
        """Drop findings covered by the baseline.

        Returns ``(kept, grandfathered_count)``.  Each baseline entry
        absorbs at most its recorded count, so *new* duplicates of a
        grandfathered pattern still fail.
        """
        budget = dict(self.entries)
        kept: List[Finding] = []
        grandfathered = 0
        for finding in findings:
            key = (finding.rule, finding.rel, finding.snippet)
            remaining = budget.get(key, 0)
            if remaining > 0:
                budget[key] = remaining - 1
                grandfathered += 1
            else:
                kept.append(finding)
        return kept, grandfathered

    def __len__(self) -> int:
        return sum(self.entries.values())
