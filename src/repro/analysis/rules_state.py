"""Module-state rules.

A process-wide counter or cache at module level outlives any one
cluster: the second cluster built in the same interpreter starts from
wherever the first one left the state, so ids drift, fixed-seed traces
stop being byte-identical, and snapshot forks diverge from fresh
builds.  That exact bug shipped once as ``fs/streams.py``'s global
stream-id ``itertools.count`` (papered over with a manual reset in the
cluster constructor) — now every cluster draws ids from its own
:class:`~repro.sim.StateRegistry` (``sim.state``), and this rule keeps
the next process-wide counter from creeping in.

What counts as module-level mutable state:

* any ``itertools.count(...)`` (or bare ``count(...)``) at module
  scope — a counter is state by construction, whatever it's named;
* a module-level name bound to a mutable container (dict/list/set
  literal or comprehension, ``dict()``/``list()``/``set()``,
  ``defaultdict``/``deque``/``Counter``/``OrderedDict``) unless the
  name is ALL_CAPS (constant by convention) or a dunder (``__all__``);
* any ``global NAME`` declaration inside a function — rebinding module
  scope at runtime is the same disease with extra steps.

Genuinely constant lookup tables should be ALL_CAPS; a deliberate
process-wide registry (rare — the lint registry itself is one) carries
a ``# lint: disable=state-module-mutable(reason)`` pragma.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from .core import Finding, Rule, Tree, dotted_name, register_rule

__all__ = ["ModuleMutableStateRule"]

_MUTABLE_CONSTRUCTORS = {
    "dict",
    "list",
    "set",
    "bytearray",
    "defaultdict",
    "deque",
    "Counter",
    "OrderedDict",
    "ChainMap",
}

_COUNTER_SUFFIXES = ("itertools.count", "count")


def _is_counter_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    return name in _COUNTER_SUFFIXES or name.endswith(".count")


def _mutable_value(node: ast.AST) -> Optional[str]:
    """Describe the mutable container ``node`` builds, or None."""
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "a dict"
    if isinstance(node, (ast.List, ast.ListComp)):
        return "a list"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        tail = name.rsplit(".", 1)[-1]
        if tail in _MUTABLE_CONSTRUCTORS:
            return f"{tail}(...)"
    return None


def _constant_by_convention(name: str) -> bool:
    return name == name.upper() or (
        name.startswith("__") and name.endswith("__")
    )


class ModuleMutableStateRule(Rule):
    id = "state-module-mutable"
    description = (
        "No module-level mutable state under src/repro: counters and "
        "caches live per-cluster in sim.state (StateRegistry); constant "
        "tables are ALL_CAPS; deliberate process-wide registries carry "
        "a pragma."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        for module in tree.parsed():
            assert module.tree is not None
            for node in module.tree.body:
                yield from self._check_toplevel(module, node)
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Global):
                    names = ", ".join(node.names)
                    yield module.finding(
                        self.id,
                        node,
                        f"`global {names}` mutates module scope at "
                        "runtime; keep per-cluster state in sim.state "
                        "(StateRegistry)",
                    )

    def _check_toplevel(self, module, node) -> Iterable[Finding]:
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            return
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            return
        if _is_counter_call(value):
            yield module.finding(
                self.id,
                node,
                f"module-level counter `{names[0]}` is process-wide "
                "state shared by every cluster in the interpreter; "
                "allocate it per cluster via "
                'sim.state.counter("<component>.<name>")',
            )
            return
        what = _mutable_value(value)
        if what is None:
            return
        flagged = [n for n in names if not _constant_by_convention(n)]
        if not flagged:
            return
        yield module.finding(
            self.id,
            node,
            f"module-level `{flagged[0]}` binds {what}: mutable "
            "process-wide state outlives any one cluster and breaks "
            "fork-equals-fresh determinism; move it into sim.state, "
            "onto an instance, or rename ALL_CAPS if truly constant",
        )


register_rule(ModuleMutableStateRule())
