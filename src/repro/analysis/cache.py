"""Content-hash-keyed lint result cache (opt-in via ``--cache``).

The interprocedural rules pay for a whole-tree call-graph build plus
dataflow fixpoints on every run.  All of it is a pure function of the
source tree and the rule set, so a warm CI runner (or a pre-commit
hook) can skip the entire parse-and-analyze pass when nothing changed:

* **key** — sha256 over a schema version, the selected rule ids, and
  every file's ``(rel path, sha256(contents))`` pair, in sorted order.
  Any edit, rename, addition or deletion changes the key.
* **value** — the *pre-baseline* outcome: kept findings (post-pragma,
  pragmas are content-derived), the pragma-suppressed count, and parse
  errors.  The baseline is re-applied on every load, so updating
  ``tools/lint_baseline.json`` never serves stale verdicts.

The cache is a single JSON file (``tools/lint_cache.json`` by default),
holds exactly one entry, and is safe to delete at any time.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Iterable, List, Optional, Sequence, Tuple

from .core import Finding, LintResult

__all__ = ["DEFAULT_CACHE_PATH", "cache_key", "load_cached", "store"]

_SCHEMA = 1

DEFAULT_CACHE_PATH = (
    pathlib.Path(__file__).resolve().parents[3] / "tools" / "lint_cache.json"
)


def _tree_files(root: pathlib.Path) -> Iterable[pathlib.Path]:
    # mirror Tree.load's file set, including its analysis/ exclusion
    for path in sorted(root.rglob("*.py")):
        if "analysis" not in path.relative_to(root).parts[:1]:
            yield path


def cache_key(root: pathlib.Path, rule_ids: Sequence[str]) -> str:
    digest = hashlib.sha256()
    digest.update(f"schema={_SCHEMA}\n".encode())
    digest.update(("rules=" + ",".join(sorted(rule_ids)) + "\n").encode())
    for path in _tree_files(root):
        rel = path.relative_to(root).as_posix()
        body = hashlib.sha256(path.read_bytes()).hexdigest()
        digest.update(f"{rel}={body}\n".encode())
    return digest.hexdigest()


def _finding_to_json(finding: Finding) -> dict:
    return {
        "rule": finding.rule,
        "path": str(finding.path),
        "rel": finding.rel,
        "line": finding.line,
        "message": finding.message,
        "snippet": finding.snippet,
    }


def _finding_from_json(data: dict) -> Finding:
    return Finding(
        rule=data["rule"],
        path=pathlib.Path(data["path"]),
        rel=data["rel"],
        line=data["line"],
        message=data["message"],
        snippet=data.get("snippet", ""),
    )


def load_cached(
    cache_path: pathlib.Path, key: str
) -> Optional[Tuple[List[Finding], int, List[Finding]]]:
    """``(kept findings, suppressed count, parse errors)`` on a hit."""
    try:
        data = json.loads(cache_path.read_text())
    except (OSError, ValueError):
        return None
    if data.get("schema") != _SCHEMA or data.get("key") != key:
        return None
    try:
        findings = [_finding_from_json(f) for f in data["findings"]]
        parse_errors = [_finding_from_json(f) for f in data["parse_errors"]]
        suppressed = int(data["suppressed"])
    except (KeyError, TypeError, ValueError):
        return None
    return findings, suppressed, parse_errors


def store(cache_path: pathlib.Path, key: str, result: LintResult,
          pre_baseline_findings: List[Finding]) -> None:
    cache_path.parent.mkdir(parents=True, exist_ok=True)
    cache_path.write_text(
        json.dumps(
            {
                "schema": _SCHEMA,
                "key": key,
                "findings": [
                    _finding_to_json(f) for f in pre_baseline_findings
                ],
                "suppressed": result.suppressed,
                "parse_errors": [
                    _finding_to_json(f) for f in result.parse_errors
                ],
            },
            indent=2,
        )
        + "\n"
    )
