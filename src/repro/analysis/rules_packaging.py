"""Shared process-packaging guard (PR 8).

Migration and checkpointing package processes the same way, on purpose:
``migration/packaging.py`` is the single home for the stream
export/import loops, byte accounting, and the install-payload shape.
History shows such helpers silently fork — a second hand-rolled
``for fd in sorted(pcb.streams): ... export_stream(...)`` loop in a new
subsystem drifts the day the canonical one grows an undo hook.

``mig-shared-packaging`` enforces convergence three ways, all scoped to
``migration/`` and ``checkpoint/`` (the two packaging callers) and all
inert on fixture trees without ``migration/packaging.py``:

* no loop outside ``packaging.py`` may call ``export_stream`` /
  ``import_stream`` directly — that is a divergent copy of the loop;
* no dict literal outside ``packaging.py`` may rebuild the install
  payload (string keys covering ``pcb``/``ticket``/``streams``);
* the two known callers (``migration/mechanism.py`` and, when present,
  the checkpoint subsystem's image module) must actually import from
  the shared module — deleting the import is how a fork starts.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set

from .core import Finding, ModuleInfo, Rule, Tree, register_rule

_PACKAGING_MODULE = "migration/packaging.py"

#: Modules required to stay on the shared helpers (when they exist).
_REQUIRED_CALLERS = ("migration/mechanism.py", "checkpoint/image.py")

#: Dict keys that identify a hand-rolled install payload.
_PAYLOAD_KEYS = {"pcb", "ticket", "streams"}

_PACKAGING_CALLS = {"export_stream", "import_stream"}


def _loop_packaging_call(loop: ast.AST) -> Optional[ast.Call]:
    """First direct ``.export_stream()``/``.import_stream()`` call in a
    loop body (nested defs are separate scopes and skipped)."""
    for node in ast.walk(loop):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _PACKAGING_CALLS
        ):
            return node
    return None


def _dict_string_keys(node: ast.Dict) -> Set[str]:
    keys: Set[str] = set()
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.add(key.value)
    return keys


def _imports_packaging(module: ModuleInfo) -> bool:
    assert module.tree is not None
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom):
            if (node.module or "").split(".")[-1] == "packaging":
                return True
            # ``from ..migration import packaging`` binds the module too.
            if any(alias.name == "packaging" for alias in node.names):
                return True
        elif isinstance(node, ast.Import):
            if any(
                alias.name.split(".")[-1] == "packaging"
                for alias in node.names
            ):
                return True
    return False


class SharedPackagingRule(Rule):
    id = "mig-shared-packaging"
    description = (
        "Migration and checkpointing must package processes through "
        "migration/packaging.py — no divergent export/import loops or "
        "hand-rolled install payloads."
    )

    def check(self, tree: Tree) -> Iterable[Finding]:
        if tree.module(_PACKAGING_MODULE) is None:
            return  # fixture tree without the shared module: inert
        for module in tree.parsed():
            if not module.rel.startswith(("migration/", "checkpoint/")):
                continue
            if module.rel == _PACKAGING_MODULE:
                continue
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.For, ast.While)):
                    call = _loop_packaging_call(node)
                    if call is not None:
                        yield module.finding(
                            self.id,
                            call,
                            f"direct {call.func.attr} loop outside "  # type: ignore[union-attr]
                            f"{_PACKAGING_MODULE} — use "
                            "packaging.export_streams/import_streams so "
                            "migration and checkpointing cannot diverge",
                        )
                elif isinstance(node, ast.Dict):
                    if _PAYLOAD_KEYS <= _dict_string_keys(node):
                        yield module.finding(
                            self.id,
                            node,
                            "hand-rolled install payload (pcb/ticket/"
                            "streams keys) — use packaging.install_payload",
                        )
        for rel in _REQUIRED_CALLERS:
            module = tree.module(rel)
            if module is None or module.tree is None:
                continue
            if not _imports_packaging(module):
                yield module.finding(
                    self.id,
                    1,
                    f"{rel} no longer imports migration/packaging — the "
                    "shared packaging discipline has forked",
                )


register_rule(SharedPackagingRule())
