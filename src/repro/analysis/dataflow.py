"""Summary-based interprocedural dataflow over the call graph.

:func:`fixpoint` is the generic engine: every function gets a summary,
a transfer function recomputes one function's summary from the bodies
and its callees' current summaries, and a worklist re-processes callers
whenever a callee's summary changes.  Summaries must grow monotonically
(set/dict union) for termination; recursion and mutual recursion are
just cycles the worklist iterates to a fixed point.

Two concrete analyses live here because several rules share them:

* :func:`exception_escapes` — for every function, the set of exception
  *class names* that can escape it, each mapped to the ``rel:line`` of
  the raise site it originated from.  ``try/except`` filtering is
  hierarchy-aware (tree classes via their base lists, builtins via the
  real builtin exception lattice), ``except``-clause bodies re-escape,
  and a bare ``raise`` inside a handler re-raises what the handler
  caught.
* :func:`tainted_returns` — which functions return a value derived from
  wall-clock / ambient entropy (``time.time()``, ``uuid.uuid4()``, …),
  propagated through local assignments and transitively through calls
  to other tainted functions.
"""

from __future__ import annotations

import ast
import builtins
from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from .callgraph import CallGraph, FunctionNode, Key
from .core import dotted_name

__all__ = [
    "exception_escapes",
    "fixpoint",
    "tainted_returns",
]

Origin = Tuple[str, int]  # (module rel, line) of the originating site


# ----------------------------------------------------------------------
# Generic engine
# ----------------------------------------------------------------------
def fixpoint(
    graph: CallGraph,
    initial: Callable[[FunctionNode], object],
    transfer: Callable[
        [FunctionNode, Callable[[FunctionNode], object]], object
    ],
) -> Dict[Key, object]:
    """Iterate ``transfer`` over every function until summaries settle.

    ``transfer(fn, summary_of)`` recomputes ``fn``'s summary, reading
    callee summaries through ``summary_of``; when the result differs
    from the stored summary, every caller of ``fn`` is re-enqueued.
    Processing order is deterministic (sorted keys, FIFO worklist).
    """
    summaries: Dict[Key, object] = {
        key: initial(fn) for key, fn in graph.functions.items()
    }

    def summary_of(fn: FunctionNode) -> object:
        return summaries[fn.key]

    pending = deque(sorted(graph.functions))
    queued: Set[Key] = set(pending)
    while pending:
        key = pending.popleft()
        queued.discard(key)
        fn = graph.functions[key]
        updated = transfer(fn, summary_of)
        if updated != summaries[key]:
            summaries[key] = updated
            for caller in graph.callers_of(fn):
                if caller.key not in queued:
                    queued.add(caller.key)
                    pending.append(caller.key)
    return summaries


def _header_calls(stmt: ast.stmt) -> List[ast.Call]:
    """Calls in the expressions a statement *directly* owns — its test,
    iterable, targets, value — but not in nested statement bodies (those
    are walked recursively, so try/except filtering stays correct) and
    not in nested defs or lambdas (their effects belong to the nested
    function's own summary)."""
    out: List[ast.Call] = []
    stack: List[ast.AST] = [
        child
        for child in ast.iter_child_nodes(stmt)
        if not isinstance(child, (ast.stmt, ast.ExceptHandler))
    ]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


# ----------------------------------------------------------------------
# Exception escape analysis
# ----------------------------------------------------------------------
class _Hierarchy:
    """Subclass checks across tree classes and real builtins."""

    def __init__(self, graph: CallGraph):
        self._bases: Dict[str, Set[str]] = {
            name: set(info.bases) for name, info in graph.classes.items()
        }
        self._cache: Dict[str, Set[str]] = {}

    def ancestors(self, name: str) -> Set[str]:
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        out: Set[str] = set()
        queue = [name]
        while queue:
            current = queue.pop()
            if current in out:
                continue
            out.add(current)
            tree_bases = self._bases.get(current)
            if tree_bases:
                queue.extend(tree_bases)
            else:
                obj = getattr(builtins, current, None)
                if isinstance(obj, type):
                    out.update(k.__name__ for k in obj.__mro__)
        self._cache[name] = out
        return out

    def covers(self, caught: str, raised: str) -> bool:
        return caught in self.ancestors(raised)


def _raised_name(exc: ast.AST) -> Optional[str]:
    """Class name of ``raise X(...)`` / ``raise X`` — lowercase names
    are variables (re-raise of a caught object), not classes."""
    target = exc.func if isinstance(exc, ast.Call) else exc
    if isinstance(target, ast.Name):
        return target.id if target.id[:1].isupper() else None
    if isinstance(target, ast.Attribute):
        return target.attr if target.attr[:1].isupper() else None
    return None


def _handler_names(handler: ast.ExceptHandler) -> Optional[List[str]]:
    """Names an except clause catches; None means catch-everything."""
    node = handler.type
    if node is None:
        return None
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    names: List[str] = []
    for element in elements:
        if isinstance(element, ast.Name):
            names.append(element.id)
        elif isinstance(element, ast.Attribute):
            names.append(element.attr)
        else:
            return None  # dynamic except type: assume it catches all
    return names


def exception_escapes(graph: CallGraph) -> Dict[Key, Dict[str, Origin]]:
    """``fn.key -> {exception class name -> origin (rel, line)}`` of
    every exception that can escape the function, transitively."""
    hierarchy = _Hierarchy(graph)

    def escapes_of(
        stmts: Iterable[ast.stmt],
        rel: str,
        summary_of: Callable[[FunctionNode], object],
        caught_ctx: Dict[str, Origin],
    ) -> Dict[str, Origin]:
        out: Dict[str, Origin] = {}

        def merge(names: Dict[str, Origin]) -> None:
            for name, origin in names.items():
                out.setdefault(name, origin)

        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Raise):
                if stmt.exc is None:
                    # bare raise: re-raises whatever the nearest handler
                    # caught (the caller threads that set through)
                    merge(caught_ctx)
                else:
                    name = _raised_name(stmt.exc)
                    if name is not None:
                        out.setdefault(name, (rel, stmt.lineno))
                    # calls inside the raise expression can escape too
                    for call in _header_calls(stmt):
                        merge(callee_escapes(call, summary_of))
                continue
            if isinstance(stmt, ast.Try):
                body = escapes_of(stmt.body, rel, summary_of, caught_ctx)
                survived = dict(body)
                for handler in stmt.handlers:
                    caught_names = _handler_names(handler)
                    if caught_names is None:
                        taken = dict(survived)
                        survived = {}
                    else:
                        taken = {
                            name: origin
                            for name, origin in survived.items()
                            if any(
                                hierarchy.covers(c, name)
                                for c in caught_names
                            )
                        }
                        for name in taken:
                            survived.pop(name, None)
                    merge(
                        escapes_of(handler.body, rel, summary_of, taken)
                    )
                merge(survived)
                merge(escapes_of(stmt.orelse, rel, summary_of, caught_ctx))
                merge(
                    escapes_of(stmt.finalbody, rel, summary_of, caught_ctx)
                )
                continue
            # every other statement: recurse into any nested statement
            # suites, then fold in calls from its own expressions
            for _field, value in ast.iter_fields(stmt):
                if (
                    isinstance(value, list)
                    and value
                    and isinstance(value[0], ast.stmt)
                ):
                    merge(escapes_of(value, rel, summary_of, caught_ctx))
            for call in _header_calls(stmt):
                merge(callee_escapes(call, summary_of))
        return out

    def callee_escapes(
        call: ast.Call, summary_of: Callable[[FunctionNode], object]
    ) -> Dict[str, Origin]:
        out: Dict[str, Origin] = {}
        for callee in graph.call_targets(call):
            summary = summary_of(callee)
            assert isinstance(summary, dict)
            for name, origin in summary.items():
                out.setdefault(name, origin)
        return out

    def transfer(
        fn: FunctionNode, summary_of: Callable[[FunctionNode], object]
    ) -> Dict[str, Origin]:
        body = getattr(fn.node, "body", [])
        return escapes_of(body, fn.rel, summary_of, {})

    summaries = fixpoint(graph, lambda fn: {}, transfer)
    return {key: dict(value) for key, value in summaries.items()}  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Wall-clock / entropy taint analysis
# ----------------------------------------------------------------------
def tainted_returns(
    graph: CallGraph, sources: Dict[str, str]
) -> Dict[Key, Origin]:
    """Functions whose *return value* derives from an ambient source.

    ``sources`` maps dotted-suffix -> human label (the determinism
    rules' wall-clock table).  The summary for a tainted function is the
    origin ``(rel, line)`` of the source call the value traces back to.
    Taint flows through local assignments (in statement order, iterated
    twice for simple loops) and through calls to tainted functions.
    """

    def source_call(call: ast.Call) -> bool:
        name = dotted_name(call.func)
        return any(
            name == suffix or name.endswith("." + suffix)
            for suffix in sources
        )

    def transfer(
        fn: FunctionNode, summary_of: Callable[[FunctionNode], object]
    ) -> Optional[Origin]:
        tainted_locals: Dict[str, Origin] = {}

        def expr_taint(expr: ast.AST) -> Optional[Origin]:
            stack: List[ast.AST] = [expr]
            while stack:
                node = stack.pop()
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                    continue
                if isinstance(node, ast.Call):
                    if source_call(node):
                        return (fn.rel, node.lineno)
                    for callee in graph.call_targets(node):
                        origin = summary_of(callee)
                        if origin is not None:
                            return origin  # type: ignore[return-value]
                if isinstance(node, ast.Name) and node.id in tainted_locals:
                    return tainted_locals[node.id]
                stack.extend(ast.iter_child_nodes(node))
            return None

        result: Optional[Origin] = None
        body = getattr(fn.node, "body", [])
        for _ in range(2):  # second pass settles loop-carried locals
            stack: List[ast.AST] = list(body)
            while stack:
                node = stack.pop(0)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                    continue
                if isinstance(node, (ast.Assign, ast.AnnAssign,
                                     ast.AugAssign)):
                    value = node.value
                    if value is not None:
                        origin = expr_taint(value)
                        if origin is not None:
                            targets = (
                                node.targets
                                if isinstance(node, ast.Assign)
                                else [node.target]
                            )
                            for target in targets:
                                for leaf in ast.walk(target):
                                    if isinstance(leaf, ast.Name):
                                        tainted_locals[leaf.id] = origin
                elif isinstance(node, ast.Return) and node.value is not None:
                    origin = expr_taint(node.value)
                    if origin is not None and result is None:
                        result = origin
                stack.extend(ast.iter_child_nodes(node))
        return result

    summaries = fixpoint(graph, lambda fn: None, transfer)
    return {
        key: origin  # type: ignore[misc]
        for key, origin in summaries.items()
        if origin is not None
    }
