"""Cluster assembly: a simulated Sprite installation in one object.

:class:`SpriteCluster` wires the whole stack — LAN, file servers,
workstation hosts with kernels, migration managers, eviction daemons —
the way the Berkeley cluster was wired: one shared namespace, every
host a peer kernel, migration available everywhere.

Typical use::

    cluster = SpriteCluster(workstations=8, seed=42)

    def job(proc):
        yield from proc.compute(5.0)
        return 0

    pcb, _ = cluster.hosts[0].spawn_process(job, name="job")
    cluster.run_until_complete(pcb.task)
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from .config import KB, ClusterParams
from .fs import FileServer, PrefixTable
from .fs.pipes import PipeService
from .kernel import Host, Program, SpriteKernel
from .migration import EvictionDaemon, MigrationManager, VmPolicy
from .net import Lan, NetNode, RpcPort
from .sim import Cpu, RandomStreams, Simulator, Tracer, run_until_complete

__all__ = ["SpriteCluster", "ServerHost"]


class ServerHost:
    """A dedicated file-server machine (no user processes, no kernel)."""

    def __init__(
        self,
        sim: Simulator,
        lan: Lan,
        name: str,
        params: ClusterParams,
        tracer: Tracer,
        cpu_speed: float = 1.0,
    ):
        self.sim = sim
        self.name = name
        self.node = NetNode(sim, name)
        lan.register(self.node)
        self.cpu = Cpu(
            sim, quantum=params.cpu_quantum, speed=cpu_speed, name=f"{name}-cpu"
        )
        self.rpc = RpcPort(sim, lan, self.node, cpu=self.cpu, params=params)
        self.server = FileServer(
            sim, lan, self.node, self.rpc, self.cpu, params=params,
            tracer=tracer, name=name,
        )
        self.pipes = PipeService(sim, self.rpc, self.cpu, params)

    @property
    def address(self) -> int:
        return self.node.address


class SpriteCluster:
    """A complete simulated Sprite cluster."""

    def __init__(
        self,
        workstations: int = 4,
        file_servers: int = 1,
        params: Optional[ClusterParams] = None,
        seed: int = 0,
        trace: bool = False,
        vm_policy: Union[str, VmPolicy, None] = None,
        start_daemons: bool = True,
        host_prefix: str = "ws",
        cpu_speeds: Optional[List[float]] = None,
    ):
        if workstations < 1 or file_servers < 1:
            raise ValueError("need at least one workstation and one file server")
        if cpu_speeds is not None and len(cpu_speeds) != workstations:
            raise ValueError("cpu_speeds must have one entry per workstation")
        self.params = params or ClusterParams(seed=seed)
        self.sim = Simulator()
        self.tracer = Tracer(enabled=trace)
        self.rng = RandomStreams(seed=self.params.seed if params else seed)
        self.lan = Lan(self.sim, params=self.params, tracer=self.tracer)
        self.prefixes = PrefixTable()
        #: address -> kernel, shared by every UserContext for dispatch.
        self.kernels: Dict[int, SpriteKernel] = {}
        #: address -> migration manager.
        self.managers: Dict[int, MigrationManager] = {}
        #: Set by :class:`repro.checkpoint.CheckpointService` when the
        #: run uses checkpoint/restart; the invariant checker counts its
        #: intact images as accounted process state.
        self.checkpoints: Optional[Any] = None

        self.server_hosts: List[ServerHost] = []
        for i in range(file_servers):
            server_host = ServerHost(
                self.sim, self.lan, f"fs{i}", self.params, self.tracer
            )
            self.server_hosts.append(server_host)
        # The first server exports the root; extra servers get /srv<i>.
        self.prefixes.add("/", self.server_hosts[0].address)
        for i, server_host in enumerate(self.server_hosts[1:], start=1):
            self.prefixes.add(f"/srv{i}", server_host.address)

        self.hosts: List[Host] = []
        self.evictors: List[EvictionDaemon] = []
        for i in range(workstations):
            host = Host(
                self.sim,
                self.lan,
                f"{host_prefix}{i}",
                self.prefixes,
                self.kernels,
                params=self.params,
                tracer=self.tracer,
                start_daemons=start_daemons,
                batch_load_ticks=True,
                cpu_speed=cpu_speeds[i] if cpu_speeds else 1.0,
            )
            manager = MigrationManager(host, self.managers, policy=vm_policy)
            evictor = EvictionDaemon(manager, start=start_daemons)
            self.hosts.append(host)
            self.evictors.append(evictor)
        if start_daemons:
            # One bulk event batch starts every per-second load sampler.
            from .kernel.loadavg import LoadAverage

            LoadAverage.start_batched(
                self.sim, [host.loadavg for host in self.hosts]
            )

    # ------------------------------------------------------------------
    @property
    def file_server(self) -> FileServer:
        return self.server_hosts[0].server

    def host_by_address(self, address: int) -> Host:
        for host in self.hosts:
            if host.address == address:
                return host
        raise KeyError(f"no workstation at address {address}")

    def host_by_name(self, name: str) -> Host:
        for host in self.hosts:
            if host.name == name:
                return host
        raise KeyError(f"no workstation named {name}")

    def manager_of(self, host: Host) -> MigrationManager:
        return self.managers[host.address]

    # ------------------------------------------------------------------
    # Namespace seeding
    # ------------------------------------------------------------------
    def add_image(self, path: str, size: int = 256 * KB) -> None:
        """Pre-install a program binary in the shared namespace."""
        self.file_server.add_file(path, size=size)

    def add_file(self, path: str, size: int = 0, payload: Any = None) -> None:
        self.file_server.add_file(path, size=size, payload=payload)

    def standard_images(self) -> None:
        """The binaries the thesis's workloads touch constantly."""
        for name, size in [
            ("/bin/cc", 640 * KB),
            ("/bin/ld", 320 * KB),
            ("/bin/pmake", 384 * KB),
            ("/bin/sim", 512 * KB),
            ("/bin/sh", 128 * KB),
            ("/bin/mig", 64 * KB),
        ]:
            self.add_image(name, size)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    def run_until_complete(self, task_or_gen: Any, name: str = "main") -> Any:
        return run_until_complete(self.sim, task_or_gen, name=name)

    def run_process(
        self, host: Host, program: Program, *args: Any, name: Optional[str] = None
    ) -> Any:
        """Spawn a process on ``host`` and drive the sim until it exits."""
        pcb, _ctx = host.spawn_process(program, *args, name=name)
        return self.run_until_complete(pcb.task)

    # ------------------------------------------------------------------
    # Cluster-wide views
    # ------------------------------------------------------------------
    def idle_hosts(self) -> List[Host]:
        return [host for host in self.hosts if host.is_available()]

    def migration_records(self):
        from .migration import collect_records

        return collect_records(self.managers.values())

    def observability(
        self,
        spans: bool = True,
        trace: bool = False,
        sample_period: Optional[float] = None,
    ):
        """Install and return a :class:`~repro.obs.ClusterObservability`
        for this cluster (spans, metrics hooks, optional sampler).  See
        ``docs/observability.md``."""
        from .obs import ClusterObservability

        return ClusterObservability.install(
            self, spans=spans, trace=trace, sample_period=sample_period
        )

    def faults(
        self,
        plan: Optional[Any] = None,
        service: Optional[Any] = None,
        detect_delay: Optional[float] = None,
    ):
        """Install and return a :class:`~repro.faults.FaultInjector`
        for this cluster (started if a plan was given).  See
        ``docs/faults.md``."""
        from .faults import FaultInjector

        injector = FaultInjector(
            self, plan=plan, service=service, detect_delay=detect_delay
        )
        return injector.start()

    def total_cpu_seconds(self) -> float:
        return sum(host.cpu.total_demand for host in self.hosts)

    # ------------------------------------------------------------------
    # Snapshot / fork
    # ------------------------------------------------------------------
    def snapshot(self, **extras: Any):
        """Capture this (fully built, not yet run) cluster as a
        :class:`~repro.snapshot.Snapshot`; ``snapshot().fork()`` yields
        independent copies.  Companion objects passed as keyword
        arguments (e.g. ``service=...``) are captured in the same
        pickle and come back as ``fork.extras[name]``.  See
        ``docs/snapshots.md``."""
        from .snapshot import Snapshot

        return Snapshot.capture(self, extras=extras or None)
