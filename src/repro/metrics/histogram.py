"""Latency histograms with percentile summaries.

A compact, allocation-light accumulator for the latency samples the
selectors, migrations, and benchmarks collect.  Buckets are geometric
(covering microseconds to hours), so percentiles are approximate within
one bucket width — plenty for shape comparisons.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

__all__ = ["LatencyHistogram"]


class LatencyHistogram:
    """Geometric-bucket histogram over positive durations (seconds)."""

    def __init__(self, min_value: float = 1e-6, factor: float = 1.5):
        if min_value <= 0 or factor <= 1:
            raise ValueError("need min_value > 0 and factor > 1")
        self.min_value = min_value
        self.factor = factor
        self._counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0

    # ------------------------------------------------------------------
    def _bucket(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        return 1 + int(math.log(value / self.min_value) / math.log(self.factor))

    def _bucket_upper(self, index: int) -> float:
        return self.min_value * (self.factor ** index)

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative duration: {value}")
        index = self._bucket(value)
        self._counts[index] = self._counts.get(index, 0) + 1
        self.count += 1
        self.total += value
        self.max_value = max(self.max_value, value)

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (0 < q <= 100)."""
        if not 0 < q <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if self.count == 0:
            return 0.0
        target = math.ceil(self.count * q / 100.0)
        seen = 0
        for index in sorted(self._counts):
            seen += self._counts[index]
            if seen >= target:
                return min(self._bucket_upper(index), self.max_value)
        return self.max_value

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max_value,
        }

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """In-place merge (buckets must match)."""
        if (other.min_value, other.factor) != (self.min_value, self.factor):
            raise ValueError("cannot merge histograms with different buckets")
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self.count += other.count
        self.total += other.total
        self.max_value = max(self.max_value, other.max_value)
        return self

    @classmethod
    def merge_all(
        cls, histograms: Iterable["LatencyHistogram"]
    ) -> "LatencyHistogram":
        """A fresh histogram holding the union of ``histograms``.

        Used for cluster-wide rollups of per-host timers; the inputs
        are left untouched.  An empty iterable yields an empty
        histogram with default buckets.
        """
        merged = None
        for histogram in histograms:
            if merged is None:
                merged = cls(histogram.min_value, histogram.factor)
            merged.merge(histogram)
        return merged if merged is not None else cls()
