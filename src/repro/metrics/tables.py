"""Table and series rendering shared by the benchmark harness.

Every benchmark regenerates a paper artifact as a :class:`Table` (for
tables) or :class:`Series` (for figures) and prints it, so running
``pytest benchmarks/ --benchmark-only`` reproduces the evaluation
section's rows and curves on stdout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

__all__ = ["Table", "Series"]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    # One row must stay one line: fold any embedded line separators
    # (splitlines covers \n, \r, \x1c-\x1e, \x85,  ...).
    text = str(value)
    return " ".join(text.splitlines())


@dataclass
class Table:
    """A paper-style results table."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: Optional[str] = None

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    def render(self) -> str:
        cells = [[_format_cell(c) for c in row] for row in self.rows]
        widths = [
            max(len(str(col)), *(len(row[i]) for row in cells)) if cells else len(str(col))
            for i, col in enumerate(self.columns)
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
        if self.notes:
            lines.append(f"   note: {self.notes}")
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render() + "\n")


@dataclass
class Series:
    """A paper-style figure: one or more named curves over shared x."""

    title: str
    x_label: str
    y_label: str
    x: List[float] = field(default_factory=list)
    curves: dict = field(default_factory=dict)

    def add_point(self, curve: str, x: float, y: float) -> None:
        points = self.curves.setdefault(curve, [])
        points.append((x, y))
        if x not in self.x:
            self.x.append(x)

    def render(self, width: int = 50) -> str:
        lines = [f"== {self.title} ==", f"   {self.y_label} vs {self.x_label}"]
        all_y = [y for pts in self.curves.values() for _x, y in pts]
        if not all_y:
            return "\n".join(lines + ["   (no data)"])
        y_max = max(all_y) or 1.0
        for name, points in self.curves.items():
            lines.append(f"   [{name}]")
            for x, y in sorted(points):
                bar = "#" * max(1, int(width * y / y_max)) if y > 0 else ""
                lines.append(f"   {x:>10.3g}  {y:>12.4g}  {bar}")
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render() + "\n")
