"""Result formatting and measurement helpers shared by benchmarks."""

from .histogram import LatencyHistogram
from .tables import Series, Table

__all__ = ["LatencyHistogram", "Series", "Table"]
