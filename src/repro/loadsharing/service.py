"""Cluster-wide load-sharing installation.

One call wires a :class:`~repro.cluster.SpriteCluster` with a chosen
host-selection architecture, acceptance policies with flood prevention,
and the per-host daemons the architecture needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cluster import SpriteCluster
from ..kernel import Host
from .base import HostSelector, install_accept_hooks
from .migd import AvailabilityNotifier, CentralizedSelector, MigdServer
from .mig import MigClient
from .selectors import (
    LOAD_BOARD_PATH,
    MulticastSelector,
    ProbabilisticSelector,
    SharedFileBoard,
    SharedFileSelector,
)

__all__ = ["LoadSharingService", "ARCHITECTURES"]

ARCHITECTURES = ("centralized", "shared-file", "probabilistic", "multicast")


class LoadSharingService:
    """Everything needed for automatic load sharing on one cluster."""

    def __init__(
        self,
        cluster: SpriteCluster,
        architecture: str = "centralized",
        migd_host_index: int = 0,
        max_foreign: Optional[int] = 1,
        start_daemons: bool = True,
    ):
        if architecture not in ARCHITECTURES:
            raise ValueError(
                f"unknown architecture {architecture!r}; one of {ARCHITECTURES}"
            )
        self.cluster = cluster
        self.architecture = architecture
        self.selectors: Dict[int, HostSelector] = {}
        self.migd: Optional[MigdServer] = None
        self.notifiers: List[AvailabilityNotifier] = []
        self.boards: List[SharedFileBoard] = []
        install_accept_hooks(cluster, max_foreign=max_foreign)

        if architecture == "centralized":
            self.migd = MigdServer(cluster.hosts[migd_host_index])
            self.migd.start()
            for host in cluster.hosts:
                self.notifiers.append(
                    AvailabilityNotifier(host, start=start_daemons)
                )
                self.selectors[host.address] = CentralizedSelector(host)
        elif architecture == "shared-file":
            cluster.add_file(LOAD_BOARD_PATH, payload={})
            for host in cluster.hosts:
                self.boards.append(SharedFileBoard(host, start=start_daemons))
                self.selectors[host.address] = SharedFileSelector(host)
        elif architecture == "probabilistic":
            addresses = [host.address for host in cluster.hosts]
            for host in cluster.hosts:
                selector = ProbabilisticSelector(host, start_daemon=start_daemons)
                selector.peers = [a for a in addresses if a != host.address]
                self.selectors[host.address] = selector
        else:  # multicast
            for host in cluster.hosts:
                self.selectors[host.address] = MulticastSelector(host)

    # ------------------------------------------------------------------
    def selector_for(self, host: Host) -> HostSelector:
        return self.selectors[host.address]

    def mig_client(self, host: Host) -> MigClient:
        return MigClient(self.selector_for(host))

    # ------------------------------------------------------------------
    # Facility-wide metrics (benchmark E7 reads these)
    # ------------------------------------------------------------------
    def total_requests(self) -> int:
        return sum(s.metrics.requests for s in self.selectors.values())

    def total_conflicts(self) -> int:
        return sum(s.metrics.conflicts for s in self.selectors.values())

    def mean_request_latency(self) -> float:
        samples = [
            latency
            for selector in self.selectors.values()
            for latency in selector.metrics.latencies
        ]
        return sum(samples) / len(samples) if samples else 0.0

    def control_messages(self) -> int:
        """Messages the facility itself put on the wire (approximate:
        counted from daemon/server instrumentation per architecture)."""
        if self.architecture == "centralized" and self.migd is not None:
            return self.migd.updates_received + self.migd.requests_served
        if self.architecture == "probabilistic":
            return sum(
                getattr(s, "gossip_messages", 0) for s in self.selectors.values()
            )
        if self.architecture == "multicast":
            return self.total_requests() + sum(
                getattr(s, "queries_answered", 0) for s in self.selectors.values()
            )
        return self.total_requests()
