"""Host-assignment caching (thesis ch. 9 future work).

"With many hosts the host selection facility may also potentially
become a bottleneck, unless host assignments may be cached effectively
to reduce the rate of requests to a central server."  This wrapper
implements that idea: released hosts are parked in a local cache for a
short TTL and handed back to the next request without a server round
trip; expiry (or explicit flush) returns them to the facility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Iterable, List, Sequence

from ..sim import Effect
from .base import HostSelector

__all__ = ["CachingSelector"]


@dataclass
class _CachedHost:
    address: int
    cached_at: float


class CachingSelector(HostSelector):
    """Wraps any selector with a local assignment cache."""

    name = "caching"

    def __init__(self, inner: HostSelector, ttl: float = 10.0):
        super().__init__(inner.host)
        self.inner = inner
        self.ttl = ttl
        self._cache: List[_CachedHost] = []
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    def _expire(self) -> Generator[Effect, None, None]:
        now = self.host.sim.now
        fresh = [c for c in self._cache if now - c.cached_at <= self.ttl]
        expired = [c for c in self._cache if now - c.cached_at > self.ttl]
        self._cache = fresh
        if expired:
            yield from self.inner.release([c.address for c in expired])

    def request(
        self, n: int = 1, exclude: Sequence[int] = ()
    ) -> Generator[Effect, None, List[int]]:
        started = self._timed_request_start()
        yield from self._expire()
        excluded = set(exclude)
        granted: List[int] = []
        keep: List[_CachedHost] = []
        for cached in self._cache:
            if len(granted) < n and cached.address not in excluded:
                granted.append(cached.address)
                self.cache_hits += 1
            else:
                keep.append(cached)
        self._cache = keep
        if len(granted) < n:
            self.cache_misses += 1
            more = yield from self.inner.request(
                n - len(granted), exclude=list(excluded | set(granted))
            )
            granted.extend(more)
        return self._timed_request_end(started, granted)

    def release(self, addresses: Iterable[int]) -> Generator[Effect, None, None]:
        """Park released hosts locally instead of returning them."""
        now = self.host.sim.now
        for address in addresses:
            self._cache.append(_CachedHost(address=address, cached_at=now))
        self.metrics.releases += len(self._cache)
        yield from self._expire()

    def flush(self) -> Generator[Effect, None, None]:
        """Return every cached host to the facility immediately."""
        cached, self._cache = self._cache, []
        if cached:
            yield from self.inner.release([c.address for c in cached])
