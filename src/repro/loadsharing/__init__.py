"""Load-sharing policy: host selection, the mig client, availability.

Chapter 6's four host-selection architectures (central server via
pseudo-device, shared file, MOSIX-style probabilistic gossip, V-style
multicast) behind one interface, plus the ``mig`` client that launches
work onto granted hosts with exec-time migration and local fallback.
"""

from .base import HostSelector, SelectorMetrics, install_accept_hooks
from .caching import CachingSelector
from .mig import MigClient, RemoteJob
from .reexport import ReExporter
from .migd import (
    MIGD_PATH,
    AvailabilityNotifier,
    CentralizedSelector,
    MigdServer,
)
from .selectors import (
    LOAD_BOARD_PATH,
    MulticastSelector,
    ProbabilisticSelector,
    SharedFileBoard,
    SharedFileSelector,
)
from .service import ARCHITECTURES, LoadSharingService

__all__ = [
    "ARCHITECTURES",
    "AvailabilityNotifier",
    "CachingSelector",
    "CentralizedSelector",
    "HostSelector",
    "LOAD_BOARD_PATH",
    "LoadSharingService",
    "MIGD_PATH",
    "MigClient",
    "MigdServer",
    "MulticastSelector",
    "ProbabilisticSelector",
    "ReExporter",
    "RemoteJob",
    "SelectorMetrics",
    "SharedFileBoard",
    "SharedFileSelector",
    "install_accept_hooks",
]
