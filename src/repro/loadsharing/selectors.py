"""The alternative host-selection architectures of chapter 6.

* :class:`SharedFileSelector` — §6.3.1: availability lives in one file
  in the shared FS; hosts update their entries, requesters read the
  file and pick.  Decisions are distributed, so two requesters racing
  on the same snapshot can claim the same host (a *conflict*); claims
  are read-modify-write with no global lock, exactly the weakness that
  pushed Sprite to a central server.
* :class:`ProbabilisticSelector` — §6.3.3, the MOSIX design [BS85]:
  every host keeps a load vector and gossips its own entry to a random
  subset each period, aging what it hears.  No server, no shared state,
  but decisions ride on stale data.
* :class:`MulticastSelector` — §6.3.4, the V design [TL88]: no state at
  all; a requester multicasts "who is idle?" and takes the first
  responders.  One message per request — times every host on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Iterable, List, Optional, Sequence

from ..kernel import Host
from ..net import Packet
from ..sim import Channel, Effect, Sleep, TIMED_OUT, spawn, with_timeout
from .base import HostSelector

__all__ = [
    "SharedFileSelector",
    "SharedFileBoard",
    "ProbabilisticSelector",
    "MulticastSelector",
    "LOAD_BOARD_PATH",
]

LOAD_BOARD_PATH = "/hosts/loadavg"


# ----------------------------------------------------------------------
# Shared file (§6.3.1)
# ----------------------------------------------------------------------
class SharedFileBoard:
    """Per-host daemon posting availability into the shared file."""

    def __init__(self, host: Host, start: bool = True):
        self.host = host
        if start:
            spawn(host.sim, self._loop, name=f"board:{host.name}", daemon=True)

    def _loop(self) -> Generator[Effect, None, None]:
        period = self.host.params.availability_period
        yield Sleep((self.host.address % 10) * period / 10.0)
        while True:
            yield from self.post_once()
            yield Sleep(period)

    def post_once(self) -> Generator[Effect, None, None]:
        entry = {
            "load": self.host.loadavg.effective,
            "available": self.host.is_available(),
            "claimed_by": None,
            "time": self.host.sim.now,
        }
        yield from self.host.fs.payload_write(
            LOAD_BOARD_PATH, {self.host.address: entry}, op="update"
        )


class SharedFileSelector(HostSelector):
    """Requester side: read the board, claim entries, hope for no race."""

    name = "shared-file"

    def request(
        self, n: int = 1, exclude: Sequence[int] = ()
    ) -> Generator[Effect, None, List[int]]:
        started = self._timed_request_start()
        excluded = set(exclude)
        excluded.add(self.host.address)
        board = yield from self.host.fs.payload_read(LOAD_BOARD_PATH)
        if not board:
            return self._timed_request_end(started, [])
        stale_after = 3 * self.host.params.availability_period
        now = self.host.sim.now
        candidates = [
            (address, entry)
            for address, entry in board.items()
            if entry.get("available")
            and entry.get("claimed_by") is None
            and address not in excluded
            and now - entry.get("time", 0) <= stale_after
        ]
        candidates.sort(key=lambda item: (item[1]["load"], item[0]))
        picked = [address for address, _entry in candidates[:n]]
        # Claim them: a separate write — the classic read-modify-write
        # window in which another requester can pick the same hosts.
        claims = {}
        for address, entry in candidates[:n]:
            if entry.get("claimed_by") is not None:
                self.metrics.conflicts += 1
                continue
            updated = dict(entry)
            updated["claimed_by"] = self.host.address
            claims[address] = updated
        if claims:
            yield from self.host.fs.payload_write(
                LOAD_BOARD_PATH, claims, op="update"
            )
        return self._timed_request_end(started, picked)

    def release(self, addresses: Iterable[int]) -> Generator[Effect, None, None]:
        addresses = list(addresses)
        if not addresses:
            return
        self.metrics.releases += len(addresses)
        board = yield from self.host.fs.payload_read(LOAD_BOARD_PATH)
        if not board:
            return
        updates = {}
        for address in addresses:
            entry = board.get(address)
            if entry and entry.get("claimed_by") == self.host.address:
                updated = dict(entry)
                updated["claimed_by"] = None
                updates[address] = updated
        if updates:
            yield from self.host.fs.payload_write(
                LOAD_BOARD_PATH, updates, op="update"
            )


# ----------------------------------------------------------------------
# Probabilistic-distributed (§6.3.3, MOSIX)
# ----------------------------------------------------------------------
@dataclass
class _VectorEntry:
    load: float
    available: bool
    heard_at: float


class ProbabilisticSelector(HostSelector):
    """MOSIX-style gossip: each period send my entry to K random hosts.

    The selector side picks the best host it currently believes idle,
    discounting entries by age ([BS85]'s aging).  Conflicts show up as
    refusals at migration time; callers should retry with ``exclude``.
    """

    name = "probabilistic"
    GOSSIP_SERVICE = "sel.gossip"

    def __init__(self, host: Host, fanout: int = 3, start_daemon: bool = True):
        super().__init__(host)
        self.fanout = fanout
        self.vector: Dict[int, _VectorEntry] = {}
        self.peers: List[int] = []          # set by install()
        self.gossip_messages = 0
        host.rpc.register(self.GOSSIP_SERVICE, self._rpc_gossip)
        if start_daemon:
            spawn(
                host.sim, self._gossip_loop, name=f"gossip:{host.name}", daemon=True
            )

    def _rpc_gossip(self, args) -> Generator[Effect, None, None]:
        yield from self.host.cpu.consume(self.host.params.kernel_call_cpu)
        for address, (load, available, when) in args.items():
            known = self.vector.get(address)
            if known is None or when > known.heard_at:
                self.vector[address] = _VectorEntry(load, available, when)
        return None

    def _gossip_loop(self) -> Generator[Effect, None, None]:
        period = self.host.params.load_sample_period
        rng = None
        yield Sleep((self.host.address % 10) * period / 10.0)
        while True:
            yield Sleep(period)
            if not self.peers:
                continue
            if rng is None:
                import numpy as np

                rng = np.random.default_rng(
                    self.host.params.seed ^ (self.host.address << 8)
                )
            self.vector[self.host.address] = _VectorEntry(
                self.host.loadavg.effective,
                self.host.is_available(),
                self.host.sim.now,
            )
            targets = rng.choice(
                self.peers, size=min(self.fanout, len(self.peers)), replace=False
            )
            payload = {
                address: (entry.load, entry.available, entry.heard_at)
                for address, entry in self.vector.items()
            }
            for target in sorted(int(t) for t in targets):
                self.gossip_messages += 1
                try:
                    yield from self.host.rpc.call(
                        target, self.GOSSIP_SERVICE, payload, timeout=2.0
                    )
                except Exception:  # noqa: BLE001 - peers may be down
                    continue

    def _aged_load(self, entry: _VectorEntry) -> float:
        """Old data counts for less: inflate load with age."""
        age = self.host.sim.now - entry.heard_at
        return entry.load + age / self.host.params.load_decay

    def request(
        self, n: int = 1, exclude: Sequence[int] = ()
    ) -> Generator[Effect, None, List[int]]:
        started = self._timed_request_start()
        yield from self.host.cpu.consume(self.host.params.kernel_call_cpu)
        excluded = set(exclude)
        excluded.add(self.host.address)
        stale_after = 10 * self.host.params.load_sample_period
        now = self.host.sim.now
        candidates = [
            (self._aged_load(entry), address)
            for address, entry in self.vector.items()
            if entry.available
            and address not in excluded
            and now - entry.heard_at <= stale_after
        ]
        candidates.sort()
        picked = [address for _load, address in candidates[:n]]
        for address in picked:
            # Local flood prevention: assume the host just got busier.
            entry = self.vector[address]
            entry.load += 1.0
        return self._timed_request_end(started, picked)

    def release(self, addresses: Iterable[int]) -> Generator[Effect, None, None]:
        self.metrics.releases += len(list(addresses))
        yield from self.host.cpu.consume(self.host.params.kernel_call_cpu)


# ----------------------------------------------------------------------
# Multicast (§6.3.4, V)
# ----------------------------------------------------------------------
class _QueryFallback:
    """Picklable RPC-fallback chain link for :class:`MulticastSelector`.

    A closure here would make the host unsnapshotable; this tiny object
    carries the same two references (the selector and whatever fallback
    was installed before it) explicitly.
    """

    __slots__ = ("selector", "previous")

    def __init__(self, selector: "MulticastSelector", previous) -> None:
        self.selector = selector
        self.previous = previous

    def __call__(self, packet: Packet) -> None:
        selector = self.selector
        if packet.kind == selector.QUERY_KIND:
            host = selector.host
            spawn(
                host.sim,
                selector._answer_query(packet),
                name=f"sel-answer:{host.name}",
                daemon=True,
            )
        elif self.previous is not None:
            self.previous(packet)


class MulticastSelector(HostSelector):
    """Stateless: broadcast the request, take the first responders."""

    name = "multicast"
    QUERY_KIND = "sel.query"
    OFFER_SERVICE = "sel.offer"

    def __init__(self, host: Host, response_timeout: float = 0.05):
        super().__init__(host)
        self.response_timeout = response_timeout
        self._offers: Optional[Channel] = None
        self.queries_answered = 0
        host.rpc.register(self.OFFER_SERVICE, self._rpc_offer)
        host.rpc.fallback = _QueryFallback(self, host.rpc.fallback)

    # -- responder side ------------------------------------------------
    def _answer_query(self, packet: Packet) -> Generator[Effect, None, None]:
        host = self.host
        yield from host.cpu.consume(host.params.kernel_call_cpu)
        if not host.is_available():
            return
        self.queries_answered += 1
        try:
            yield from host.rpc.call(
                packet.src,
                self.OFFER_SERVICE,
                {"host": host.address, "load": host.loadavg.effective,
                 "query": packet.payload},
                timeout=2.0,
            )
        except Exception:  # noqa: BLE001 - requester may be gone
            return

    def _rpc_offer(self, args) -> Generator[Effect, None, None]:
        yield from self.host.cpu.consume(self.host.params.kernel_call_cpu)
        if self._offers is not None:
            self._offers.try_put(args)
        return None

    # -- requester side ----------------------------------------------------
    def request(
        self, n: int = 1, exclude: Sequence[int] = ()
    ) -> Generator[Effect, None, List[int]]:
        started = self._timed_request_start()
        excluded = set(exclude)
        excluded.add(self.host.address)
        self._offers = Channel(self.host.sim, name=f"offers:{self.host.name}")
        query_id = f"{self.host.address}:{self.host.sim.now:.6f}"
        yield from self.host.lan.broadcast(
            Packet(
                src=self.host.address,
                dst=0,
                kind=self.QUERY_KIND,
                payload=query_id,
                size=64,
            )
        )
        picked: List[int] = []
        deadline = self.host.sim.now + self.response_timeout
        while len(picked) < n:
            remaining = deadline - self.host.sim.now
            if remaining <= 0:
                break
            offer = yield from with_timeout(self._offers.get(), remaining)
            if offer is TIMED_OUT:
                break
            if offer["query"] != query_id:
                continue  # late answer to an earlier query
            if offer["host"] in excluded:
                continue
            picked.append(offer["host"])
        self._offers = None
        return self._timed_request_end(started, picked)

    def release(self, addresses: Iterable[int]) -> Generator[Effect, None, None]:
        # Stateless design: nothing to release.
        self.metrics.releases += len(list(addresses))
        yield from self.host.cpu.consume(self.host.params.kernel_call_cpu)
