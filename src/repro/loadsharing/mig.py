"""The ``mig`` client: running programs on idle hosts (ch. 3, 7).

:class:`MigClient` is the library equivalent of Sprite's ``mig``
command and of the agent inside ``pmake``: it asks the host-selection
facility for idle machines, launches children with exec-time migration
onto them, falls back to local execution when the cluster is busy or a
target refuses, and releases hosts when the work completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Sequence

from ..config import KB
from ..kernel import ExitStatus, Program, UserContext
from ..migration import MigrationRefused
from ..sim import Effect
from .base import HostSelector

__all__ = ["MigClient", "RemoteJob"]


@dataclass
class RemoteJob:
    """One child launched through the mig client."""

    pid: int
    target: Optional[int]          # None = ran locally
    name: str
    launched_at: float
    finished_at: Optional[float] = None
    status: Optional[ExitStatus] = None
    fell_back_local: bool = False

    @property
    def turnaround(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.launched_at


def _remote_child(
    proc: UserContext,
    program: Program,
    args: Sequence[Any],
    target: Optional[int],
    name: str,
    image_path: Optional[str],
    image_size: int,
    arg_bytes: int,
    fallback_flag: List[bool],
) -> Generator[Effect, None, Any]:
    """Child body: exec (remotely when a target was granted)."""
    if target is not None:
        try:
            yield from proc.exec(
                program,
                *args,
                name=name,
                image_path=image_path,
                image_size=image_size,
                arg_bytes=arg_bytes,
                host=target,
            )
        except MigrationRefused:
            # Target got busy between selection and migration (stale
            # information): run at home instead, as mig does.
            fallback_flag.append(True)
    yield from proc.exec(
        program, *args, name=name, image_path=image_path, image_size=image_size
    )


class MigClient:
    """Launches work onto idle hosts via a selector."""

    def __init__(self, selector: HostSelector):
        self.selector = selector
        self.host = selector.host
        self.jobs: List[RemoteJob] = []
        #: pid -> granted host, so completions can recycle hosts.
        self._host_of_pid: Dict[int, Optional[int]] = {}
        self.local_fallbacks = 0

    # ------------------------------------------------------------------
    def acquire_hosts(
        self, n: int, exclude: Sequence[int] = ()
    ) -> Generator[Effect, None, List[int]]:
        """Request up to ``n`` idle hosts from the selection facility."""
        return (yield from self.selector.request(n, exclude=exclude))

    def release_hosts(self, hosts: Sequence[int]) -> Generator[Effect, None, None]:
        yield from self.selector.release(hosts)

    # ------------------------------------------------------------------
    def launch(
        self,
        proc: UserContext,
        program: Program,
        *args: Any,
        target: Optional[int] = None,
        name: Optional[str] = None,
        image_path: Optional[str] = None,
        image_size: int = 256 * KB,
        arg_bytes: int = 2 * KB,
    ) -> Generator[Effect, None, RemoteJob]:
        """Fork+exec ``program`` on ``target`` (or locally when None).

        Must be called from the parent process's own context (``proc``).
        Returns the :class:`RemoteJob`; reap it with ``proc.wait()``.
        """
        job_name = name or getattr(program, "__name__", "job")
        fallback_flag: List[bool] = []
        pid = yield from proc.fork(
            _remote_child,
            program,
            args,
            target,
            job_name,
            image_path,
            image_size,
            arg_bytes,
            fallback_flag,
            name=job_name,
        )
        job = RemoteJob(
            pid=pid,
            target=target,
            name=job_name,
            launched_at=self.host.sim.now,
        )
        job._fallback_flag = fallback_flag  # type: ignore[attr-defined]
        self.jobs.append(job)
        self._host_of_pid[pid] = target
        return job

    def reap(
        self, proc: UserContext
    ) -> Generator[Effect, None, ExitStatus]:
        """Wait for any child; returns its status and frees its host slot."""
        status = yield from proc.wait()
        target = self._host_of_pid.pop(status.pid, None)
        for job in self.jobs:
            if job.pid == status.pid:
                job.status = status
                job.finished_at = self.host.sim.now
                job.fell_back_local = bool(
                    getattr(job, "_fallback_flag", [])
                )
                if job.fell_back_local:
                    self.local_fallbacks += 1
                break
        status.freed_host = target  # type: ignore[attr-defined]
        return status

    # ------------------------------------------------------------------
    def run_batch(
        self,
        proc: UserContext,
        programs: Sequence,
        max_remote: Optional[int] = None,
        image_path: Optional[str] = None,
        image_size: int = 256 * KB,
        keep_one_local: bool = True,
    ) -> Generator[Effect, None, List[RemoteJob]]:
        """Run a list of ``(program, args, name)`` tuples, fanning out
        onto as many idle hosts as the facility grants.

        The pattern pmake uses: grab hosts, keep every granted host and
        (optionally) the local CPU busy, recycle hosts as jobs finish,
        release everything at the end.
        """
        pending = list(programs)
        want = len(pending) if max_remote is None else min(max_remote, len(pending))
        granted = yield from self.acquire_hosts(want)
        free_hosts: List[Optional[int]] = list(granted)
        if keep_one_local:
            free_hosts.append(None)   # the local slot
        running = 0
        finished: List[RemoteJob] = []
        launched_jobs: List[RemoteJob] = []
        while pending or running:
            while pending and free_hosts:
                slot = free_hosts.pop(0)
                program, args, name = pending.pop(0)
                job = yield from self.launch(
                    proc, program, *args,
                    target=slot, name=name,
                    image_path=image_path, image_size=image_size,
                )
                launched_jobs.append(job)
                running += 1
            if running:
                status = yield from self.reap(proc)
                running -= 1
                freed = getattr(status, "freed_host", None)
                free_hosts.append(freed)
                for job in launched_jobs:
                    if job.pid == status.pid:
                        finished.append(job)
                        break
        yield from self.release_hosts([h for h in granted])
        return finished
