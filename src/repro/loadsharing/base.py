"""Host-selection interface shared by the four architectures (ch. 6).

A *selector client* lives on one host and answers "give me N idle
hosts" / "I'm done with this host".  The thesis compares four designs —
shared file, central server, probabilistic-distributed, multicast —
against performance, scalability, fault tolerance, and the quality of
their decisions; benchmark E7 reproduces that comparison with these
implementations.

Every implementation records the same metrics so the comparison is
apples-to-apples: messages on the wire per request, request latency,
and *conflicts* (a selected host that refused or was already taken —
the shared-state-staleness failure mode the thesis discusses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Iterable, List, Optional, Sequence

from ..kernel import Host
from ..obs.spans import SELECT_REQUEST, SpanTracer
from ..sim import Effect

__all__ = ["AcceptPolicy", "SelectorMetrics", "HostSelector", "install_accept_hooks"]


@dataclass
class SelectorMetrics:
    requests: int = 0
    granted: int = 0
    denied: int = 0
    releases: int = 0
    conflicts: int = 0
    #: Per-request wall-clock latency samples (seconds).
    latencies: List[float] = field(default_factory=list)

    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0


class HostSelector:
    """One host's view of the host-selection facility."""

    name = "abstract"

    def __init__(self, host: Host):
        self.host = host
        self.metrics = SelectorMetrics()
        self.spans = SpanTracer.for_tracer(host.tracer)

    def request(
        self, n: int = 1, exclude: Sequence[int] = ()
    ) -> Generator[Effect, None, List[int]]:
        """Ask for up to ``n`` idle hosts; returns their addresses
        (possibly fewer, possibly none)."""
        raise NotImplementedError

    def release(self, addresses: Iterable[int]) -> Generator[Effect, None, None]:
        """Give hosts back when the remote work is done."""
        raise NotImplementedError

    # Convenience used by every implementation.
    def _timed_request_start(self) -> float:
        self.metrics.requests += 1
        return self.host.sim.now

    def _timed_request_end(self, started: float, granted: List[int]) -> List[int]:
        self.metrics.latencies.append(self.host.sim.now - started)
        if granted:
            self.metrics.granted += len(granted)
        else:
            self.metrics.denied += 1
        spans = self.spans
        if spans.enabled:
            spans.record(
                SELECT_REQUEST,
                f"select:{self.host.name}",
                started,
                self.host.sim.now,
                selector=self.name,
                granted=len(granted),
            )
        return granted


def install_accept_hooks(cluster, max_foreign: Optional[int] = 1) -> None:
    """Give every workstation the thesis's acceptance policy.

    A host accepts foreign work while its owner is away and it has room
    for another guest; acceptance bumps its load bias so a burst of
    selections cannot flood it before the load average catches up
    ([BSW89]-style flood prevention).  The *load* criterion gates
    selection (is the host offered at all?), not acceptance — a client
    that was granted a host keeps using it for successive jobs, like
    Amoeba's reserved processor pool, until the owner returns.
    ``max_foreign`` caps concurrent guests (None = unlimited).
    """
    for host in cluster.hosts:
        manager = cluster.managers[host.address]
        manager.accept_hook = AcceptPolicy(host, manager, max_foreign)


class AcceptPolicy:
    """The thesis's acceptance criterion as a picklable callable (a
    closure here would make the cluster unsnapshotable)."""

    __slots__ = ("host", "manager", "max_foreign")

    def __init__(self, host, manager, max_foreign: Optional[int]):
        self.host = host
        self.manager = manager
        self.max_foreign = max_foreign

    def __call__(self, args) -> bool:
        host, manager = self.host, self.manager
        if host.input_idle_seconds() < host.params.idle_input_threshold:
            return False   # the owner is (or just was) at the console
        if self.max_foreign is not None:
            # Count guests already here AND accepted-but-in-flight:
            # this is the flood-prevention window — concurrent
            # requesters racing on the same stale snapshot must not
            # all land here ([BSW89]).
            committed = (
                len(host.kernel.foreign_pcbs()) + manager.pending_arrivals
            )
            if committed >= self.max_foreign:
                return False
        manager.note_incoming()
        host.loadavg.anticipate_arrivals(1)
        return True
