"""Re-exporting evicted processes (thesis ch. 8).

Eviction sends foreign processes *home*; home may be the busiest place
they could be.  The thesis notes that the load-sharing layer (pmake, or
a daemon acting for it) can immediately ask for a fresh idle host and
push the work back out.  :class:`ReExporter` wires that behaviour into
every eviction daemon on a cluster: when guests land at home, a task on
the home host requests replacement hosts and migrates them out again.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from ..cluster import SpriteCluster
from ..migration import MigrationRecord, MigrationRefused
from ..sim import Effect, Sleep, spawn

__all__ = ["ReExporter"]


class ReExporter:
    """Pushes evicted processes back onto idle hosts."""

    def __init__(self, cluster: SpriteCluster, service, delay: float = 0.5):
        self.cluster = cluster
        self.service = service
        #: Small pause before re-exporting, letting the eviction settle.
        self.delay = delay
        self.reexported = 0
        self.failed = 0
        for evictor in cluster.evictors:
            evictor.on_evicted = self._on_evicted

    # ------------------------------------------------------------------
    def _on_evicted(self, records: List[MigrationRecord]) -> None:
        by_home: Dict[int, List[MigrationRecord]] = {}
        for record in records:
            by_home.setdefault(record.target, []).append(record)
        # sorted(): spawn order must not depend on dict insertion order,
        # which here follows eviction completion order.
        for home_address, home_records in sorted(by_home.items()):
            home = self.cluster.host_by_address(home_address)
            spawn(
                self.cluster.sim,
                self._reexport(home, home_records),
                name=f"reexport:{home.name}",
                daemon=True,
            )

    def _reexport(
        self, home, records: List[MigrationRecord]
    ) -> Generator[Effect, None, None]:
        yield Sleep(self.delay)
        selector = self.service.selector_for(home)
        manager = self.cluster.managers[home.address]
        evicted_from = {record.source for record in records}
        for record in records:
            pcb = home.kernel.procs.get(record.pid)
            if pcb is None or not pcb.alive or pcb.current != home.address:
                continue  # exited or moved meanwhile
            granted = yield from selector.request(1, exclude=sorted(evicted_from))
            if not granted:
                continue  # cluster busy: the process stays home
            target = granted[0]
            try:
                yield from manager.migrate(pcb, target, reason="re-export")
                self.reexported += 1
            except MigrationRefused:
                self.failed += 1
                yield from selector.release(granted)
