"""The centralized host-selection server (the thesis's ``migd``).

The conclusion of chapter 6: a central, user-level server reached
through a pseudo-device wins on almost every axis.  Each workstation
runs a small notifier that reports availability transitions; clients
open ``/hosts/migd`` and send request/release messages.  The server
keeps global state, so it can hand out each idle host exactly once,
allocate fairly when demand exceeds supply, and tell a dispossessed
client when its host is reclaimed.

``migd`` runs as an ordinary user process on its home host — exactly as
in Sprite, where crashing migd never takes the kernel with it; restart
is cheap because hosts re-announce within one availability period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Iterable, List, Optional, Sequence, Set

from ..fs import OpenMode, PdevMaster
from ..kernel import Host
from ..sim import Effect, Sleep, spawn
from .base import HostSelector

__all__ = ["MigdServer", "CentralizedSelector", "AvailabilityNotifier", "MIGD_PATH"]

MIGD_PATH = "/hosts/migd"


@dataclass
class _HostInfo:
    address: int
    load: float = 0.0
    input_idle: float = 0.0
    available: bool = False
    assigned_to: Optional[int] = None
    idle_since: float = 0.0
    last_update: float = 0.0
    #: Relative hardware speed (ch. 6: configuration is a selection
    #: criterion when several hosts are available).
    speed: float = 1.0


class MigdServer:
    """State and policy of the central server; runs as a user process."""

    def __init__(self, home: Host):
        self.home = home
        self.master = PdevMaster(home.sim, "migd")
        home.pdevs.attach(self.master)
        self.hosts: Dict[int, _HostInfo] = {}
        #: Outstanding assignments per requesting host (fairness).
        self.assignments: Dict[int, Set[int]] = {}
        self.requests_served = 0
        self.updates_received = 0
        #: Host-selection requests load-shed because the server's offer
        #: queue was over ``params.migd_max_pending`` (when > 0).
        self.refused_busy = 0
        self.pcb = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Register the pdev name and launch the server process."""
        self.pcb, _ctx = self.home.spawn_process(
            self._register_and_serve, name="migd"
        )

    def _register_and_serve(self, proc):
        """The server program (a bound method, so an armed-but-unstarted
        migd survives snapshot/fork)."""
        # Register /hosts/migd -> this host in the shared namespace.
        yield from proc.kernel.rpc.call(
            proc.kernel.fs.prefixes.route(MIGD_PATH),
            "fs.register_pdev",
            (MIGD_PATH, self.home.address, self.master.pdev_id),
        )
        while True:
            request = yield self.master.next_request()
            reply = self._handle(request.message, request.client_host)
            request.respond(reply, size=128)

    def stop(self) -> None:
        """Crash the server (fault injection): kill the process and
        detach the pseudo-device so clients fail fast."""
        if self.pcb is not None and self.pcb.task is not None:
            self.pcb.task.kill()
        self.home.pdevs.detach(self.master)

    def restart(self) -> None:
        """Restart after a crash: a fresh pdev, re-registered under the
        same name.  State rebuilds as hosts re-announce within one
        availability period — the thesis's argument that restarting a
        central server beats replicating it."""
        self.master = PdevMaster(self.home.sim, "migd")
        self.home.pdevs.attach(self.master)
        self.hosts.clear()
        self.assignments.clear()
        self.start()

    # ------------------------------------------------------------------
    # Message handling (pure state machine; costs are charged by the
    # pdev/RPC path that delivered the message).
    # ------------------------------------------------------------------
    def _handle(self, message: Dict, client_host: int) -> Dict:
        kind = message.get("op")
        if kind == "update":
            return self._on_update(message)
        if kind == "request":
            return self._on_request(message)
        if kind == "release":
            return self._on_release(message)
        return {"error": f"unknown op {kind!r}"}

    def _on_update(self, message: Dict) -> Dict:
        self.updates_received += 1
        address = message["host"]
        info = self.hosts.setdefault(address, _HostInfo(address=address))
        was_available = info.available
        info.load = message["load"]
        info.input_idle = message["input_idle"]
        info.available = message["available"]
        info.last_update = message["time"]
        info.speed = message.get("speed", 1.0)
        if info.available and not was_available:
            info.idle_since = message["time"]
        if not info.available and info.assigned_to is not None:
            # Reclaimed under a client: the client learns via eviction;
            # drop the assignment so the host is not handed out again.
            self.assignments.get(info.assigned_to, set()).discard(address)
            info.assigned_to = None
        return {"ok": True}

    def _on_request(self, message: Dict) -> Dict:
        # Overload backpressure: when the inbound queue is deeper than
        # the configured bound, shed *selection* work (the cheapest
        # request to redo) with an explicit busy verdict instead of
        # serving stale grants late.  Updates and releases are never
        # shed — dropping them would rot the global state the grants
        # are computed from.
        cap = self.home.params.migd_max_pending
        if cap > 0 and len(self.master.requests) > cap:
            self.refused_busy += 1
            return {"hosts": [], "busy": True}
        self.requests_served += 1
        client = message["client"]
        wanted = message.get("n", 1)
        exclude = set(message.get("exclude", ()))
        exclude.add(client)
        candidates = [
            info
            for info in self.hosts.values()
            if info.available and info.assigned_to is None
            and info.address not in exclude
        ]
        # Fastest hardware first (ch. 6's configuration criterion), then
        # longest-idle: hosts idle a long time tend to stay idle [ML87].
        candidates.sort(
            key=lambda info: (-info.speed, info.idle_since, info.address)
        )
        mine = self.assignments.setdefault(client, set())
        # Fairness: when several clients hold assignments, cap each at
        # an equal share of the idle pool (but always allow one).
        other_clients = sum(
            1 for c, held in self.assignments.items() if held and c != client
        )
        if other_clients:
            pool = len(candidates) + sum(len(h) for h in self.assignments.values())
            fair_share = max(1, pool // (other_clients + 1))
            allowance = min(wanted, max(0, fair_share - len(mine)))
        else:
            allowance = wanted
        granted: List[int] = []
        for info in candidates[:allowance]:
            info.assigned_to = client
            mine.add(info.address)
            granted.append(info.address)
        return {"hosts": granted}

    def _on_release(self, message: Dict) -> Dict:
        client = message["client"]
        released = 0
        for address in message.get("hosts", ()):
            info = self.hosts.get(address)
            if info is not None and info.assigned_to == client:
                info.assigned_to = None
                released += 1
            self.assignments.get(client, set()).discard(address)
        return {"released": released}

    def host_lost(self, address: int) -> None:
        """Crash detection: stop handing out a host that went silent.

        In real Sprite the server would notice missed updates; the
        fault layer drives this explicitly after the detection delay.
        """
        info = self.hosts.get(address)
        if info is None:
            return
        info.available = False
        if info.assigned_to is not None:
            self.assignments.get(info.assigned_to, set()).discard(address)
            info.assigned_to = None

    # ------------------------------------------------------------------
    def idle_count(self) -> int:
        return sum(1 for info in self.hosts.values() if info.available)


class AvailabilityNotifier:
    """Per-host daemon reporting availability to migd through the pdev."""

    def __init__(self, host: Host, start: bool = True):
        self.host = host
        self._stream = None
        self._last_sent: Optional[bool] = None
        if start:
            spawn(
                host.sim,
                self._loop,
                name=f"availd:{host.name}",
                daemon=True,
            )

    def _loop(self) -> Generator[Effect, None, None]:
        period = self.host.params.availability_period
        # Stagger start-up so a cluster's notifiers don't phase-lock.
        yield Sleep((self.host.address % 10) * period / 10.0)
        while True:
            if not self.host.node.up:
                # Crashed host: say nothing; the stream died with the
                # kernel, so re-open it on the first post-reboot tick
                # (re-announcing within one availability period).
                self._stream = None
                yield Sleep(period)
                continue
            try:
                yield from self._send_update()
            except Exception:  # noqa: BLE001 - migd may not be up yet
                self._stream = None
            yield Sleep(period)

    def _send_update(self) -> Generator[Effect, None, None]:
        if self._stream is None:
            self._stream = yield from self.host.fs.open(MIGD_PATH, OpenMode.READ_WRITE)
        available = self.host.is_available()
        yield from self.host.fs.pdev_request(
            self._stream,
            {
                "op": "update",
                "host": self.host.address,
                "load": self.host.loadavg.effective,
                "input_idle": self.host.input_idle_seconds(),
                "available": available,
                "time": self.host.sim.now,
                "speed": self.host.cpu.speed,
            },
            timeout=2.0,
        )
        self._last_sent = available


class CentralizedSelector(HostSelector):
    """Client side of migd: one pdev round trip per request/release.

    Fault model (thesis §6): when migd or its host is down, a request
    degrades to "no hosts" after a short timeout — the caller falls
    back to local execution — and the cached pdev stream is dropped so
    the next request re-resolves a restarted server.
    """

    name = "centralized"
    REQUEST_TIMEOUT = 2.0

    def __init__(self, host: Host):
        super().__init__(host)
        self._stream = None
        self.failures = 0
        #: Requests the server answered with an explicit busy verdict
        #: (distinct from ``failures``: the server is up, just loaded).
        self.backpressured = 0

    def _ensure_stream(self) -> Generator[Effect, None, None]:
        if self._stream is None:
            self._stream = yield from self.host.fs.open(MIGD_PATH, OpenMode.READ_WRITE)

    def _exchange(self, message: Dict) -> Generator[Effect, None, Optional[Dict]]:
        try:
            yield from self._ensure_stream()
            reply = yield from self.host.fs.pdev_request(
                self._stream, message, timeout=self.REQUEST_TIMEOUT
            )
            return reply
        except Exception:  # noqa: BLE001 - degrade, don't crash the caller
            self.failures += 1
            self._stream = None
            return None

    def request(
        self, n: int = 1, exclude: Sequence[int] = ()
    ) -> Generator[Effect, None, List[int]]:
        started = self._timed_request_start()
        reply = yield from self._exchange(
            {
                "op": "request",
                "client": self.host.address,
                "n": n,
                "exclude": list(exclude),
            }
        )
        if reply and reply.get("busy"):
            self.backpressured += 1
        granted = reply.get("hosts", []) if reply else []
        return self._timed_request_end(started, granted)

    def release(self, addresses: Iterable[int]) -> Generator[Effect, None, None]:
        addresses = list(addresses)
        if not addresses:
            return
        self.metrics.releases += len(addresses)
        yield from self._exchange(
            {"op": "release", "client": self.host.address, "hosts": addresses}
        )
