"""Minimal UNIX-style signal numbers used by the model kernel."""

from __future__ import annotations

SIGHUP = 1
SIGINT = 2
SIGKILL = 9
SIGUSR1 = 10
SIGUSR2 = 12
SIGTERM = 15
SIGCHLD = 20
#: Sprite-internal: used by the kernel to request a migration freeze.
SIGMIGRATE = 30

#: Signals a process cannot catch; delivery always terminates it.
UNCATCHABLE = frozenset({SIGKILL})

NAMES = {
    SIGHUP: "SIGHUP",
    SIGINT: "SIGINT",
    SIGKILL: "SIGKILL",
    SIGUSR1: "SIGUSR1",
    SIGUSR2: "SIGUSR2",
    SIGTERM: "SIGTERM",
    SIGCHLD: "SIGCHLD",
    SIGMIGRATE: "SIGMIGRATE",
}


def name_of(sig: int) -> str:
    return NAMES.get(sig, f"SIG{sig}")
