"""Kernel-call classification for transparent migration (Appendix A).

Sprite achieves transparency by classifying every kernel call by *where
it must execute* for a remote process:

* ``LOCAL`` — location-independent: handled entirely by the current
  kernel (file I/O is in this class because the network file system is
  already location-transparent).
* ``HOME`` — location-dependent on the home machine: forwarded to the
  home kernel so results are identical to never having migrated
  (``gettimeofday`` keeps clocks consistent, ``gethostname`` names the
  home, process-family calls see the home's process table).
* ``CREATES_STATE`` — handled locally but with home participation to
  keep the shadow PCB consistent (fork/exec/exit).

The table is data, not code, so the forward-everything ablation (A2)
can override it wholesale, reproducing the design discussion of §4.3.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["CallClass", "CALL_TABLE", "call_class", "forward_all_table"]


class CallClass:
    LOCAL = "local"
    HOME = "home"
    CREATES_STATE = "creates-state"


#: Where each kernel call executes for a *remote* process.  For a
#: process at home every call is trivially local.
CALL_TABLE: Dict[str, str] = {
    # -- identity and time ------------------------------------------------
    "getpid": CallClass.LOCAL,        # pids are unique cluster-wide
    "getppid": CallClass.LOCAL,
    "gethostname": CallClass.HOME,    # transparency: report the home host
    "gettimeofday": CallClass.HOME,   # keep time consistent with home
    "getrusage": CallClass.HOME,      # usage accumulates at home
    "getpgrp": CallClass.HOME,
    "setpgrp": CallClass.HOME,
    # -- files: the shared FS is location-transparent ---------------------
    "open": CallClass.LOCAL,
    "close": CallClass.LOCAL,
    "read": CallClass.LOCAL,
    "write": CallClass.LOCAL,
    "lseek": CallClass.LOCAL,
    "stat": CallClass.LOCAL,
    "unlink": CallClass.LOCAL,
    "chdir": CallClass.LOCAL,
    "ioctl": CallClass.LOCAL,
    "pipe": CallClass.LOCAL,          # buffer lives at the I/O server
    # -- process family ----------------------------------------------------
    "fork": CallClass.CREATES_STATE,  # pid allocated by the home kernel
    "exec": CallClass.CREATES_STATE,
    "exit": CallClass.CREATES_STATE,  # home must learn of the death
    "wait": CallClass.HOME,           # children are tracked at home
    "kill": CallClass.HOME,           # routed via the target's home
    # -- scheduling ---------------------------------------------------------
    "sleep": CallClass.LOCAL,
    "migrate": CallClass.HOME,        # Appendix A: forwarded home
    "sigvec": CallClass.LOCAL,        # signal dispositions move with PCB
}


def call_class(name: str) -> str:
    """Class of a kernel call; unknown Sprite-only calls default LOCAL
    (Appendix A: calls with no UNIX equivalent are handled remotely,
    with the migrate call the lone exception — listed above)."""
    return CALL_TABLE.get(name, CallClass.LOCAL)


def forward_all_table() -> Dict[str, str]:
    """The §4.3 straw man: leave all state home, forward every call."""
    return {name: CallClass.HOME for name in CALL_TABLE}
