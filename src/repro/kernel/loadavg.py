"""BSD-style exponentially damped load average, sampled per second."""

from __future__ import annotations

import math
from typing import Generator, Optional

from ..config import ClusterParams
from ..sim import Cpu, Effect, Simulator, Sleep, spawn

__all__ = ["LoadAverage"]


class LoadAverage:
    """Tracks a host's damped runnable-process count.

    The load-sharing layer also *biases* the value when migrations are
    inbound ("flood prevention", [BSW89]): each expected arrival bumps
    the load immediately so many clients cannot dogpile one idle host
    before its measured load catches up.
    """

    def __init__(
        self,
        sim: Simulator,
        cpu: Cpu,
        params: Optional[ClusterParams] = None,
        start_daemon: bool = True,
    ):
        self.sim = sim
        self.cpu = cpu
        self.params = params or ClusterParams()
        self.value = 0.0
        #: Anticipated near-future arrivals (decays with the same constant).
        self.bias = 0.0
        self._alpha = math.exp(
            -self.params.load_sample_period / self.params.load_decay
        )
        if start_daemon:
            spawn(sim, self._sampler(), name=f"loadavg:{cpu.name}", daemon=True)

    def _sampler(self) -> Generator[Effect, None, None]:
        period = self.params.load_sample_period
        while True:
            yield Sleep(period)
            self.sample()

    def sample(self) -> float:
        runnable = self.cpu.runnable
        self.value = self.value * self._alpha + runnable * (1.0 - self._alpha)
        self.bias *= self._alpha
        return self.value

    @property
    def effective(self) -> float:
        """Measured load plus the anticipated-migration bias."""
        return self.value + self.bias

    def anticipate_arrivals(self, count: int = 1) -> None:
        """Flood prevention: count processes already heading our way."""
        self.bias += count

    def __repr__(self) -> str:
        return f"<LoadAverage {self.value:.2f}+{self.bias:.2f}>"
