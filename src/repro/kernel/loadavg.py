"""BSD-style exponentially damped load average, sampled per second."""

from __future__ import annotations

import math
from typing import Optional

from ..config import ClusterParams
from ..sim import Cpu, Simulator

__all__ = ["LoadAverage"]


class LoadAverage:
    """Tracks a host's damped runnable-process count.

    The load-sharing layer also *biases* the value when migrations are
    inbound ("flood prevention", [BSW89]): each expected arrival bumps
    the load immediately so many clients cannot dogpile one idle host
    before its measured load catches up.
    """

    def __init__(
        self,
        sim: Simulator,
        cpu: Cpu,
        params: Optional[ClusterParams] = None,
        start_daemon: bool = True,
    ):
        self.sim = sim
        self.cpu = cpu
        self.params = params or ClusterParams()
        self.value = 0.0
        #: Anticipated near-future arrivals (decays with the same constant).
        self.bias = 0.0
        self._alpha = math.exp(
            -self.params.load_sample_period / self.params.load_decay
        )
        # The sampler is the highest-frequency periodic activity in a
        # cluster (one event per host per simulated second), so it runs
        # as a bare self-rescheduling callback rather than a coroutine
        # task: no generator frame, no Effect binding per tick.
        if start_daemon:
            sim.defer(self._start_ticks)

    def _start_ticks(self) -> None:
        self.sim.schedule(self.params.load_sample_period, self._tick)

    def _tick(self) -> None:
        self.sample()
        self.sim.schedule(self.params.load_sample_period, self._tick)

    @staticmethod
    def start_batched(sim: Simulator, loadavgs: "list[LoadAverage]") -> None:
        """Kick a group of samplers with one bulk scheduling call.

        The cluster uses this to start every host's per-second tick in a
        single ``schedule_many`` instead of one startup event per host.
        All samplers must share the same ``load_sample_period``.
        """
        if not loadavgs:
            return
        period = loadavgs[0].params.load_sample_period
        sim.schedule_many(period, [(la._tick, ()) for la in loadavgs])

    def sample(self) -> float:
        runnable = self.cpu.runnable
        self.value = self.value * self._alpha + runnable * (1.0 - self._alpha)
        self.bias *= self._alpha
        return self.value

    @property
    def effective(self) -> float:
        """Measured load plus the anticipated-migration bias."""
        return self.value + self.bias

    def anticipate_arrivals(self, count: int = 1) -> None:
        """Flood prevention: count processes already heading our way."""
        self.bias += count

    def __repr__(self) -> str:
        return f"<LoadAverage {self.value:.2f}+{self.bias:.2f}>"
