"""The per-host model kernel.

Each host runs one :class:`SpriteKernel`.  Kernels cooperate through
RPC exactly where the thesis says they must:

* process identifiers encode the home host, so any kernel can route an
  operation on any pid toward its home;
* a migrated process leaves a shadow PCB at home; the home kernel
  forwards location-dependent calls and signals to the current host and
  executes home-class calls on behalf of remote processes;
* fork by a remote process allocates the child's pid at the parent's
  home; exits are reported home; ``wait`` executes at home where the
  family tree lives.

The migration mechanism itself lives in :mod:`repro.migration`; the
kernel exposes the hooks it needs (`migration` attribute, PCB install
and detach primitives).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, List, Optional

from ..config import ClusterParams
from ..fs import FsClient, PdevRegistry
from ..net import Lan, NetNode, RpcError, RpcPort
from ..obs.spans import KERNEL_FORWARD
from ..sim import Cpu, Effect, SimEvent, Simulator, Sleep, Tracer
from . import signals as sig
from .pcb import ExitStatus, Pcb, ProcState, Vm
from .syscalls import CALL_TABLE

__all__ = ["SpriteKernel", "ProcessKilled", "NoSuchProcess", "PID_STRIDE", "home_of_pid"]

#: pid = home_address * PID_STRIDE + sequence (Sprite embedded the home
#: machine id in the pid for exactly this routing purpose).
PID_STRIDE = 1_000_000


def home_of_pid(pid: int) -> int:
    return pid // PID_STRIDE


class ProcessKilled(Exception):
    """Raised inside a process task when a fatal signal is delivered."""

    def __init__(self, signum: int):
        super().__init__(f"killed by {sig.name_of(signum)}")
        self.signum = signum


class NoSuchProcess(Exception):
    """Operation on a pid that does not exist (ESRCH)."""


class SpriteKernel:
    """One host's kernel: process table, families, signals, forwarding."""

    def __init__(
        self,
        sim: Simulator,
        lan: Lan,
        node: NetNode,
        cpu: Cpu,
        rpc: RpcPort,
        fs: FsClient,
        pdevs: PdevRegistry,
        params: Optional[ClusterParams] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.lan = lan
        self.node = node
        self.cpu = cpu
        self.rpc = rpc
        self.fs = fs
        self.pdevs = pdevs
        self.params = params or lan.params
        self.tracer = tracer if tracer is not None else lan.tracer
        self.procs: Dict[int, Pcb] = {}
        self._pid_seq = itertools.count(1)
        #: Kernel-call routing table; the forward-all ablation overrides it.
        self.call_table: Dict[str, str] = dict(CALL_TABLE)
        #: Set by repro.migration when the host supports migration.
        self.migration: Any = None
        # Statistics.
        self.calls_forwarded_home = 0
        self.calls_forwarded_away = 0
        self.signals_delivered = 0
        self._register_services()

    # ------------------------------------------------------------------
    @property
    def address(self) -> int:
        return self.node.address

    def __repr__(self) -> str:
        return f"<SpriteKernel {self.node.name}@{self.address}>"

    def _register_services(self) -> None:
        self.rpc.register("proc.alloc_child", self._rpc_alloc_child)
        self.rpc.register("proc.exit_notify", self._rpc_exit_notify)
        self.rpc.register("proc.wait", self._rpc_wait)
        self.rpc.register("proc.home_call", self._rpc_home_call)
        self.rpc.register("proc.signal", self._rpc_signal)
        self.rpc.register("proc.signal_group", self._rpc_signal_group)
        self.rpc.register("proc.ps", self._rpc_ps)

    # ------------------------------------------------------------------
    # Process table primitives
    # ------------------------------------------------------------------
    def alloc_pid(self) -> int:
        return self.address * PID_STRIDE + next(self._pid_seq)

    def make_pcb(self, name: str, parent: Optional[Pcb] = None, uid: int = 0) -> Pcb:
        """A fresh PCB homed on this host."""
        pcb = Pcb(
            pid=self.alloc_pid(),
            name=name,
            uid=uid,
            home=self.address,
            current=self.address,
            parent_pid=parent.pid if parent else 0,
            start_time=self.sim.now,
        )
        pcb.exit_event = SimEvent(self.sim, name=f"exit:{pcb.pid}")
        if parent is not None:
            parent.children.add(pcb.pid)
            pcb.uid = parent.uid
            pcb.env = dict(parent.env)
            pcb.cwd = parent.cwd
            pcb.pgrp = parent.pgrp or parent.pid
        self.procs[pcb.pid] = pcb
        return pcb

    def install_pcb(self, pcb: Pcb) -> None:
        """Adopt a PCB arriving via migration."""
        pcb.current = self.address
        pcb.state = ProcState.RUNNING
        self.procs[pcb.pid] = pcb

    def detach_pcb(self, pcb: Pcb, moved_to: int) -> None:
        """Mark a PCB as gone to another host.

        At home the entry becomes a *shadow*: a separate record that
        keeps the family links (children set and exit event are shared
        with the travelling PCB) and remembers where the process went,
        so the home can route signals and execute waits.  Elsewhere the
        entry is simply removed — intermediate hosts keep no residual
        state (thesis §4.4).
        """
        if pcb.home == self.address:
            shadow = Pcb(
                pid=pcb.pid,
                name=pcb.name,
                uid=pcb.uid,
                home=pcb.home,
                current=moved_to,
                state=ProcState.MIGRATED,
                parent_pid=pcb.parent_pid,
                start_time=pcb.start_time,
            )
            shadow.children = pcb.children      # shared: updated by forks
            shadow.exit_event = pcb.exit_event  # shared: fired at death
            shadow.pgrp = pcb.pgrp
            shadow.cpu_time = pcb.cpu_time
            shadow.task = pcb.task
            existing = self.procs.get(pcb.pid)
            if existing is not None and existing.state in (
                ProcState.ZOMBIE, ProcState.DEAD,
            ):
                # The exit already raced past us (e.g. journal recovery
                # re-detaching after the remote copy finished): the
                # zombie entry is the newer truth — keep it.
                return
            self.procs[pcb.pid] = shadow
        else:
            self.procs.pop(pcb.pid, None)

    def resident(self, pid: int) -> Pcb:
        pcb = self.procs.get(pid)
        if pcb is None or pcb.state != ProcState.RUNNING:
            raise NoSuchProcess(f"pid {pid} not resident on {self.node.name}")
        return pcb

    def foreign_pcbs(self) -> List[Pcb]:
        """Processes executing here away from their homes."""
        return [
            p
            for p in self.procs.values()
            if p.state == ProcState.RUNNING
            and p.current == self.address
            and p.home != self.address
        ]

    def resident_pcbs(self) -> List[Pcb]:
        return [
            p
            for p in self.procs.values()
            if p.state == ProcState.RUNNING and p.current == self.address
        ]

    def ps(self) -> List[Dict[str, Any]]:
        """Process listing as seen on this host (includes shadows —
        migration is invisible to `ps`, per the transparency goal)."""
        listing = []
        for pcb in sorted(self.procs.values(), key=lambda p: p.pid):
            if pcb.state in (ProcState.RUNNING, ProcState.MIGRATED):
                listing.append(
                    {
                        "pid": pcb.pid,
                        "name": pcb.name,
                        "state": pcb.state.value,
                        "home": pcb.home,
                        "current": pcb.current,
                        "cpu_time": round(pcb.cpu_time, 6),
                    }
                )
        return listing

    # ------------------------------------------------------------------
    # Crash / reboot lifecycle (driven by repro.faults)
    # ------------------------------------------------------------------
    def on_crash(self) -> List[Pcb]:
        """Lose all volatile kernel state: the host just crashed.

        Every resident process task is aborted in place (no exit
        bookkeeping runs — the kernel that would run it is gone) and the
        whole process table, shadows included, is cleared.  Returns the
        PCBs that were executing here so the fault layer can account for
        them.  Monotonic counters survive, as telemetry outside the sim.
        """
        lost: List[Pcb] = []
        for pcb in sorted(self.procs.values(), key=lambda p: p.pid):
            if pcb.state == ProcState.RUNNING and pcb.current == self.address:
                if pcb.task is not None:
                    pcb.task.abort(("host-crashed", self.address))
                lost.append(pcb)
        self.procs.clear()
        if self.migration is not None:
            self.migration.on_crash()
        return lost

    def on_reboot(self) -> None:
        """Host power restored: replay persistent state.

        The only durable kernel-adjacent state in this model is the
        migration journal; hand it to the migration manager so in-flight
        transactions from before the crash are resolved.
        """
        if self.migration is not None:
            self.migration.on_reboot()

    def on_peer_crashed(self, address: int) -> Dict[str, int]:
        """React to another host's crash (driven after detection delay).

        Two consequences, per the thesis's dependency argument:

        * foreign processes executing *here* whose home was ``address``
          lost the home their kernel calls depend on — they are killed
          (orphan detection);
        * shadows *here* whose process was executing on ``address`` are
          reaped with a crash exit status, so waiting parents unblock
          instead of hanging on a host that will never report an exit.
        """
        orphaned = 0
        reaped = 0
        for pcb in sorted(self.procs.values(), key=lambda p: p.pid):
            if (
                pcb.state == ProcState.RUNNING
                and pcb.current == self.address
                and pcb.home == address
            ):
                if pcb.task is not None:
                    pcb.task.abort(("home-crashed", address))
                self.procs.pop(pcb.pid, None)
                orphaned += 1
            elif pcb.state == ProcState.MIGRATED and pcb.current == address:
                status = ExitStatus(
                    pid=pcb.pid,
                    code=128 + sig.SIGKILL,
                    cpu_time=pcb.cpu_time,
                    exit_host=address,
                )
                self._record_zombie(pcb, status)
                reaped += 1
        if self.migration is not None:
            self.migration.peer_crashed(address)
        if (orphaned or reaped) and self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, f"kernel:{self.node.name}", "peer-crashed",
                peer=address, orphaned=orphaned, reaped=reaped,
            )
        return {"orphaned": orphaned, "reaped": reaped}

    # ------------------------------------------------------------------
    # Family bookkeeping (fork / exit / wait), home-centric
    # ------------------------------------------------------------------
    def fork_bookkeeping(
        self, parent: Pcb, name: str
    ) -> Generator[Effect, None, Pcb]:
        """Create the child PCB; involves the home when the parent is remote."""
        yield from self.cpu.consume(self.params.fork_cpu)
        if parent.home == self.address:
            child = self.make_pcb(name, parent=parent)
        else:
            # Ask the parent's home to allocate the pid and shadow entry.
            self.calls_forwarded_home += 1
            payload = yield from self.rpc.call(
                parent.home,
                "proc.alloc_child",
                {"parent_pid": parent.pid, "name": name, "current": self.address},
            )
            child = Pcb(
                pid=payload["pid"],
                name=name,
                uid=parent.uid,
                home=parent.home,
                current=self.address,
                parent_pid=parent.pid,
                start_time=self.sim.now,
            )
            child.exit_event = SimEvent(self.sim, name=f"exit:{child.pid}")
            child.env = dict(parent.env)
            child.cwd = parent.cwd
            child.pgrp = payload["pgrp"]
            self.procs[child.pid] = child
        # Copy-on-write address space: child starts with the parent's
        # size; residency rebuilt on demand.
        child.vm = Vm(size=parent.vm.size, resident=0, dirty=0)
        return child

    def _rpc_alloc_child(self, args: Dict[str, Any]) -> Generator[Effect, None, Dict[str, Any]]:
        parent = self.procs.get(args["parent_pid"])
        yield from self.cpu.consume(self.params.fork_cpu)
        pid = self.alloc_pid()
        shadow = Pcb(
            pid=pid,
            name=args["name"],
            home=self.address,
            current=args["current"],
            state=ProcState.MIGRATED,
            parent_pid=args["parent_pid"],
            start_time=self.sim.now,
        )
        shadow.exit_event = SimEvent(self.sim, name=f"exit:{pid}")
        if parent is not None:
            parent.children.add(pid)
            shadow.uid = parent.uid
            shadow.pgrp = parent.pgrp or parent.pid
        self.procs[pid] = shadow
        return {"pid": pid, "pgrp": shadow.pgrp}

    def exit_bookkeeping(self, pcb: Pcb, code: int) -> Generator[Effect, None, None]:
        """Record a death; reports home when the process died remote."""
        status = ExitStatus(
            pid=pcb.pid, code=code, cpu_time=pcb.cpu_time, exit_host=self.address
        )
        pcb.exit_status = status
        if pcb.home == self.address:
            self._record_zombie(pcb, status)
        else:
            self.procs.pop(pcb.pid, None)
            self.calls_forwarded_home += 1
            # The home may be crashed or partitioned away right now.
            # Sprite blocks RPCs to a down peer until its recovery
            # completes; model that by retrying until the home answers
            # (a rebooted home without the shadow just ignores it) or
            # this kernel itself goes down.
            while True:
                try:
                    yield from self.rpc.call(
                        pcb.home,
                        "proc.exit_notify",
                        {"pid": pcb.pid, "code": code, "cpu_time": pcb.cpu_time,
                         "exit_host": self.address},
                    )
                    break
                except RpcError:
                    if not self.node.up:
                        return
                    yield Sleep(self.params.exit_notify_retry)

    def _record_zombie(self, pcb: Pcb, status: ExitStatus) -> None:
        pcb.state = ProcState.ZOMBIE
        pcb.exit_status = status
        pcb.current = self.address
        if not pcb.exit_event.fired:
            pcb.exit_event.trigger(status)
        parent = self.procs.get(pcb.parent_pid)
        if parent is not None:
            if parent.child_event is not None and not parent.child_event.fired:
                parent.child_event.trigger(pcb.pid)
                parent.child_event = None
            if sig.SIGCHLD in parent.caught_signals:
                self.post_signal_local(parent, sig.SIGCHLD)
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, f"kernel:{self.node.name}", "exit",
                pid=pcb.pid, code=status.code,
            )

    def _rpc_exit_notify(self, args: Dict[str, Any]) -> Generator[Effect, None, None]:
        yield from self.cpu.consume(self.params.kernel_call_cpu)
        pcb = self.procs.get(args["pid"])
        if pcb is None:
            return None
        pcb.cpu_time = args["cpu_time"]
        status = ExitStatus(
            pid=args["pid"], code=args["code"], cpu_time=args["cpu_time"],
            exit_host=args["exit_host"],
        )
        self._record_zombie(pcb, status)
        return None

    def wait_local(self, pcb: Pcb) -> Generator[Effect, None, ExitStatus]:
        """Block until some child of ``pcb`` has exited; reap and return it.

        Must run on the home kernel, where the family tree lives.
        """
        if not pcb.children:
            raise NoSuchProcess(f"pid {pcb.pid} has no children to wait for")
        while True:
            for child_pid in sorted(pcb.children):
                child = self.procs.get(child_pid)
                if child is not None and child.state == ProcState.ZOMBIE:
                    pcb.children.discard(child_pid)
                    child.state = ProcState.DEAD
                    assert child.exit_status is not None
                    return child.exit_status
                if child is None:
                    pcb.children.discard(child_pid)
            if not pcb.children:
                raise NoSuchProcess(f"pid {pcb.pid} has no children to wait for")
            pcb.child_event = SimEvent(self.sim, name=f"chld:{pcb.pid}")
            yield pcb.child_event.wait()

    def _rpc_wait(self, args: Dict[str, Any]) -> Generator[Effect, None, ExitStatus]:
        pcb = self.procs.get(args["pid"])
        if pcb is None:
            raise NoSuchProcess(f"pid {args['pid']} unknown at its home")
        return (yield from self.wait_local(pcb))

    # ------------------------------------------------------------------
    # Location-dependent (home-class) calls
    # ------------------------------------------------------------------
    def do_home_call(
        self, pcb_or_pid: Any, call: str, args: Any
    ) -> Generator[Effect, None, Any]:
        """Execute a home-class call *on this kernel* (the home)."""
        yield from self.cpu.consume(self.params.kernel_call_cpu)
        pid = pcb_or_pid.pid if isinstance(pcb_or_pid, Pcb) else pcb_or_pid
        pcb = self.procs.get(pid)
        if call == "gettimeofday":
            return self.sim.now
        if call == "gethostname":
            return self.node.name
        if call == "getpgrp":
            return pcb.pgrp if pcb else 0
        if call == "setpgrp":
            if pcb is not None:
                pcb.pgrp = args if args else pid
            return pcb.pgrp if pcb else 0
        if call == "getrusage":
            return {"cpu_time": pcb.cpu_time if pcb else 0.0,
                    "migrations": pcb.migrations if pcb else 0}
        raise NoSuchProcess(f"unknown home call {call!r}")

    def _rpc_home_call(self, args: Dict[str, Any]) -> Generator[Effect, None, Any]:
        # Keep the shadow's usage roughly current for getrusage at home.
        pcb = self.procs.get(args["pid"])
        if pcb is not None and "cpu_time" in args:
            pcb.cpu_time = max(pcb.cpu_time, args["cpu_time"])
        return (yield from self.do_home_call(args["pid"], args["call"], args.get("args")))

    def forward_home(
        self, pcb: Pcb, call: str, args: Any = None
    ) -> Generator[Effect, None, Any]:
        """Send a home-class call from a remote process to its home."""
        self.calls_forwarded_home += 1
        spans = self.rpc.spans
        started = self.sim.now if spans.enabled else 0.0
        value = yield from self.rpc.call(
            pcb.home,
            "proc.home_call",
            {"pid": pcb.pid, "call": call, "args": args,
             "cpu_time": pcb.cpu_time},
        )
        if spans.enabled:
            spans.record(
                KERNEL_FORWARD,
                f"kern:{self.node.name}",
                started,
                self.sim.now,
                call=call,
                pid=pcb.pid,
                home=pcb.home,
            )
        return value

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def signal(self, target_pid: int, signum: int) -> Generator[Effect, None, None]:
        """Route a signal to ``target_pid`` wherever it lives.

        Routing is exactly Sprite's: try locally; else go to the pid's
        home, which forwards to the current host if migrated.
        """
        pcb = self.procs.get(target_pid)
        if pcb is not None and pcb.state == ProcState.RUNNING and pcb.current == self.address:
            yield from self.cpu.consume(self.params.kernel_call_cpu)
            self.post_signal_local(pcb, signum)
            return
        if pcb is not None and pcb.state == ProcState.MIGRATED:
            # We are the home: forward to the current host.
            self.calls_forwarded_away += 1
            yield from self.rpc.call(
                pcb.current, "proc.signal", {"pid": target_pid, "sig": signum}
            )
            return
        if pcb is not None and pcb.state in (ProcState.ZOMBIE, ProcState.DEAD):
            return  # delivering to the dead is a no-op
        home = home_of_pid(target_pid)
        if home == self.address:
            raise NoSuchProcess(f"pid {target_pid} unknown at its home")
        yield from self.rpc.call(home, "proc.signal", {"pid": target_pid, "sig": signum})

    def _rpc_signal(self, args: Dict[str, Any]) -> Generator[Effect, None, None]:
        yield from self.signal(args["pid"], args["sig"])
        return None

    def signal_group(self, pgrp: int, signum: int) -> Generator[Effect, None, int]:
        """Deliver a signal to every member of a process group.

        Runs on the group's home kernel, which knows the membership
        (shadows included); remote members get theirs forwarded.
        Returns the number of processes signalled.
        """
        members = [
            pcb.pid
            for pcb in self.procs.values()
            if pcb.pgrp == pgrp and pcb.alive
        ]
        for pid in members:
            yield from self.signal(pid, signum)
        return len(members)

    def _rpc_signal_group(self, args: Dict[str, Any]) -> Generator[Effect, None, int]:
        return (yield from self.signal_group(args["pgrp"], args["sig"]))

    def post_signal_local(self, pcb: Pcb, signum: int) -> None:
        """Queue a signal on a resident process and preempt it if possible."""
        pcb.pending_signals.append(signum)
        self.signals_delivered += 1
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, f"kernel:{self.node.name}", "signal",
                pid=pcb.pid, sig=sig.name_of(signum),
            )
        if pcb.task is not None and pcb.interruptible:
            pcb.task.interrupt(("signal", signum))

    def _rpc_ps(self, _args: Any) -> Generator[Effect, None, List[Dict[str, Any]]]:
        yield from self.cpu.consume(self.params.kernel_call_cpu)
        return self.ps()
