"""A workstation: node + CPU + RPC + FS client + kernel + user presence."""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Tuple

from ..config import ClusterParams
from ..fs import FsClient, PdevRegistry, PrefixTable
from ..net import Lan, NetNode, RpcPort
from ..sim import Cpu, Effect, Simulator, Tracer
from .kernel import SpriteKernel
from .loadavg import LoadAverage
from .pcb import Pcb
from .process import Program, UserContext

__all__ = ["Host"]


class Host:
    """One Sprite workstation.

    ``user_input()`` marks keyboard/mouse activity — the signal the
    thesis's availability criterion and eviction policy key off: a host
    is *available* when its load average is low and no input arrived
    recently; a user's return (new input) reclaims the host.
    """

    def __init__(
        self,
        sim: Simulator,
        lan: Lan,
        name: str,
        prefixes: PrefixTable,
        kernels: Dict[int, SpriteKernel],
        params: Optional[ClusterParams] = None,
        tracer: Optional[Tracer] = None,
        cpu_speed: float = 1.0,
        start_daemons: bool = True,
        batch_load_ticks: bool = False,
    ):
        self.sim = sim
        self.lan = lan
        self.name = name
        self.params = params or lan.params
        self.tracer = tracer if tracer is not None else lan.tracer
        self.node = NetNode(sim, name)
        lan.register(self.node)
        self.cpu = Cpu(
            sim,
            quantum=self.params.cpu_quantum,
            speed=cpu_speed * self.params.cpu_speed,
            name=f"{name}-cpu",
        )
        self.rpc = RpcPort(sim, lan, self.node, cpu=self.cpu, params=self.params)
        self.fs = FsClient(
            sim, lan, self.node, self.rpc, self.cpu, prefixes,
            params=self.params, start_writeback_daemon=start_daemons,
        )
        self.pdevs = PdevRegistry(sim, self.rpc, self.cpu, self.params)
        self.kernel = SpriteKernel(
            sim, lan, self.node, self.cpu, self.rpc, self.fs, self.pdevs,
            params=self.params,
        )
        # ``batch_load_ticks``: the cluster starts every host's sampler
        # itself with one LoadAverage.start_batched call.
        self.loadavg = LoadAverage(
            sim, self.cpu, self.params,
            start_daemon=start_daemons and not batch_load_ticks,
        )
        self._kernels = kernels
        kernels[self.node.address] = self.kernel
        #: Simulated time of the last keyboard/mouse input (-inf = never).
        self.last_input: float = float("-inf")
        #: True while the host's owner is at the console (activity traces
        #: toggle this; input events refresh last_input).
        self.user_present = False
        #: Crash/reboot bookkeeping (driven by repro.faults).
        self.crashes = 0
        self.up_since = 0.0

    # ------------------------------------------------------------------
    @property
    def address(self) -> int:
        return self.node.address

    def __repr__(self) -> str:
        return f"<Host {self.name}@{self.address}>"

    # ------------------------------------------------------------------
    # User presence (drives availability and eviction)
    # ------------------------------------------------------------------
    def user_input(self) -> None:
        self.last_input = self.sim.now
        self.user_present = True

    def user_leaves(self) -> None:
        self.user_present = False

    def input_idle_seconds(self) -> float:
        return self.sim.now - self.last_input

    def is_available(self) -> bool:
        """The thesis's idleness criterion: low load AND no recent input."""
        return (
            self.loadavg.effective < self.params.idle_load_threshold
            and self.input_idle_seconds() >= self.params.idle_input_threshold
        )

    # ------------------------------------------------------------------
    # Crash / reboot lifecycle (driven by repro.faults)
    # ------------------------------------------------------------------
    @property
    def is_up(self) -> bool:
        return self.node.up

    def crash(self) -> list:
        """Full-host crash: all volatile state is lost at this instant.

        Resident process tasks are aborted without cleanup, the kernel's
        process table and the FS client's cache/stream state are
        cleared, and queued inbound packets are discarded.  Daemons
        (writeback, availability notifier) survive as tasks but idle
        while ``node.up`` is False.  Returns the PCBs that were
        executing here; the rest of the cluster only reacts once the
        fault layer drives crash detection.
        """
        if not self.node.up:
            return []
        self.node.up = False
        self.crashes += 1
        lost = self.kernel.on_crash()
        self.fs.on_crash()
        while True:
            ok, _packet = self.node.inbox.try_get()
            if not ok:
                break
        return lost

    def reboot(self) -> None:
        """Come back up with a cold kernel.

        The node answers on the LAN again immediately (it was never
        unregistered — same address, as in Sprite where the machine id
        is stable); the availability notifier re-announces to migd
        within one availability period on its next tick, and FS client
        recovery is a no-op since no streams survived the crash.
        """
        if self.node.up:
            return
        self.node.up = True
        self.up_since = self.sim.now
        self.last_input = float("-inf")
        self.user_present = False
        self.kernel.on_reboot()

    # ------------------------------------------------------------------
    # Process creation
    # ------------------------------------------------------------------
    def spawn_process(
        self,
        program: Program,
        *args: Any,
        name: Optional[str] = None,
        uid: int = 0,
    ) -> Tuple[Pcb, UserContext]:
        """Create a process homed here running ``program``."""
        pcb = self.kernel.make_pcb(name or getattr(program, "__name__", "proc"), uid=uid)
        ctx = UserContext(pcb, self._kernels)
        ctx.start(program, args)
        return pcb, ctx

    def run_process(
        self, program: Program, *args: Any, name: Optional[str] = None
    ) -> Generator[Effect, None, Any]:
        """Spawn a process and wait for it (returns the task result)."""
        pcb, _ctx = self.spawn_process(program, *args, name=name)
        result = yield pcb.task.join()
        return result
