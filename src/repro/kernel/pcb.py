"""Process control blocks and virtual-memory descriptors.

The thesis divides a process's state into modules, each packaged and
transferred by its own kernel routine during migration (§4.2).  The
:class:`Pcb` mirrors that decomposition: identity (pid/home), execution
state, virtual memory (:class:`Vm`), open streams, signal state, and
process-family links.

A migrated process leaves a *shadow* PCB on its home machine (state
``MIGRATED``) so the home kernel can forward operations and keep the
process visible in process listings — the heart of Sprite's
transparency story.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from ..fs import BackingFile, Stream
from ..sim import SimEvent

__all__ = [
    "ProcState", "Vm", "Pcb", "MigrationTicket", "PendingInstall",
    "ExitStatus",
]


class ProcState(enum.Enum):
    """Lifecycle states of a PCB entry."""

    RUNNING = "running"        # resident and runnable/blocked here
    MIGRATED = "migrated"      # shadow entry: process executes elsewhere
    ZOMBIE = "zombie"          # exited, waiting to be reaped
    DEAD = "dead"              # reaped; entry kept briefly for debugging


@dataclass
class Vm:
    """A process's address space, paged via a backing file.

    Sizes are in bytes.  ``resident`` is how much is in host memory;
    ``dirty`` is how much of that has no up-to-date copy in the backing
    file — the part a flush-style migration must write out.
    """

    size: int = 0
    resident: int = 0
    dirty: int = 0
    backing: Optional[BackingFile] = None
    #: Shared writable memory disqualifies a process from migration
    #: (thesis §4.2.1); almost never set, exactly as in Sprite.
    shared_writable: bool = False
    #: Declared dirtying rate (bytes/sec) used by the pre-copy policy to
    #: model re-dirtying during its rounds.
    dirty_rate_hint: float = 0.0
    #: Demand-paging owed after a migration, settled on first compute.
    page_in_debt: int = 0
    debt_from: Optional[str] = None   # "backing" or "cor"
    cor_source: int = -1              # source host for copy-on-reference

    def touch(self, nbytes: int, write: bool = False) -> None:
        """Reference ``nbytes`` of memory, growing residency (and dirtying
        pages on writes)."""
        self.resident = min(self.size, max(self.resident, nbytes))
        if write:
            self.dirty = min(self.size, self.dirty + nbytes)

    def clean(self) -> None:
        self.dirty = 0

    def evict_resident(self) -> None:
        self.resident = 0
        self.dirty = 0


@dataclass
class ExitStatus:
    pid: int
    code: int
    cpu_time: float = 0.0
    #: Host the process was on when it exited (for usage statistics).
    exit_host: int = -1


@dataclass
class MigrationTicket:
    """Handshake between a kernel migrating a process and the process task.

    Since the transactional protocol, the ticket also carries the
    *target-issued lease*: at negotiation the target hands out a
    ``ticket_id`` with an expiry; the inactive copy it installs is held
    under that lease, and reaped if no ``mig.commit`` arrives before
    ``expires``.
    """

    target: int                     # LAN address of the destination host
    reason: str                     # "exec" | "manual" | "eviction" | ...
    parked: SimEvent = None         # type: ignore[assignment] - process reached freeze point
    resume: SimEvent = None         # type: ignore[assignment] - transfer done, continue
    #: Target-issued lease: id + absolute expiry (0 until negotiated).
    ticket_id: int = 0
    expires: float = 0.0
    #: Filled by the migration mechanism for metrics.
    freeze_started: float = 0.0
    freeze_ended: float = 0.0


@dataclass
class PendingInstall:
    """An *inactive* migrated-in process held by a target kernel.

    Everything ``mig.install`` shipped sits here — outside the process
    table, never runnable — until the source's ``mig.commit`` activates
    it.  The travelling :class:`Pcb` is deliberately left untouched: if
    the transaction aborts, the source resumes the process with no
    target-side mutation to undo.
    """

    pid: int
    ticket_id: int
    pcb: "Pcb" = None               # type: ignore[assignment]
    #: fd -> stream copies already imported into the target's FsClient.
    streams: Dict[int, Stream] = field(default_factory=dict)
    expires: float = 0.0
    #: Guest memory reserved under the lease (reclaimed on reap/abort).
    reserved_bytes: int = 0
    cpu_time: float = 0.0


@dataclass
class Pcb:
    """One process's kernel state."""

    pid: int
    name: str
    uid: int = 0
    home: int = -1                  # LAN address of the home host (fixed)
    current: int = -1               # LAN address where it executes now
    state: ProcState = ProcState.RUNNING
    parent_pid: int = 0
    children: Set[int] = field(default_factory=set)
    vm: Vm = field(default_factory=Vm)
    #: fd -> stream; fds are small ints as in UNIX.
    streams: Dict[int, Stream] = field(default_factory=dict)
    next_fd: int = 3                # 0-2 notionally stdin/out/err
    cwd: str = "/"
    env: Dict[str, str] = field(default_factory=dict)
    pgrp: int = 0
    #: Pending (not yet delivered) signals, in arrival order.
    pending_signals: List[int] = field(default_factory=list)
    #: Signals the program elected to catch instead of dying from.
    caught_signals: Set[int] = field(default_factory=set)
    exit_event: SimEvent = None     # type: ignore[assignment]
    exit_status: Optional[ExitStatus] = None
    cpu_time: float = 0.0
    start_time: float = 0.0
    #: Set while a migration is being negotiated/performed.
    migration_ticket: Optional[MigrationTicket] = None
    #: Depth of kernel calls in progress (migration waits for zero).
    in_syscall: int = 0
    #: Number of completed migrations (for statistics / double migration).
    migrations: int = 0
    #: True while the process task is parked in an interruptible wait
    #: (compute slice, sleep) where signals/migration may preempt it.
    interruptible: bool = False
    #: Event armed by a parent blocked in wait(); fired on child exit.
    child_event: Optional[SimEvent] = None
    #: Signals delivered to (and caught by) the program, for inspection.
    signals_received: List[int] = field(default_factory=list)
    task: Any = None                # the sim Task executing the program
    #: Set while a checkpoint image of this process is being written;
    #: mutually exclusive with migration (the txn lease and the image
    #: must never race over the same process state).
    checkpoint_lock: bool = False
    #: CPU seconds already banked by the checkpoint image this process
    #: was last restored from (0.0 for a never-restored process).
    #: Restart-aware programs read it to skip completed work.
    restored_progress: float = 0.0

    @property
    def is_remote(self) -> bool:
        """Executing away from home (from the process's perspective)."""
        return self.current != self.home

    @property
    def alive(self) -> bool:
        return self.state in (ProcState.RUNNING, ProcState.MIGRATED)

    def new_fd(self, stream: Stream) -> int:
        fd = self.next_fd
        self.next_fd += 1
        self.streams[fd] = stream
        return fd

    def stream(self, fd: int) -> Stream:
        if fd not in self.streams:
            raise KeyError(f"pid {self.pid}: bad file descriptor {fd}")
        return self.streams[fd]

    def describe(self) -> str:
        where = "home" if not self.is_remote else f"remote@{self.current}"
        return f"<pid {self.pid} {self.name} {self.state.value} {where}>"
