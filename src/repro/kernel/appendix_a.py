"""Appendix A: how every 4.3BSD kernel call is handled for a migrated
process.

The thesis closes with a call-by-call table ("Because Sprite attempts
to be compatible with 4.3BSD UNIX ... I list the system calls available
in 4.3BSD UNIX"); this module reproduces it as data.  Classes:

* ``local``   — handled entirely by the current (remote) kernel; the
  shared network file system makes most file calls location-
  independent.
* ``home``    — forwarded to the home machine, because the result must
  be identical to never having migrated (time, host identity, process
  families, priorities) or because the state lives there.
* ``creates-state`` — handled where the process runs but with home
  participation to keep the shadow PCB consistent (process creation
  and destruction).
* ``unsupported`` — calls Sprite rejected for migrated processes (or
  that make no sense in Sprite); processes using them could not
  migrate.

The executable kernel implements the representative subset in
``syscalls.CALL_TABLE``; this table is the complete reference, used by
documentation and by tests that check the subset agrees with it.
"""

from __future__ import annotations

from typing import Dict

from .syscalls import CallClass

__all__ = ["APPENDIX_A", "classes_of"]

_L = CallClass.LOCAL
_H = CallClass.HOME
_C = CallClass.CREATES_STATE
_U = "unsupported"

#: The 4.3BSD kernel-call inventory with its migration handling.
APPENDIX_A: Dict[str, str] = {
    # -- process control ------------------------------------------------
    "fork": _C, "vfork": _C, "exec": _C, "execve": _C, "exit": _C,
    "wait": _H, "wait3": _H, "waitpid": _H,
    "getpid": _L, "getppid": _L,
    "getpgrp": _H, "setpgrp": _H, "setpgid": _H, "getsid": _H,
    "kill": _H, "killpg": _H, "sigvec": _L, "sigblock": _L,
    "sigsetmask": _L, "sigpause": _L, "sigstack": _L, "sigreturn": _L,
    "ptrace": _U,                    # debugging a migrated process: no
    "profil": _L,
    # -- identity / credentials: travel in the PCB -------------------------
    "getuid": _L, "geteuid": _L, "getgid": _L, "getegid": _L,
    "getgroups": _L, "setgroups": _H, "setreuid": _H, "setregid": _H,
    # -- timing: consistent with the home machine -------------------------
    "gettimeofday": _H, "settimeofday": _H, "getitimer": _L,
    "setitimer": _L, "adjtime": _H,
    # -- resource accounting: accumulated at home -----------------------
    "getrusage": _H, "getrlimit": _L, "setrlimit": _L,
    "getpriority": _H, "setpriority": _H,
    # -- files: the network FS is location-transparent ---------------------
    "open": _L, "creat": _L, "close": _L, "read": _L, "write": _L,
    "readv": _L, "writev": _L, "lseek": _L, "dup": _L, "dup2": _L,
    "pipe": _L,
    "stat": _L, "lstat": _L, "fstat": _L, "access": _L,
    "chmod": _L, "fchmod": _L, "chown": _L, "fchown": _L,
    "utimes": _L, "truncate": _L, "ftruncate": _L,
    "link": _L, "unlink": _L, "symlink": _L, "readlink": _L,
    "rename": _L, "mkdir": _L, "rmdir": _L, "chdir": _L, "fchdir": _L,
    "chroot": _L, "umask": _L, "sync": _L, "fsync": _L, "flock": _L,
    "fcntl": _L, "ioctl": _L, "select": _L,
    "mknod": _L, "mount": _U, "umount": _U, "swapon": _U,
    "quota": _L, "getdirentries": _L, "getdtablesize": _L,
    # -- sockets: proxied through the Internet server pdev [Che87] -------
    "socket": _L, "bind": _L, "listen": _L, "accept": _L, "connect": _L,
    "send": _L, "sendto": _L, "sendmsg": _L, "recv": _L, "recvfrom": _L,
    "recvmsg": _L, "socketpair": _L, "shutdown": _L,
    "getsockname": _L, "getpeername": _L,
    "getsockopt": _L, "setsockopt": _L,
    # -- memory ----------------------------------------------------------
    "sbrk": _L, "brk": _L, "mmap": _U,   # shared mappings: not migratable
    "munmap": _U, "mprotect": _U, "madvise": _L, "mincore": _L,
    "getpagesize": _L, "vhangup": _U,
    # -- host identity: the home's, for transparency ------------------------
    "gethostname": _H, "sethostname": _H, "gethostid": _H, "sethostid": _H,
    "getdomainname": _H, "setdomainname": _H, "uname": _H,
    # -- misc ------------------------------------------------------------
    "sleep": _L, "pause": _L, "alarm": _L, "times": _H,
    "acct": _H, "reboot": _U, "sigsuspend": _L,
    # -- Sprite-specific -------------------------------------------------
    "migrate": _H,                   # forwarded home (Appendix A's one
                                     # exception among Sprite-only calls)
}


def classes_of(table: Dict[str, str] = APPENDIX_A) -> Dict[str, int]:
    """Histogram of handling classes (documentation/reporting helper)."""
    histogram: Dict[str, int] = {}
    for klass in table.values():
        histogram[klass] = histogram.get(klass, 0) + 1
    return histogram
