"""User processes: the program-facing kernel-call interface.

A *program* is a generator function ``def prog(proc, *args)`` receiving
a :class:`UserContext` (``proc``).  Everything a program does — compute,
sleep, file I/O, fork/exec/wait, signals — goes through ``proc`` so the
kernel can charge the right host's CPU, classify calls per Appendix A,
forward location-dependent calls home, and freeze the process at safe
points for migration.

Example::

    def worker(proc, seconds):
        yield from proc.compute(seconds)
        stream_fd = yield from proc.open("/out", OpenMode.WRITE | OpenMode.CREATE)
        yield from proc.write(stream_fd, 4096)
        yield from proc.close(stream_fd)
        return 0

Migration transparency: a process task never knows where it runs; every
operation resolves ``self.kernel`` freshly from ``pcb.current``, so
after the migration mechanism rebinds the PCB the same task seamlessly
charges the new host.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..config import KB, ClusterParams
from ..fs import BackingFile, OpenMode
from ..sim import Effect, Interrupted, Sleep, Task, spawn
from . import signals as sig
from .kernel import NoSuchProcess, ProcessKilled, SpriteKernel
from .pcb import ExitStatus, Pcb
from .syscalls import CallClass

__all__ = ["UserContext", "Program", "ExitProcess"]

Program = Callable[..., Generator[Effect, Any, Any]]

#: Signals ignored unless caught (UNIX default-disposition subset).
_DEFAULT_IGNORE = frozenset({sig.SIGCHLD})


class ExitProcess(Exception):
    """Internal: raised by ``proc.exit`` to unwind the program."""

    def __init__(self, code: int):
        super().__init__(f"exit({code})")
        self.code = code


class _ExecImage(Exception):
    """Internal: raised by ``proc.exec`` to replace the program."""

    def __init__(self, program: Program, args: Tuple[Any, ...], name: Optional[str]):
        super().__init__("exec")
        self.program = program
        self.args = args
        self.name = name


class UserContext:
    """The ``proc`` handle a program uses for every kernel call."""

    def __init__(self, pcb: Pcb, kernels: Dict[int, SpriteKernel]):
        self.pcb = pcb
        self._kernels = kernels

    # ------------------------------------------------------------------
    # Where am I (resolved per call: this is what migration rebinds)
    # ------------------------------------------------------------------
    @property
    def kernel(self) -> SpriteKernel:
        return self._kernels[self.pcb.current]

    @property
    def params(self) -> ClusterParams:
        return self.kernel.params

    @property
    def sim(self):
        return self.kernel.sim

    @property
    def now(self) -> float:
        """Raw simulator clock (zero-cost; use gettimeofday for the
        transparent, home-consistent time)."""
        return self.kernel.sim.now

    @property
    def pid(self) -> int:
        return self.pcb.pid

    # ------------------------------------------------------------------
    # Process lifecycle driver
    # ------------------------------------------------------------------
    def start(self, program: Program, args: Tuple[Any, ...] = ()) -> Task:
        """Spawn the task that runs ``program`` under this context."""
        # partial (not a closure) so a not-yet-started process pickles
        # into a snapshot whenever ``program`` itself does.
        task = spawn(
            self.sim,
            partial(self._run, program, args),
            name=f"proc:{self.pcb.pid}:{self.pcb.name}",
            daemon=False,
        )
        self.pcb.task = task
        return task

    def _run(self, program: Program, args: Tuple[Any, ...]) -> Generator[Effect, Any, Any]:
        """Program driver: the task's result is the program's return
        value (exit codes when the program exits/dies)."""
        code = 0
        result: Any = None
        while True:
            try:
                result = yield from program(self, *args)
                code = result if isinstance(result, int) else 0
                break
            except ExitProcess as exit_exc:
                code = exit_exc.code
                result = code
                break
            except ProcessKilled as killed:
                code = 128 + killed.signum
                result = code
                break
            except _ExecImage as image:
                program = image.program
                args = image.args
                if image.name:
                    self.pcb.name = image.name
                continue
        yield from self._terminate(code)
        return result if result is not None else code

    def _terminate(self, code: int) -> Generator[Effect, None, None]:
        pcb = self.pcb
        kernel = self.kernel
        for fd in sorted(pcb.streams):
            stream = pcb.streams.pop(fd)
            try:
                yield from kernel.fs.close(stream)
            except Exception:  # noqa: BLE001 - closing is best-effort at exit
                pass
        if pcb.vm.backing is not None and pcb.vm.backing.handle_id >= 0:
            try:
                yield from pcb.vm.backing.remove()
            except Exception:  # noqa: BLE001
                pass
        yield from kernel.exit_bookkeeping(pcb, code)

    # ------------------------------------------------------------------
    # Safe points: signals and migration freezes
    # ------------------------------------------------------------------
    def _checkpoint(self) -> Generator[Effect, None, None]:
        """Deliver pending signals and honour migration freezes.

        Called after every kernel call and between compute slices —
        these are the "safe points" where Sprite suspends a process.
        """
        self._drain_signals()
        ticket = self.pcb.migration_ticket
        if ticket is not None:
            ticket.freeze_started = self.sim.now
            ticket.parked.trigger()
            yield ticket.resume.wait()
            self._drain_signals()

    def _drain_signals(self) -> None:
        pcb = self.pcb
        while pcb.pending_signals:
            signum = pcb.pending_signals.pop(0)
            if signum in pcb.caught_signals and signum not in sig.UNCATCHABLE:
                pcb.signals_received.append(signum)
            elif signum in _DEFAULT_IGNORE:
                continue
            else:
                raise ProcessKilled(signum)

    def _on_interrupt(self, intr: Interrupted) -> None:
        """Interpret an interrupt that preempted an interruptible wait."""
        cause = intr.cause
        if isinstance(cause, tuple) and cause and cause[0] == "signal":
            return  # the signal is in pending_signals; checkpoint drains it
        if isinstance(cause, tuple) and cause and cause[0] == "migrate":
            return  # ticket already set; checkpoint parks us
        raise ProcessKilled(sig.SIGKILL)

    # ------------------------------------------------------------------
    # CPU and memory
    # ------------------------------------------------------------------
    def compute(
        self, demand: float, dirty_bytes_per_second: float = 0.0
    ) -> Generator[Effect, None, None]:
        """Burn ``demand`` CPU-seconds on the current host.

        Interruptible at quantum granularity, so signals arrive promptly
        and migration can freeze the process mid-computation.  Optionally
        dirties memory as it runs (long-running jobs touch their pages).
        """
        if demand < 0:
            raise ValueError(f"negative CPU demand: {demand}")
        pcb = self.pcb
        kernels = self._kernels
        remaining = demand
        while remaining > 1e-9:
            if pcb.vm.page_in_debt > 0:
                # First touch after a migration: fault the working set
                # back in (from the backing file, or from the source for
                # copy-on-reference).
                yield from self._settle_vm_debt()
            # Re-resolved every slice: migration rebinds pcb.current.
            kernel = kernels[pcb.current]
            cpu = kernel.cpu
            sim = kernel.sim
            slice_len = min(cpu.quantum, remaining / cpu.speed)
            consumed = 0.0
            cpu.runnable += 1
            pcb.interruptible = True
            try:
                yield cpu.core.acquire()
                started = sim.now
                try:
                    yield Sleep(slice_len)
                    consumed = slice_len * cpu.speed
                except Interrupted as intr:
                    consumed = (sim.now - started) * cpu.speed
                    self._on_interrupt(intr)
                finally:
                    cpu.core.release()
            except Interrupted as intr:
                # Interrupted while waiting for the core: nothing consumed.
                self._on_interrupt(intr)
            finally:
                cpu.runnable -= 1
                pcb.interruptible = False
            remaining -= consumed
            pcb.cpu_time += consumed
            cpu.total_demand += consumed
            if dirty_bytes_per_second > 0 and consumed > 0:
                pcb.vm.touch(
                    int(dirty_bytes_per_second * consumed), write=True
                )
            # Inline the no-signal, no-freeze checkpoint fast path (the
            # overwhelmingly common case between compute slices).
            if pcb.pending_signals:
                self._drain_signals()
            if pcb.migration_ticket is not None:
                yield from self._checkpoint()

    def _settle_vm_debt(self) -> Generator[Effect, None, None]:
        vm = self.pcb.vm
        debt, vm.page_in_debt = vm.page_in_debt, 0
        if debt <= 0:
            return
        if vm.debt_from == "cor" and vm.cor_source >= 0:
            yield from self.kernel.rpc.call(
                vm.cor_source, "mig.cor_fetch", debt, reply_size=debt,
                timeout=None,
            )
        elif vm.backing is not None:
            yield from vm.backing.page_in(debt)
        vm.resident = min(vm.size, vm.resident + debt)
        vm.debt_from = None

    def sleep(self, duration: float) -> Generator[Effect, None, None]:
        """Block for ``duration`` seconds; interruptible."""
        deadline = self.sim.now + duration
        while True:
            remaining = deadline - self.sim.now
            if remaining <= 0:
                break
            self.pcb.interruptible = True
            try:
                yield Sleep(remaining)
            except Interrupted as intr:
                self._on_interrupt(intr)
            finally:
                self.pcb.interruptible = False
            yield from self._checkpoint()
        yield from self._checkpoint()

    def use_memory(self, nbytes: int) -> Generator[Effect, None, None]:
        """Grow the address space to ``nbytes`` (creates the backing file)."""
        pcb = self.pcb
        pcb.vm.size = max(pcb.vm.size, nbytes)
        pcb.vm.resident = pcb.vm.size
        if pcb.vm.backing is None:
            backing = BackingFile(self.kernel.fs, f"/swap/{pcb.pid}")
            yield from backing.create()
            pcb.vm.backing = backing
        yield from self._checkpoint()

    def dirty_memory(self, nbytes: int) -> Generator[Effect, None, None]:
        """Write ``nbytes`` of the address space (dirty pages)."""
        self.pcb.vm.touch(nbytes, write=True)
        yield from self.kernel.cpu.consume(
            self.params.page_handling_cpu * self.params.pages(nbytes)
        )
        yield from self._checkpoint()

    # ------------------------------------------------------------------
    # Kernel-call plumbing
    # ------------------------------------------------------------------
    def _syscall(self, name: str, local: Generator) -> Generator[Effect, None, Any]:
        """Run a kernel call to completion, then hit a safe point."""
        pcb = self.pcb
        pcb.in_syscall += 1
        try:
            result = yield from local
        finally:
            pcb.in_syscall -= 1
        yield from self._checkpoint()
        return result

    def _classified(self, name: str, args: Any = None) -> Generator[Effect, None, Any]:
        """Dispatch a home-class-capable call per the kernel-call table."""
        kernel = self.kernel
        klass = kernel.call_table.get(name, CallClass.LOCAL)
        if self.pcb.is_remote and klass == CallClass.HOME:
            return (yield from kernel.forward_home(self.pcb, name, args))
        return (yield from kernel.do_home_call(self.pcb, name, args))

    # ------------------------------------------------------------------
    # Identity / time / usage
    # ------------------------------------------------------------------
    def getpid(self) -> Generator[Effect, None, int]:
        yield from self.kernel.cpu.consume(self.params.kernel_call_cpu)
        return self.pcb.pid

    def getppid(self) -> Generator[Effect, None, int]:
        yield from self.kernel.cpu.consume(self.params.kernel_call_cpu)
        return self.pcb.parent_pid

    def gettimeofday(self) -> Generator[Effect, None, float]:
        return (yield from self._syscall(
            "gettimeofday", self._classified("gettimeofday")
        ))

    def gethostname(self) -> Generator[Effect, None, str]:
        return (yield from self._syscall(
            "gethostname", self._classified("gethostname")
        ))

    def getrusage(self) -> Generator[Effect, None, Dict[str, Any]]:
        return (yield from self._syscall("getrusage", self._classified("getrusage")))

    def getpgrp(self) -> Generator[Effect, None, int]:
        return (yield from self._syscall("getpgrp", self._classified("getpgrp")))

    def setpgrp(self, pgrp: Optional[int] = None) -> Generator[Effect, None, int]:
        return (yield from self._syscall(
            "setpgrp", self._classified("setpgrp", pgrp)
        ))

    # ------------------------------------------------------------------
    # Files (location-independent thanks to the network FS)
    # ------------------------------------------------------------------
    def open(self, path: str, mode: int = OpenMode.READ) -> Generator[Effect, None, int]:
        def impl():
            full = self._resolve(path)
            stream = yield from self.kernel.fs.open(full, mode)
            return self.pcb.new_fd(stream)
        return (yield from self._syscall("open", impl()))

    def close(self, fd: int) -> Generator[Effect, None, None]:
        def impl():
            stream = self.pcb.streams.pop(fd)
            yield from self.kernel.fs.close(stream)
        return (yield from self._syscall("close", impl()))

    def read(self, fd: int, nbytes: int) -> Generator[Effect, None, int]:
        def impl():
            return (yield from self.kernel.fs.read(self.pcb.stream(fd), nbytes))
        return (yield from self._syscall("read", impl()))

    def write(self, fd: int, nbytes: int) -> Generator[Effect, None, int]:
        def impl():
            return (yield from self.kernel.fs.write(self.pcb.stream(fd), nbytes))
        return (yield from self._syscall("write", impl()))

    def lseek(self, fd: int, offset: int) -> Generator[Effect, None, int]:
        def impl():
            return (yield from self.kernel.fs.seek(self.pcb.stream(fd), offset))
        return (yield from self._syscall("lseek", impl()))

    def stat(self, path: str) -> Generator[Effect, None, Dict[str, Any]]:
        def impl():
            return (yield from self.kernel.fs.stat(self._resolve(path)))
        return (yield from self._syscall("stat", impl()))

    def unlink(self, path: str) -> Generator[Effect, None, None]:
        def impl():
            yield from self.kernel.fs.remove(self._resolve(path))
        return (yield from self._syscall("unlink", impl()))

    def chdir(self, path: str) -> Generator[Effect, None, None]:
        def impl():
            yield from self.kernel.cpu.consume(self.params.kernel_call_cpu)
            self.pcb.cwd = self._resolve(path)
        return (yield from self._syscall("chdir", impl()))

    def dup(self, fd: int) -> Generator[Effect, None, int]:
        """Duplicate a descriptor: both fds share one stream (and
        therefore one offset), as in UNIX."""
        def impl():
            yield from self.kernel.cpu.consume(self.params.kernel_call_cpu)
            stream = self.pcb.stream(fd)
            stream.refcount += 1
            return self.pcb.new_fd(stream)
        return (yield from self._syscall("dup", impl()))

    def dup2(self, fd: int, new_fd: int) -> Generator[Effect, None, int]:
        """Duplicate ``fd`` onto ``new_fd`` (closing what was there)."""
        def impl():
            yield from self.kernel.cpu.consume(self.params.kernel_call_cpu)
            stream = self.pcb.stream(fd)
            old = self.pcb.streams.get(new_fd)
            if old is not None and old is not stream:
                yield from self.kernel.fs.close(old)
            stream.refcount += 1
            self.pcb.streams[new_fd] = stream
            self.pcb.next_fd = max(self.pcb.next_fd, new_fd + 1)
            return new_fd
        return (yield from self._syscall("dup", impl()))

    def getuid(self) -> Generator[Effect, None, int]:
        yield from self.kernel.cpu.consume(self.params.kernel_call_cpu)
        return self.pcb.uid

    def times(self) -> Generator[Effect, None, Dict[str, float]]:
        """Process times, consistent with the home clock (class HOME)."""
        def impl():
            elapsed = yield from self._classified("gettimeofday")
            return {
                "utime": self.pcb.cpu_time,
                "elapsed": elapsed - self.pcb.start_time,
            }
        return (yield from self._syscall("times", impl()))

    def pipe(self) -> Generator[Effect, None, Tuple[int, int]]:
        """Create a pipe; returns (read_fd, write_fd).  The buffer lives
        at the I/O server, so endpoints survive migration (ch. 3)."""
        def impl():
            read_stream, write_stream = yield from self.kernel.fs.make_pipe()
            return (self.pcb.new_fd(read_stream), self.pcb.new_fd(write_stream))
        return (yield from self._syscall("pipe", impl()))

    def pdev_request(
        self, fd: int, message: Any, size: int = 256, reply_size: int = 256
    ) -> Generator[Effect, None, Any]:
        def impl():
            return (
                yield from self.kernel.fs.pdev_request(
                    self.pcb.stream(fd), message, size=size, reply_size=reply_size,
                    timeout=None,
                )
            )
        return (yield from self._syscall("ioctl", impl()))

    def _resolve(self, path: str) -> str:
        if path.startswith("/"):
            return path
        base = self.pcb.cwd.rstrip("/")
        return f"{base}/{path}"

    # ------------------------------------------------------------------
    # Family: fork / exec / wait / exit / kill
    # ------------------------------------------------------------------
    def fork(
        self, program: Program, *args: Any, name: Optional[str] = None
    ) -> Generator[Effect, None, int]:
        """Fork a child running ``program`` (fork+function, as the model's
        stand-in for fork's address-space cloning)."""
        def impl():
            child_name = name or f"{self.pcb.name}-child"
            child = yield from self.kernel.fork_bookkeeping(self.pcb, child_name)
            for fd, stream in self.pcb.streams.items():
                stream.refcount += 1
                child.streams[fd] = stream
            child.next_fd = self.pcb.next_fd
            child_ctx = UserContext(child, self._kernels)
            child_ctx.start(program, args)
            return child.pid
        return (yield from self._syscall("fork", impl()))

    def exec(
        self,
        program: Program,
        *args: Any,
        name: Optional[str] = None,
        image_path: Optional[str] = None,
        image_size: int = 256 * KB,
        arg_bytes: int = 2 * KB,
        host: Optional[int] = None,
    ) -> Generator[Effect, None, None]:
        """Replace the process image, optionally on another host.

        ``host`` triggers *exec-time migration*: the cheapest migration
        in Sprite because the old address space is discarded rather than
        transferred (thesis §4.2.1) — only streams, the PCB, and the
        argument/environment bytes move.
        """
        pcb = self.pcb
        pcb.in_syscall += 1
        try:
            yield from self.kernel.cpu.consume(self.params.exec_cpu)
            if host is not None and host != pcb.current:
                manager = self.kernel.migration
                if manager is None:
                    raise NoSuchProcess("no migration support on this kernel")
                yield from manager.migrate_for_exec(pcb, host, arg_bytes=arg_bytes)
            # The old image is gone; the new one demand-pages from the FS.
            pcb.vm.size = image_size
            pcb.vm.resident = 0
            pcb.vm.dirty = 0
            if image_path is not None:
                yield from self._load_image(image_path, image_size)
        finally:
            pcb.in_syscall -= 1
        yield from self._checkpoint()
        raise _ExecImage(program, args, name or getattr(program, "__name__", None))

    def _load_image(self, image_path: str, image_size: int) -> Generator[Effect, None, None]:
        """Read the program text through the FS (client caches make
        repeated execs of the same binary cheap, as on real Sprite)."""
        fs = self.kernel.fs
        stream = yield from fs.open(image_path, OpenMode.READ)
        try:
            nbytes = stream.size or image_size
            yield from fs.read(stream, nbytes)
            self.pcb.vm.size = max(self.pcb.vm.size, nbytes)
        finally:
            yield from fs.close(stream)

    def wait(self) -> Generator[Effect, None, ExitStatus]:
        """Wait for any child to exit (executes at home, per Appendix A)."""
        def impl():
            kernel = self.kernel
            if not self.pcb.is_remote:
                return (yield from kernel.wait_local(self.pcb))
            kernel.calls_forwarded_home += 1
            return (
                yield from kernel.rpc.call(
                    self.pcb.home, "proc.wait", {"pid": self.pcb.pid}, timeout=None
                )
            )
        return (yield from self._syscall("wait", impl()))

    def wait_all(self) -> Generator[Effect, None, List[ExitStatus]]:
        """Convenience: wait for every live child."""
        statuses = []
        while self.pcb.children:
            status = yield from self.wait()
            statuses.append(status)
        return statuses

    def exit(self, code: int = 0) -> Generator[Effect, None, None]:
        yield from self.kernel.cpu.consume(self.params.kernel_call_cpu)
        raise ExitProcess(code)

    def kill(self, pid: int, signum: int = sig.SIGTERM) -> Generator[Effect, None, None]:
        def impl():
            yield from self.kernel.signal(pid, signum)
        return (yield from self._syscall("kill", impl()))

    def killpg(self, pgrp: int, signum: int = sig.SIGTERM) -> Generator[Effect, None, int]:
        """Signal a whole process group (executed at the home, which
        knows the membership; class HOME, like kill)."""
        def impl():
            kernel = self.kernel
            if not self.pcb.is_remote:
                return (yield from kernel.signal_group(pgrp, signum))
            kernel.calls_forwarded_home += 1
            return (
                yield from kernel.rpc.call(
                    self.pcb.home,
                    "proc.signal_group",
                    {"pgrp": pgrp, "sig": signum},
                )
            )
        return (yield from self._syscall("kill", impl()))

    def catch_signal(self, signum: int) -> None:
        """Register interest in a signal instead of dying from it."""
        self.pcb.caught_signals.add(signum)

    def signals_seen(self) -> List[int]:
        return list(self.pcb.signals_received)

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def migrate(self, target: int) -> Generator[Effect, None, None]:
        """Move this process to ``target`` (self-migration).

        Appendix A: the migrate call is forwarded home when remote,
        since migration is managed relative to the home machine.
        """
        pcb = self.pcb
        manager = self.kernel.migration
        if manager is None:
            raise NoSuchProcess("no migration support on this kernel")
        if pcb.is_remote:
            # Bookkeeping round trip to the home (cost model for the
            # forwarded initiation; the transfer itself is source->target).
            yield from self.kernel.forward_home(pcb, "gettimeofday")
        if target == pcb.current:
            return
        yield from manager.migrate_self(pcb, target)

    def ps(self, host: Optional[int] = None) -> Generator[Effect, None, List[Dict[str, Any]]]:
        """Process listing of the current (or a named) host."""
        def impl():
            if host is None or host == self.pcb.current:
                yield from self.kernel.cpu.consume(self.params.kernel_call_cpu)
                return self.kernel.ps()
            return (yield from self.kernel.rpc.call(host, "proc.ps", None))
        return (yield from self._syscall("ps", impl()))
