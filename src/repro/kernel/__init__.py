"""The per-host model kernel: processes, kernel calls, signals, hosts.

Programs are generator functions receiving a :class:`UserContext`;
kernels cooperate via RPC for everything the thesis routes through a
process's home machine (pid allocation, exits, waits, location-
dependent calls, signal routing).
"""

from . import signals
from .appendix_a import APPENDIX_A, classes_of
from .host import Host
from .kernel import (
    PID_STRIDE,
    NoSuchProcess,
    ProcessKilled,
    SpriteKernel,
    home_of_pid,
)
from .loadavg import LoadAverage
from .pcb import ExitStatus, MigrationTicket, Pcb, PendingInstall, ProcState, Vm
from .process import ExitProcess, Program, UserContext
from .syscalls import CALL_TABLE, CallClass, call_class, forward_all_table

__all__ = [
    "APPENDIX_A",
    "CALL_TABLE",
    "CallClass",
    "ExitProcess",
    "ExitStatus",
    "Host",
    "LoadAverage",
    "MigrationTicket",
    "NoSuchProcess",
    "PID_STRIDE",
    "Pcb",
    "PendingInstall",
    "ProcState",
    "ProcessKilled",
    "Program",
    "SpriteKernel",
    "UserContext",
    "Vm",
    "call_class",
    "classes_of",
    "forward_all_table",
    "home_of_pid",
    "signals",
]
