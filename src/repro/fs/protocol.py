"""Wire-level request/response records for the file protocol.

These are the payloads carried by ``fs.*`` RPCs between client kernels
and file servers.  Keeping them as explicit dataclasses documents the
protocol and keeps handlers honest about what crosses the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "OpenMode",
    "OpenRequest",
    "OpenResult",
    "CloseRequest",
    "IoRequest",
    "PayloadWrite",
    "StreamMove",
    "OffsetOp",
    "PdevRequest",
]


class OpenMode:
    """Open modes as bit flags (subset of Sprite's)."""

    READ = 0x1
    WRITE = 0x2
    CREATE = 0x4
    APPEND = 0x8
    READ_WRITE = READ | WRITE

    @staticmethod
    def readable(mode: int) -> bool:
        return bool(mode & OpenMode.READ)

    @staticmethod
    def writable(mode: int) -> bool:
        return bool(mode & (OpenMode.WRITE | OpenMode.APPEND))

    @staticmethod
    def describe(mode: int) -> str:
        bits = []
        if mode & OpenMode.READ:
            bits.append("r")
        if mode & OpenMode.WRITE:
            bits.append("w")
        if mode & OpenMode.CREATE:
            bits.append("c")
        if mode & OpenMode.APPEND:
            bits.append("a")
        return "".join(bits) or "-"


@dataclass
class OpenRequest:
    client: int          # LAN address of the opening kernel
    path: str
    mode: int
    pid: Optional[int] = None


@dataclass
class OpenResult:
    handle_id: int
    version: int
    size: int
    cacheable: bool
    is_pdev: bool = False
    pdev_host: int = -1
    pdev_id: int = -1


@dataclass
class CloseRequest:
    client: int
    handle_id: int
    mode: int
    new_size: Optional[int] = None
    #: Dirty bytes the client still holds under delayed write-back.
    dirty_bytes: int = 0
    #: Stream identity, so the server can drop any migrated-stream
    #: reference it tracked for this client (-1 = not stream-scoped).
    stream_id: int = -1


@dataclass
class IoRequest:
    client: int
    handle_id: int
    offset: int
    nbytes: int
    #: True when this is a delayed write-back rather than synchronous IO.
    writeback: bool = False


@dataclass
class PayloadWrite:
    client: int
    path: str
    payload: Any = None
    #: Merge function name for read-modify-write control files ("set" or
    #: "update"); "update" merges dict payloads key-wise.
    op: str = "set"


@dataclass
class StreamMove:
    handle_id: int
    stream_id: int
    from_client: int
    to_client: int
    offset: int
    mode: int
    #: True when other processes on the source host still share this
    #: stream (fork sharing) — the move then splits the stream across
    #: hosts and the server must take over the access position.
    source_keeps: bool = False


@dataclass
class OffsetOp:
    handle_id: int
    stream_id: int
    delta: int = 0
    set_to: Optional[int] = None


@dataclass
class PdevRequest:
    pdev_id: int
    connection_id: int
    message: Any = None
    size: int = 256
    extra: dict = field(default_factory=dict)
