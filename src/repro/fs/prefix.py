"""Sprite prefix tables: mapping path prefixes to file servers.

Sprite's single shared namespace is partitioned into domains, each
served by one file server; clients route operations by longest matching
prefix [Wel90].  The default cluster has one server owning ``/``, but
multi-server experiments split the tree (e.g. ``/src`` vs ``/tmp``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .errors import FileNotFound

__all__ = ["PrefixTable"]


class PrefixTable:
    """Longest-prefix routing of paths to server LAN addresses."""

    def __init__(self) -> None:
        self._entries: Dict[str, int] = {}

    def add(self, prefix: str, server: int) -> None:
        if not prefix.startswith("/"):
            raise ValueError(f"prefix must be absolute: {prefix!r}")
        self._entries[prefix.rstrip("/") or "/"] = server

    def route(self, path: str) -> int:
        """Server address owning ``path`` (longest matching prefix)."""
        if not path.startswith("/"):
            raise ValueError(f"path must be absolute: {path!r}")
        best: Tuple[int, int] = (-1, -1)  # (prefix length, server)
        for prefix, server in self._entries.items():
            if prefix == "/" or path == prefix or path.startswith(prefix + "/"):
                if len(prefix) > best[0]:
                    best = (len(prefix), server)
        if best[1] < 0:
            raise FileNotFound(f"no server exports a prefix of {path!r}")
        return best[1]

    def servers(self) -> List[int]:
        return sorted(set(self._entries.values()))

    def __len__(self) -> int:
        return len(self._entries)
