"""Backing files: paging a process's memory through the file system.

Sprite demand-pages processes from *backing files* on file servers
rather than local disks.  This is what makes the thesis's VM-transfer
design work: to migrate, the source simply flushes dirty pages to the
backing file and the target demand-pages from the server — no
host-to-host memory protocol is needed, and the source retains no
residual state.

Backing-file I/O deliberately bypasses the client block cache (caching
pages in the client's file cache would double-buffer memory), so costs
here are pure server RPC + wire + disk time.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..config import ClusterParams
from ..sim import Effect
from .client import FsClient
from .errors import BadStream
from .protocol import IoRequest, OpenMode, OpenRequest

__all__ = ["BackingFile"]


class BackingFile:
    """Paging storage for one process's address space."""

    def __init__(self, client: FsClient, path: str, params: Optional[ClusterParams] = None):
        self.client = client
        self.path = path
        self.params = params or client.params
        self.server = client.prefixes.route(path)
        self.handle_id: int = -1
        self.bytes_paged_out = 0
        self.bytes_paged_in = 0

    def create(self) -> Generator[Effect, None, "BackingFile"]:
        """Create (or reattach to) the backing file on its server."""
        result = yield from self.client.rpc.call(
            self.server,
            "fs.open",
            OpenRequest(
                client=self.client.node.address,
                path=self.path,
                mode=OpenMode.READ_WRITE | OpenMode.CREATE,
            ),
        )
        self.handle_id = result.handle_id
        return self

    def attach(self, handle_id: int) -> None:
        """Adopt an existing backing file (after migration)."""
        self.handle_id = handle_id

    # ------------------------------------------------------------------
    def page_out(self, nbytes: int) -> Generator[Effect, None, int]:
        """Write ``nbytes`` of dirty pages to the server (uncached)."""
        if nbytes <= 0:
            return 0
        self._require_open()
        yield from self.client.cpu.consume(
            self.params.page_handling_cpu * self.params.pages(nbytes)
        )
        yield from self.client.rpc.call(
            self.server,
            "fs.write",
            IoRequest(
                client=self.client.node.address,
                handle_id=self.handle_id,
                offset=0,
                nbytes=nbytes,
            ),
            size=nbytes,
            timeout=None,
        )
        self.bytes_paged_out += nbytes
        return nbytes

    def page_in(self, nbytes: int) -> Generator[Effect, None, int]:
        """Demand-page ``nbytes`` from the server (uncached)."""
        if nbytes <= 0:
            return 0
        self._require_open()
        yield from self.client.rpc.call(
            self.server,
            "fs.read",
            IoRequest(
                client=self.client.node.address,
                handle_id=self.handle_id,
                offset=0,
                nbytes=nbytes,
            ),
            reply_size=nbytes,
            timeout=None,
        )
        yield from self.client.cpu.consume(
            self.params.page_handling_cpu * self.params.pages(nbytes)
        )
        self.bytes_paged_in += nbytes
        return nbytes

    def remove(self) -> Generator[Effect, None, None]:
        """Delete the backing file (process exit)."""
        yield from self.client.remove(self.path)
        self.handle_id = -1

    def handoff(self, target_client: FsClient) -> "BackingFile":
        """Rebind this backing file to the target host's client.

        No data moves: the pages live on the server.  The new host only
        needs the name and handle.
        """
        successor = BackingFile(target_client, self.path, self.params)
        successor.handle_id = self.handle_id
        return successor

    def _require_open(self) -> None:
        if self.handle_id < 0:
            raise BadStream(f"backing file {self.path} not created/attached")
