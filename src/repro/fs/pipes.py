"""Pipes: file-like IPC channels with migration transparency (ch. 3/5).

Sprite implements interprocess communication through file-like objects
whose state lives at an I/O server, which is exactly why migration is
transparent to communicating processes: only the kernel knows where the
endpoints are, and the buffer doesn't move when a process does.

The model keeps each pipe's buffer and blocking state on the file
server that owns the pipe's name.  Readers block (server-side) until
bytes arrive; writers block while the buffer is full.  Either endpoint
can migrate mid-conversation — its next operation simply issues RPCs
from the new host.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Generator, Optional

from ..config import KB, ClusterParams
from ..net import Reply
from ..sim import Effect, SimEvent, Simulator
from .errors import BadStream, PipeBrokenError

__all__ = ["PipeService", "PIPE_BUFFER_BYTES"]

#: Classic 4.xBSD pipe buffer.
PIPE_BUFFER_BYTES = 4 * KB


@dataclass
class _PipeState:
    pipe_id: int
    buffered: int = 0
    capacity: int = PIPE_BUFFER_BYTES
    write_closed: bool = False
    read_closed: bool = False
    #: Reference counts per end — forked sharers split across hosts by
    #: migration each close independently; an end is really closed only
    #: when its last reference goes.
    read_refs: int = 1
    write_refs: int = 1
    #: Events for blocked server-side handlers.
    readable: Optional[SimEvent] = None
    writable: Optional[SimEvent] = None
    bytes_through: int = 0


class PipeService:
    """Server-side pipe manager; registers the ``pipe.*`` RPC services.

    Attach one to a file server host:  ``PipeService(server_host)``.
    Clients use the kernel interface (``proc.pipe()`` / read / write /
    close on the returned descriptors).
    """

    def __init__(self, sim: Simulator, rpc, cpu, params: Optional[ClusterParams] = None):
        self.sim = sim
        self.rpc = rpc
        self.cpu = cpu
        self.params = params or rpc.params
        self.pipes: Dict[int, _PipeState] = {}
        self._ids = itertools.count(1)
        rpc.register("pipe.create", self._rpc_create)
        rpc.register("pipe.read", self._rpc_read)
        rpc.register("pipe.write", self._rpc_write)
        rpc.register("pipe.close", self._rpc_close)
        rpc.register("pipe.addref", self._rpc_addref)

    # ------------------------------------------------------------------
    def _pipe(self, pipe_id: int) -> _PipeState:
        state = self.pipes.get(pipe_id)
        if state is None:
            raise BadStream(f"no pipe {pipe_id}")
        return state

    def _wake_readers(self, state: _PipeState) -> None:
        if state.readable is not None and not state.readable.fired:
            state.readable.trigger()
        state.readable = None

    def _wake_writers(self, state: _PipeState) -> None:
        if state.writable is not None and not state.writable.fired:
            state.writable.trigger()
        state.writable = None

    # ------------------------------------------------------------------
    def _rpc_create(self, _args) -> Generator[Effect, None, int]:
        yield from self.cpu.consume(self.params.kernel_call_cpu)
        pipe_id = next(self._ids)
        self.pipes[pipe_id] = _PipeState(pipe_id=pipe_id)
        return pipe_id

    def _rpc_read(self, args) -> Generator[Effect, None, Reply]:
        """Blocking read: waits server-side until bytes or writer EOF."""
        pipe_id, nbytes = args
        state = self._pipe(pipe_id)
        yield from self.cpu.consume(self.params.kernel_call_cpu)
        while state.buffered == 0:
            if state.write_closed:
                return Reply(result=0, size=1)      # EOF
            if state.readable is None:
                state.readable = SimEvent(self.sim, f"pipe{pipe_id}-readable")
            yield state.readable.wait()
        got = min(nbytes, state.buffered)
        state.buffered -= got
        self._wake_writers(state)
        return Reply(result=got, size=max(1, got))

    def _rpc_write(self, args) -> Generator[Effect, None, int]:
        """Blocking write: waits while the buffer is full."""
        pipe_id, nbytes = args
        state = self._pipe(pipe_id)
        yield from self.cpu.consume(self.params.kernel_call_cpu)
        written = 0
        while written < nbytes:
            if state.read_closed:
                raise PipeBrokenError(f"pipe {pipe_id}: read end closed")
            room = state.capacity - state.buffered
            if room <= 0:
                if state.writable is None:
                    state.writable = SimEvent(self.sim, f"pipe{pipe_id}-writable")
                yield state.writable.wait()
                continue
            chunk = min(room, nbytes - written)
            state.buffered += chunk
            state.bytes_through += chunk
            written += chunk
            self._wake_readers(state)
        return written

    def _rpc_addref(self, args) -> Generator[Effect, None, None]:
        """A stream reference split across hosts (fork + migration)."""
        pipe_id, end = args
        state = self._pipe(pipe_id)
        yield from self.cpu.consume(self.params.kernel_call_cpu)
        if end == "read":
            state.read_refs += 1
        else:
            state.write_refs += 1
        return None

    def _rpc_close(self, args) -> Generator[Effect, None, None]:
        pipe_id, end = args
        state = self.pipes.get(pipe_id)
        yield from self.cpu.consume(self.params.kernel_call_cpu)
        if state is None:
            return None
        if end == "read":
            state.read_refs -= 1
            if state.read_refs <= 0:
                state.read_closed = True
                self._wake_writers(state)
        else:
            state.write_refs -= 1
            if state.write_refs <= 0:
                state.write_closed = True
                self._wake_readers(state)
        if state.read_closed and state.write_closed:
            self.pipes.pop(pipe_id, None)
        return None
