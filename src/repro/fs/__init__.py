"""The Sprite network file system model.

Servers (:mod:`.server`) own domains of one shared namespace, routed by
prefix tables (:mod:`.prefix`).  Client kernels (:mod:`.client`) cache
blocks with delayed write-back (:mod:`.cache`), open files as streams
(:mod:`.streams`), reach user-level services through pseudo-devices
(:mod:`.pdev`), and page virtual memory through backing files
(:mod:`.paging`).  The consistency protocol and the stream-migration
protocol follow [NWO88] and [Wel90].
"""

from .cache import BlockCache, CacheBlock
from .client import FsClient
from .errors import (
    AccessError,
    BadStream,
    FileExists,
    FileNotFound,
    FsError,
    NotPseudoDevice,
    PipeBrokenError,
)
from .paging import BackingFile
from .pdev import IncomingRequest, PdevMaster, PdevRegistry
from .pipes import PIPE_BUFFER_BYTES, PipeService
from .prefix import PrefixTable
from .protocol import OpenMode
from .server import FileServer, ServerFile
from .streams import STREAM_ID_COUNTER, Stream

__all__ = [
    "AccessError",
    "BackingFile",
    "BadStream",
    "BlockCache",
    "CacheBlock",
    "FileExists",
    "FileNotFound",
    "FileServer",
    "FsClient",
    "FsError",
    "IncomingRequest",
    "NotPseudoDevice",
    "OpenMode",
    "PIPE_BUFFER_BYTES",
    "PdevMaster",
    "PdevRegistry",
    "PipeBrokenError",
    "PipeService",
    "PrefixTable",
    "STREAM_ID_COUNTER",
    "ServerFile",
    "Stream",
]
