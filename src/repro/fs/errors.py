"""File-system error types (mirroring Sprite/UNIX error returns)."""

from __future__ import annotations


class FsError(Exception):
    """Base class for file-system errors."""


class FileNotFound(FsError):
    """No such file or directory."""


class FileExists(FsError):
    """Exclusive create of an existing path."""


class BadStream(FsError):
    """Operation on a closed or invalid stream."""


class AccessError(FsError):
    """Operation not permitted by the stream's open mode."""


class NotPseudoDevice(FsError):
    """Pseudo-device operation on a regular file."""


class PipeBrokenError(BrokenPipeError, FsError):
    """Write on a pipe whose read end is closed.

    Also derives from the builtin ``BrokenPipeError`` so callers using
    UNIX-style handling keep working.
    """
