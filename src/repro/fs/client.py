"""The client half of the Sprite file system.

One :class:`FsClient` lives in each host kernel.  It routes operations
to file servers through the prefix table, keeps the host's block cache,
answers the server's consistency callbacks, runs the 30-second delayed
write-back daemon, and implements the stream export/import protocol the
migration mechanism uses to move open files between hosts.

All public operations are generator coroutines intended to be driven
from kernel or process tasks (``yield from client.read(stream, n)``).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..config import ClusterParams
from ..net import Lan, NetNode, RpcPort
from ..sim import Cpu, Effect, Simulator, Sleep, Tracer, spawn
from .cache import BlockCache, CacheBlock
from .errors import AccessError, BadStream
from .prefix import PrefixTable
from .protocol import (
    CloseRequest,
    IoRequest,
    OffsetOp,
    OpenMode,
    OpenRequest,
    PayloadWrite,
    PdevRequest,
    StreamMove,
)
from .streams import STREAM_ID_COUNTER, Stream

__all__ = ["FsClient"]


class FsClient:
    """Per-host file-system client."""

    def __init__(
        self,
        sim: Simulator,
        lan: Lan,
        node: NetNode,
        rpc: RpcPort,
        cpu: Cpu,
        prefixes: PrefixTable,
        params: Optional[ClusterParams] = None,
        tracer: Optional[Tracer] = None,
        start_writeback_daemon: bool = True,
    ):
        self.sim = sim
        self.lan = lan
        self.node = node
        self.rpc = rpc
        self.cpu = cpu
        self.prefixes = prefixes
        self.params = params or lan.params
        self.tracer = tracer if tracer is not None else lan.tracer
        self.cache = BlockCache(
            capacity_blocks=self.params.client_cache_blocks,
            block_size=self.params.fs_block_size,
        )
        #: handle_id -> server address, for streams this client holds.
        self._servers_by_handle: Dict[int, int] = {}
        #: path -> handle_id memo, so write-backs after close still know
        #: which server handle to address.
        self._path_handles: Dict[str, int] = {}
        #: stream_id -> open stream held by this client (for recovery).
        self.open_streams: Dict[int, Stream] = {}
        #: Cluster-wide stream-id allocator, shared by every client of
        #: this simulator through the run's state registry.
        self._stream_ids = sim.state.counter(STREAM_ID_COUNTER)
        self._register_callbacks()
        if start_writeback_daemon:
            spawn(
                sim,
                self._writeback_daemon,
                name=f"writeback:{node.name}",
                daemon=True,
            )

    # ------------------------------------------------------------------
    # Consistency callbacks from servers
    # ------------------------------------------------------------------
    def _register_callbacks(self) -> None:
        self.rpc.register("fsc.flush", self._cb_flush)
        self.rpc.register("fsc.invalidate", self._cb_invalidate)
        self.rpc.register("fsc.disable_cache", self._cb_disable_cache)

    def _cb_flush(self, args: Tuple[str, int]) -> Generator[Effect, None, int]:
        path, handle_id = args
        return (yield from self._flush_path(path, handle_id))

    def _cb_invalidate(self, args: Tuple[str, int]) -> Generator[Effect, None, int]:
        path, _handle_id = args
        yield from self.cpu.consume(self.params.kernel_call_cpu)
        return self.cache.drop_file(path)

    def _cb_disable_cache(self, args: Tuple[str, int]) -> Generator[Effect, None, int]:
        path, handle_id = args
        flushed = yield from self._flush_path(path, handle_id)
        self.cache.drop_file(path)
        return flushed

    def _flush_path(
        self, path: str, handle_id: Optional[int] = None
    ) -> Generator[Effect, None, int]:
        """Write every dirty block of ``path`` back to its server."""
        dirty = self.cache.take_dirty(path)
        if not dirty:
            return 0
        nbytes = len(dirty) * self.params.fs_block_size
        server = self.prefixes.route(path)
        if handle_id is None:
            handle_id = self._handle_for(path)
        yield from self.cpu.consume(self.params.client_block_cpu * len(dirty))
        yield from self.rpc.call(
            server,
            "fs.write",
            IoRequest(
                client=self.node.address,
                handle_id=handle_id,
                offset=dirty[0].index * self.params.fs_block_size,
                nbytes=nbytes,
                writeback=True,
            ),
            size=nbytes,
            timeout=None,
        )
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, f"fsc:{self.node.name}", "flush", path=path, bytes=nbytes
            )
        return nbytes

    def _handle_for(self, path: str) -> int:
        return self._path_handles.get(path, 0)

    # ------------------------------------------------------------------
    # Delayed write-back daemon
    # ------------------------------------------------------------------
    def _writeback_daemon(self) -> Generator[Effect, None, None]:
        period = self.params.writeback_period
        while True:
            yield Sleep(period)
            if not self.node.up:
                continue
            aged = self.cache.aged_dirty(self.sim.now, period)
            for path in sorted(aged):
                yield from self._flush_path(path)

    # ------------------------------------------------------------------
    # Public file API
    # ------------------------------------------------------------------
    def open(self, path: str, mode: int) -> Generator[Effect, None, Stream]:
        server = self.prefixes.route(path)
        result = yield from self.rpc.call(
            server,
            "fs.open",
            OpenRequest(client=self.node.address, path=path, mode=mode),
        )
        stream = Stream(
            path=path,
            mode=mode,
            handle_id=result.handle_id,
            server=server,
            version=result.version,
            size=result.size,
            cacheable=result.cacheable,
            is_pdev=result.is_pdev,
            pdev_host=result.pdev_host,
            pdev_id=result.pdev_id,
            stream_id=next(self._stream_ids),
        )
        self._servers_by_handle[result.handle_id] = server
        self._path_handles[path] = result.handle_id
        self.open_streams[stream.stream_id] = stream
        if stream.is_pdev:
            connection = yield from self.rpc.call(
                result.pdev_host, "pdev.connect", (result.pdev_id, self.node.address)
            )
            stream.pdev_connection = connection
        if mode & OpenMode.APPEND:
            stream.offset = stream.size
        elif OpenMode.writable(mode) and not OpenMode.readable(mode):
            # Plain write-open truncates (UNIX creat semantics).
            stream.size = 0
        return stream

    def close(self, stream: Stream) -> Generator[Effect, None, None]:
        if stream.closed:
            raise BadStream(f"double close of {stream.describe()}")
        stream.refcount -= 1
        if stream.refcount > 0:
            return
        stream.closed = True
        self.open_streams.pop(stream.stream_id, None)
        if stream.is_pipe:
            yield from self.rpc.call(
                stream.server, "pipe.close", (stream.pipe_id, stream.pipe_end)
            )
            return
        if stream.is_pdev:
            yield from self.rpc.call(
                stream.pdev_host,
                "pdev.disconnect",
                (stream.pdev_id, stream.pdev_connection),
            )
            return
        dirty = self.cache.dirty_bytes(stream.path)
        yield from self.rpc.call(
            stream.server,
            "fs.close",
            CloseRequest(
                client=self.node.address,
                handle_id=stream.handle_id,
                mode=stream.mode,
                new_size=stream.size if stream.writable else None,
                dirty_bytes=dirty,
                stream_id=stream.stream_id,
            ),
        )

    # --- pipes -----------------------------------------------------------
    def make_pipe(self) -> Generator[Effect, None, Tuple[Stream, Stream]]:
        """Create a pipe; returns its (read, write) streams.

        The buffer lives at the root file server (the pipe's I/O
        server), so both endpoints stay valid across migrations.
        """
        server = self.prefixes.route("/")
        pipe_id = yield from self.rpc.call(server, "pipe.create", None)
        read_stream = Stream(
            path=f"<pipe:{pipe_id}:r>", mode=OpenMode.READ, handle_id=0,
            server=server, cacheable=False,
            is_pipe=True, pipe_id=pipe_id, pipe_end="read",
            stream_id=next(self._stream_ids),
        )
        write_stream = Stream(
            path=f"<pipe:{pipe_id}:w>", mode=OpenMode.WRITE, handle_id=0,
            server=server, cacheable=False,
            is_pipe=True, pipe_id=pipe_id, pipe_end="write",
            stream_id=next(self._stream_ids),
        )
        self.open_streams[read_stream.stream_id] = read_stream
        self.open_streams[write_stream.stream_id] = write_stream
        return read_stream, write_stream

    def read(self, stream: Stream, nbytes: int) -> Generator[Effect, None, int]:
        """Read up to ``nbytes``; returns bytes actually read (0 at EOF)."""
        self._check(stream, want_read=True)
        if stream.is_pipe:
            return (
                yield from self.rpc.call(
                    stream.server, "pipe.read", (stream.pipe_id, nbytes),
                    reply_size=nbytes, timeout=None,
                )
            )
        offset = yield from self._advance_offset(stream, nbytes, peek_size=True)
        available = max(0, stream.size - offset)
        todo = min(nbytes, available)
        if todo <= 0:
            return 0
        if stream.cacheable:
            hit, miss = self.cache.lookup_range(
                stream.path, stream.version, offset, todo
            )
            yield from self.cpu.consume(self.params.client_block_cpu * max(1, hit))
            if miss:
                miss_bytes = miss * self.params.fs_block_size
                yield from self.rpc.call(
                    stream.server,
                    "fs.read",
                    IoRequest(
                        client=self.node.address,
                        handle_id=stream.handle_id,
                        offset=offset,
                        nbytes=miss_bytes,
                    ),
                    reply_size=miss_bytes,
                    timeout=None,
                )
                evicted = self.cache.install_range(
                    stream.path, stream.version, offset, todo,
                    dirty=False, now=self.sim.now,
                )
                yield from self._write_back_evicted(evicted)
        else:
            yield from self.rpc.call(
                stream.server,
                "fs.read",
                IoRequest(
                    client=self.node.address,
                    handle_id=stream.handle_id,
                    offset=offset,
                    nbytes=todo,
                ),
                reply_size=todo,
            )
        if not stream.shared:
            stream.offset = offset + todo
        return todo

    def write(self, stream: Stream, nbytes: int) -> Generator[Effect, None, int]:
        self._check(stream, want_write=True)
        if stream.is_pipe:
            return (
                yield from self.rpc.call(
                    stream.server, "pipe.write", (stream.pipe_id, nbytes),
                    size=nbytes, timeout=None,
                )
            )
        offset = yield from self._advance_offset(stream, nbytes)
        if stream.cacheable:
            nblocks = self.params.blocks(nbytes)
            yield from self.cpu.consume(self.params.client_block_cpu * max(1, nblocks))
            evicted = self.cache.install_range(
                stream.path, stream.version, offset, nbytes,
                dirty=True, now=self.sim.now,
            )
            stream.dirty_bytes += nbytes
            yield from self._write_back_evicted(evicted)
        else:
            yield from self.rpc.call(
                stream.server,
                "fs.write",
                IoRequest(
                    client=self.node.address,
                    handle_id=stream.handle_id,
                    offset=offset,
                    nbytes=nbytes,
                ),
                size=nbytes,
                timeout=None,
            )
        end = offset + nbytes
        if end > stream.size:
            stream.size = end
        if not stream.shared:
            stream.offset = end
        return nbytes

    def seek(self, stream: Stream, offset: int) -> Generator[Effect, None, int]:
        self._check(stream)
        if stream.shared:
            result = yield from self.rpc.call(
                stream.server,
                "fs.offset",
                OffsetOp(
                    handle_id=stream.handle_id,
                    stream_id=stream.stream_id,
                    set_to=offset,
                ),
            )
            return result
        yield from self.cpu.consume(self.params.kernel_call_cpu)
        stream.offset = offset
        return offset

    def remove(self, path: str) -> Generator[Effect, None, None]:
        server = self.prefixes.route(path)
        yield from self.rpc.call(server, "fs.remove", path)

    def stat(self, path: str) -> Generator[Effect, None, Dict[str, Any]]:
        server = self.prefixes.route(path)
        return (yield from self.rpc.call(server, "fs.stat", path))

    def flush(self, path: str) -> Generator[Effect, None, int]:
        """Synchronously write back this client's dirty blocks of ``path``."""
        return (yield from self._flush_path(path))

    # --- small control files (atomic payloads) -----------------------
    def payload_read(self, path: str) -> Generator[Effect, None, Any]:
        server = self.prefixes.route(path)
        return (yield from self.rpc.call(server, "fs.payload_read", path))

    def payload_write(
        self, path: str, payload: Any, op: str = "set"
    ) -> Generator[Effect, None, None]:
        server = self.prefixes.route(path)
        yield from self.rpc.call(
            server,
            "fs.payload_write",
            PayloadWrite(client=self.node.address, path=path, payload=payload, op=op),
        )

    # --- pseudo-devices -------------------------------------------------
    def pdev_request(
        self,
        stream: Stream,
        message: Any,
        size: int = 256,
        reply_size: int = 256,
        timeout: Optional[float] = None,
    ) -> Generator[Effect, None, Any]:
        """Send a request through a pdev stream and await the reply."""
        self._check(stream)
        if not stream.is_pdev:
            raise AccessError(f"{stream.path} is not a pseudo-device")
        return (
            yield from self.rpc.call(
                stream.pdev_host,
                "pdev.request",
                PdevRequest(
                    pdev_id=stream.pdev_id,
                    connection_id=stream.pdev_connection,
                    message=message,
                    size=size,
                ),
                size=size,
                reply_size=reply_size,
                timeout=timeout,
            )
        )

    # ------------------------------------------------------------------
    # Host crash (driven by repro.faults)
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """Drop all volatile client state: cached blocks (dirty ones are
        simply lost — delayed write-back trades exactly this much data
        for performance), open streams, and handle memos."""
        self.cache.drop_all()
        self.open_streams.clear()
        self._servers_by_handle.clear()
        self._path_handles.clear()

    # ------------------------------------------------------------------
    # Server-crash recovery (Sprite's stateful-server recovery [Wel90])
    # ------------------------------------------------------------------
    def recover(self, server: int) -> Generator[Effect, None, int]:
        """Rebuild a restarted server's state from our open streams.

        For every open stream on that server, re-assert the open (mode,
        caching registration, shared offset), then push our delayed-
        write dirty blocks so the server again knows who holds the
        freshest data.  Pipes are not recoverable: their buffers were
        volatile server state (readers see EOF).  Returns the number of
        streams re-opened.
        """
        reopened = 0
        for stream in sorted(
            self.open_streams.values(), key=lambda s: s.stream_id
        ):
            if stream.server != server or stream.is_pdev or stream.is_pipe:
                continue
            dirty = self.cache.dirty_bytes(stream.path)
            reply = yield from self.rpc.call(
                server,
                "fs.reopen",
                {
                    "client": self.node.address,
                    "path": stream.path,
                    "mode": stream.mode,
                    "size": stream.size,
                    "offset": stream.offset,
                    "stream_id": stream.stream_id,
                    "shared": stream.shared,
                    "caching": stream.cacheable,
                    "dirty_bytes": dirty,
                },
            )
            stream.handle_id = reply["handle_id"]
            self._path_handles[stream.path] = reply["handle_id"]
            reopened += 1
            if dirty:
                yield from self._flush_path(stream.path, stream.handle_id)
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, f"fsc:{self.node.name}", "recovered",
                server=server, streams=reopened,
            )
        return reopened

    # ------------------------------------------------------------------
    # Stream migration protocol (used by repro.migration)
    # ------------------------------------------------------------------
    def export_stream(
        self, stream: Stream, to_client: int
    ) -> Generator[Effect, None, Dict[str, Any]]:
        """Source side: flush and hand the stream to ``to_client``.

        Returns the state dictionary the target needs to install the
        stream.  The server is told about the move so it can detect
        cross-host sharing and claim the access position.
        """
        self._check(stream)
        yield from self.cpu.consume(self.params.stream_transfer_cpu)
        if stream.is_pdev or stream.is_pipe:
            # Server-resident endpoints: nothing to flush, nothing for
            # the I/O server to hand over — the buffer never moves.
            if stream.is_pipe and stream.refcount > 1:
                # Fork-shared endpoint splitting across hosts: both
                # sides will close independently, so the server must
                # count one more reference for this end.
                yield from self.rpc.call(
                    stream.server, "pipe.addref",
                    (stream.pipe_id, stream.pipe_end),
                )
            addref_sent = stream.is_pipe and stream.refcount > 1
            kept_sharers = stream.refcount > 1
            if kept_sharers:
                stream.refcount -= 1   # the migrating reference departs
            else:
                self.open_streams.pop(stream.stream_id, None)
            return {
                "stream": stream.clone_for_transfer(),
                "shared": False,
                "cacheable": False,
                "size": 0,
                "undo": {
                    "kind": "pipe" if stream.is_pipe else "pdev",
                    "addref_sent": addref_sent,
                    "refcount_decremented": kept_sharers,
                },
            }
        flushed = yield from self._flush_path(stream.path, stream.handle_id)
        info = yield from self.rpc.call(
            stream.server,
            "fs.stream_move",
            StreamMove(
                handle_id=stream.handle_id,
                stream_id=stream.stream_id,
                from_client=self.node.address,
                to_client=to_client,
                offset=stream.offset,
                mode=stream.mode,
                source_keeps=stream.refcount > 1,
            ),
            size=self.params.stream_transfer_bytes,
        )
        if info["shared"]:
            # Remaining local sharers must use the server's offset too,
            # and the departing reference no longer counts against them.
            stream.shared = True
            stream.refcount -= 1
        else:
            self.open_streams.pop(stream.stream_id, None)
        copy = stream.clone_for_transfer()
        copy.shared = info["shared"]
        copy.cacheable = info["cacheable"] and not info["shared"]
        copy.size = max(stream.size, info["size"])
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now,
                f"fsc:{self.node.name}",
                "stream-export",
                path=stream.path,
                to=to_client,
                flushed=flushed,
            )
        return {
            "stream": copy,
            "shared": info["shared"],
            "cacheable": copy.cacheable,
            "size": copy.size,
            "undo": {
                "kind": "file",
                "refcount_decremented": info["shared"],
            },
        }

    def undo_export(
        self, stream: Stream, state: Dict[str, Any], to_client: int
    ) -> Generator[Effect, None, None]:
        """Compensating action for :meth:`export_stream`: pull the
        reference back from ``to_client`` and restore local bookkeeping.

        The server RPC (the only part that can fail) runs first, so an
        aborting migration may safely re-invoke this under its
        retry/backoff loop — local state is only touched once the
        server agrees the reference is home again.
        """
        undo = state.get("undo", {})
        yield from self.cpu.consume(self.params.stream_transfer_cpu)
        if undo.get("kind") == "file":
            info = yield from self.rpc.call(
                stream.server,
                "fs.stream_move",
                StreamMove(
                    handle_id=stream.handle_id,
                    stream_id=stream.stream_id,
                    from_client=to_client,
                    to_client=self.node.address,
                    offset=stream.offset,
                    mode=stream.mode,
                    source_keeps=False,
                ),
                size=self.params.stream_transfer_bytes,
            )
            stream.shared = info["shared"]
        elif undo.get("kind") == "pipe" and undo.get("addref_sent"):
            # The extra endpoint reference granted for the move is
            # surplus again now that only this host holds the end.
            yield from self.rpc.call(
                stream.server, "pipe.close", (stream.pipe_id, stream.pipe_end)
            )
        if undo.get("refcount_decremented"):
            stream.refcount += 1
        self.reregister_stream(stream)
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now,
                f"fsc:{self.node.name}",
                "stream-export-undone",
                path=stream.path,
            )

    def reregister_stream(self, stream: Stream) -> None:
        """Restore the client-side records for a stream whose export was
        rolled back (idempotent)."""
        if not (stream.is_pipe or stream.is_pdev):
            self._servers_by_handle[stream.handle_id] = stream.server
            self._path_handles[stream.path] = stream.handle_id
        self.open_streams[stream.stream_id] = stream

    def forget_stream(self, stream: Stream) -> None:
        """Drop an imported stream copy without touching the server —
        used when the *source* has already pulled the reference back."""
        self.open_streams.pop(stream.stream_id, None)

    def release_imported(
        self, stream: Stream, close_refs: bool
    ) -> Generator[Effect, None, None]:
        """Dispose of a stream copy installed by :meth:`import_stream`
        for a migration that never committed.

        ``close_refs=True`` means the source is gone for good (crashed
        before it could pull references back): close the copy so the
        server's counts drain.  ``close_refs=False`` means the source
        is undoing its own export — only local records go.
        """
        if not close_refs:
            yield from self.cpu.consume(self.params.kernel_call_cpu)
            self.forget_stream(stream)
            return
        if stream.closed:
            return
        stream.refcount = 1
        yield from self.close(stream)

    def import_stream(self, state: Dict[str, Any]) -> Generator[Effect, None, Stream]:
        """Target side: install a stream exported by another client."""
        stream: Stream = state["stream"]
        yield from self.cpu.consume(self.params.stream_transfer_cpu)
        self._servers_by_handle[stream.handle_id] = stream.server
        self._path_handles[stream.path] = stream.handle_id
        self.open_streams[stream.stream_id] = stream
        return stream

    # ------------------------------------------------------------------
    def _advance_offset(
        self, stream: Stream, nbytes: int, peek_size: bool = False
    ) -> Generator[Effect, None, int]:
        """Return the operation's start offset, honouring shared offsets."""
        if not stream.shared:
            return stream.offset
        if peek_size:
            # Reads must not advance past EOF at the server: fetch, clip,
            # then add.  One extra RPC mirrors Sprite's shadow-stream cost.
            current = yield from self.rpc.call(
                stream.server,
                "fs.offset",
                OffsetOp(handle_id=stream.handle_id, stream_id=stream.stream_id),
            )
            todo = min(nbytes, max(0, stream.size - current))
            if todo > 0:
                yield from self.rpc.call(
                    stream.server,
                    "fs.offset",
                    OffsetOp(
                        handle_id=stream.handle_id,
                        stream_id=stream.stream_id,
                        delta=todo,
                    ),
                )
            return current
        new_offset = yield from self.rpc.call(
            stream.server,
            "fs.offset",
            OffsetOp(
                handle_id=stream.handle_id,
                stream_id=stream.stream_id,
                delta=nbytes,
            ),
        )
        return new_offset - nbytes

    def _write_back_evicted(
        self, evicted: List[CacheBlock]
    ) -> Generator[Effect, None, None]:
        if not evicted:
            return
        by_path: Dict[str, List[CacheBlock]] = {}
        for block in evicted:
            by_path.setdefault(block.path, []).append(block)
        for path, blocks in sorted(by_path.items()):
            nbytes = len(blocks) * self.params.fs_block_size
            server = self.prefixes.route(path)
            yield from self.rpc.call(
                server,
                "fs.write",
                IoRequest(
                    client=self.node.address,
                    handle_id=self._path_handles.get(path, 0),
                    offset=blocks[0].index * self.params.fs_block_size,
                    nbytes=nbytes,
                    writeback=True,
                ),
                size=nbytes,
            )

    def _check(
        self, stream: Stream, want_read: bool = False, want_write: bool = False
    ) -> None:
        if stream.closed:
            raise BadStream(f"operation on closed stream {stream.describe()}")
        if want_read and not stream.readable:
            raise AccessError(f"stream not open for reading: {stream.describe()}")
        if want_write and not stream.writable:
            raise AccessError(f"stream not open for writing: {stream.describe()}")
