"""Client block cache with delayed write-back.

Sprite clients cache file blocks in main memory and write dirty blocks
back ~30 seconds after they are written [NWO88].  The cache tracks
(path, block) entries tagged with the file version; stale versions are
dropped at open time.  Eviction is LRU; evicting a dirty block forces a
write-back, which the owner (FsClient) performs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["BlockCache", "CacheBlock"]

BlockKey = Tuple[str, int]  # (path, block index)


@dataclass
class CacheBlock:
    path: str
    index: int
    version: int
    dirty: bool = False
    dirty_since: float = 0.0


class BlockCache:
    """An LRU cache of file blocks for one client kernel."""

    def __init__(self, capacity_blocks: int, block_size: int):
        if capacity_blocks < 1:
            raise ValueError("cache needs at least one block")
        self.capacity = capacity_blocks
        self.block_size = block_size
        self._blocks: "OrderedDict[BlockKey, CacheBlock]" = OrderedDict()
        # Metrics.
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def dirty_blocks(self, path: Optional[str] = None) -> List[CacheBlock]:
        return [
            b
            for b in self._blocks.values()
            if b.dirty and (path is None or b.path == path)
        ]

    def dirty_bytes(self, path: Optional[str] = None) -> int:
        return len(self.dirty_blocks(path)) * self.block_size

    # ------------------------------------------------------------------
    def lookup_range(
        self, path: str, version: int, offset: int, nbytes: int
    ) -> Tuple[int, int]:
        """Count cache hits/misses over a byte range.

        Returns ``(hit_blocks, miss_blocks)`` and touches hit blocks for
        LRU recency.  Blocks cached under an older version count as
        misses (they will be overwritten on install).
        """
        first = offset // self.block_size
        last = (offset + max(nbytes, 1) - 1) // self.block_size
        hit = 0
        miss = 0
        for index in range(first, last + 1):
            block = self._blocks.get((path, index))
            if block is not None and block.version == version:
                self._blocks.move_to_end((path, index))
                hit += 1
            else:
                miss += 1
        self.hits += hit
        self.misses += miss
        return hit, miss

    def install_range(
        self,
        path: str,
        version: int,
        offset: int,
        nbytes: int,
        dirty: bool,
        now: float,
    ) -> List[CacheBlock]:
        """Insert (or overwrite) the blocks covering a byte range.

        Returns dirty blocks evicted to make room — the caller must
        write those back to their server.
        """
        first = offset // self.block_size
        last = (offset + max(nbytes, 1) - 1) // self.block_size
        evicted: List[CacheBlock] = []
        for index in range(first, last + 1):
            key = (path, index)
            block = self._blocks.get(key)
            if block is None:
                block = CacheBlock(path=path, index=index, version=version)
                self._blocks[key] = block
            else:
                block.version = version
                self._blocks.move_to_end(key)
            if dirty:
                if not block.dirty:
                    block.dirty_since = now
                block.dirty = True
        while len(self._blocks) > self.capacity:
            _key, victim = self._blocks.popitem(last=False)
            if victim.dirty:
                evicted.append(victim)
        return evicted

    # ------------------------------------------------------------------
    def clean(self, blocks: Iterable[CacheBlock]) -> None:
        """Mark blocks clean after a successful write-back."""
        for block in blocks:
            block.dirty = False

    def drop_file(self, path: str) -> int:
        """Remove every block of ``path`` (after invalidate); returns count."""
        keys = [k for k in self._blocks if k[0] == path]
        for key in keys:
            del self._blocks[key]
        return len(keys)

    def drop_all(self) -> int:
        """Discard everything, dirty blocks included (host crash)."""
        count = len(self._blocks)
        self._blocks.clear()
        return count

    def take_dirty(self, path: str) -> List[CacheBlock]:
        """Return and clean all dirty blocks of ``path`` (flush)."""
        dirty = self.dirty_blocks(path)
        self.clean(dirty)
        return dirty

    def aged_dirty(self, now: float, max_age: float) -> Dict[str, List[CacheBlock]]:
        """Dirty blocks older than ``max_age``, grouped by path."""
        by_path: Dict[str, List[CacheBlock]] = {}
        for block in self._blocks.values():
            if block.dirty and now - block.dirty_since >= max_age:
                by_path.setdefault(block.path, []).append(block)
        return by_path

    def cached_paths(self) -> List[str]:
        return sorted({path for path, _ in self._blocks})
