"""Pseudo-devices: user-level services behind file names [WO88].

A pseudo-device is a file whose I/O is served by an ordinary user
process (the *master*).  Clients open the name like any file and issue
request/response operations; the kernel routes them to the master's
host.  Because only the operating system knows where the endpoints are,
a *client* of a pseudo-device can migrate freely — its requests simply
originate from the new host.  This is how Sprite's Internet protocol
server [Che87] and the migration daemon's host-selection protocol work.

Host side: one :class:`PdevRegistry` per host demultiplexes the
``pdev.*`` RPC services to the masters living there.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional

from ..config import ClusterParams
from ..net import Reply, RpcPort
from ..sim import Channel, Cpu, Effect, SimEvent, Simulator
from .errors import NotPseudoDevice
from .protocol import PdevRequest

__all__ = ["PdevRegistry", "PdevMaster", "IncomingRequest"]


@dataclass
class IncomingRequest:
    """One client request as seen by the master process."""

    connection_id: int
    client_host: int
    message: Any
    _reply: SimEvent = field(repr=False, default=None)  # type: ignore[assignment]

    def respond(self, value: Any, size: int = 256) -> None:
        """Complete the request; the kernel ships ``value`` back."""
        self._reply.trigger(Reply(result=value, size=size))

    def fail(self, exc: Exception) -> None:
        self._reply.fail(exc)


class PdevMaster:
    """The master (server) end of one pseudo-device."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.pdev_id: int = -1
        self.host: int = -1
        #: Master processes consume requests from here.
        self.requests = Channel(sim, name=f"pdev:{name}")
        self.connections: Dict[int, int] = {}  # conn_id -> client host
        self._conn_ids = itertools.count(1)
        self.requests_served = 0

    def next_request(self) -> Effect:
        """Effect yielding the next :class:`IncomingRequest`."""
        return self.requests.get()


class PdevRegistry:
    """Per-host demultiplexer for pseudo-device RPCs."""

    def __init__(
        self,
        sim: Simulator,
        rpc: RpcPort,
        cpu: Cpu,
        params: Optional[ClusterParams] = None,
    ):
        self.sim = sim
        self.rpc = rpc
        self.cpu = cpu
        self.params = params or rpc.params
        self.masters: Dict[int, PdevMaster] = {}
        self._ids = itertools.count(1)
        rpc.register("pdev.connect", self._rpc_connect)
        rpc.register("pdev.disconnect", self._rpc_disconnect)
        rpc.register("pdev.request", self._rpc_request)

    def attach(self, master: PdevMaster) -> int:
        """Give a master a local id; returns the id used on the wire."""
        master.pdev_id = next(self._ids)
        master.host = self.rpc.node.address
        self.masters[master.pdev_id] = master
        return master.pdev_id

    def detach(self, master: PdevMaster) -> None:
        self.masters.pop(master.pdev_id, None)
        master.requests.close()

    def _master(self, pdev_id: int) -> PdevMaster:
        master = self.masters.get(pdev_id)
        if master is None:
            raise NotPseudoDevice(f"no pdev {pdev_id} on host {self.rpc.node.name}")
        return master

    # ------------------------------------------------------------------
    def _rpc_connect(self, args: Any) -> Generator[Effect, None, int]:
        pdev_id, client_host = args
        master = self._master(pdev_id)
        yield from self.cpu.consume(self.params.kernel_call_cpu)
        conn_id = next(master._conn_ids)
        master.connections[conn_id] = client_host
        return conn_id

    def _rpc_disconnect(self, args: Any) -> Generator[Effect, None, None]:
        pdev_id, conn_id = args
        master = self.masters.get(pdev_id)
        yield from self.cpu.consume(self.params.kernel_call_cpu)
        if master is not None:
            master.connections.pop(conn_id, None)
        return None

    def _rpc_request(self, request: PdevRequest) -> Generator[Effect, None, Reply]:
        """Queue the request for the master and wait for its response."""
        master = self._master(request.pdev_id)
        reply_event = SimEvent(self.sim, name=f"pdev-reply:{master.name}")
        incoming = IncomingRequest(
            connection_id=request.connection_id,
            client_host=master.connections.get(request.connection_id, -1),
            message=request.message,
            _reply=reply_event,
        )
        yield master.requests.put(incoming)
        master.requests_served += 1
        reply = yield reply_event.wait()
        return reply
