"""Client-side stream objects (open-file descriptors).

A :class:`Stream` is the per-open state a Sprite kernel keeps: the path,
mode, access position, cacheability, and a reference to the server-side
I/O handle.  Forked children share the parent's stream (and therefore
its offset), exactly as in UNIX; when migration splits the sharers of
one stream across hosts, the offset moves to the I/O server and
``shared`` flips on [Wel90].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .protocol import OpenMode

__all__ = ["Stream", "STREAM_ID_COUNTER"]

#: Name of the per-cluster stream-id allocator in ``sim.state``.
#: Stream ids are only meaningful within one cluster; allocating them
#: from the run's :class:`~repro.sim.StateRegistry` (rather than a
#: module-level counter, as before PR 6) means a fixed seed yields
#: identical ids no matter how many clusters the process built, and a
#: snapshot carries the allocator along with everything else.
STREAM_ID_COUNTER = "fs.stream_ids"


@dataclass
class Stream:
    """One open stream on one client kernel."""

    path: str
    mode: int
    handle_id: int
    server: int                       # LAN address of the I/O server
    version: int = 1
    size: int = 0                     # client's view of the file size
    offset: int = 0                   # local access position (if not shared)
    cacheable: bool = True
    #: When True the access position lives at the I/O server.
    shared: bool = False
    #: Processes on this host referencing the stream (fork sharing).
    refcount: int = 1
    closed: bool = False
    is_pdev: bool = False
    pdev_host: int = -1
    pdev_id: int = -1
    pdev_connection: int = -1
    #: Pipe endpoints: buffer lives at the I/O server, so either end can
    #: migrate without the other noticing.
    is_pipe: bool = False
    pipe_id: int = -1
    pipe_end: str = ""              # "read" or "write"
    #: Cluster-unique id, allocated by the creating FsClient from
    #: ``sim.state.counter(STREAM_ID_COUNTER)``.
    stream_id: int = -1
    #: Bytes written through this stream that are still delayed-write
    #: dirty (approximate; used for close bookkeeping).
    dirty_bytes: int = 0

    @property
    def readable(self) -> bool:
        return OpenMode.readable(self.mode)

    @property
    def writable(self) -> bool:
        return OpenMode.writable(self.mode)

    def describe(self) -> str:
        kind = "pdev" if self.is_pdev else "file"
        return (
            f"<Stream {self.stream_id} {kind} {self.path} "
            f"mode={OpenMode.describe(self.mode)} offset={self.offset} "
            f"{'shared' if self.shared else 'local'}>"
        )

    def clone_for_transfer(self, offset: Optional[int] = None) -> "Stream":
        """A copy carrying the same identity, installed on a new host."""
        copy = Stream(
            path=self.path,
            mode=self.mode,
            handle_id=self.handle_id,
            server=self.server,
            version=self.version,
            size=self.size,
            offset=self.offset if offset is None else offset,
            cacheable=self.cacheable,
            shared=self.shared,
            refcount=1,
            is_pdev=self.is_pdev,
            pdev_host=self.pdev_host,
            pdev_id=self.pdev_id,
            pdev_connection=self.pdev_connection,
            is_pipe=self.is_pipe,
            pipe_id=self.pipe_id,
            pipe_end=self.pipe_end,
        )
        copy.stream_id = self.stream_id
        return copy
