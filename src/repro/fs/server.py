"""The Sprite file server.

One server owns a domain of the shared namespace and is the central
point for cache consistency [NWO88] and stream state [Wel90]:

* It tracks which client kernels cache each file and which client last
  wrote it (delayed write-back means the freshest data may live in a
  client cache, not on the server).
* On an open it decides cacheability: concurrent write sharing disables
  client caching for everyone; sequential write sharing triggers a
  flush callback to the last writer.
* It stores I/O handles (per-file reference state) and, for streams
  shared across hosts after fork+migration, the authoritative access
  position (the "shadow stream").

Everything here runs as RPC handlers on the server host, charging the
server's CPU — which is exactly how file-server contention becomes the
limiting factor in the thesis's parallel-make experiments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional, Set

from ..config import ClusterParams
from ..sim import Cpu, Effect, Resource, Simulator, Tracer
from ..net import Lan, NetNode, Reply, RpcPort
from .errors import FileNotFound
from .protocol import (
    CloseRequest,
    IoRequest,
    OffsetOp,
    OpenMode,
    OpenRequest,
    OpenResult,
    PayloadWrite,
    StreamMove,
)

__all__ = ["FileServer", "ServerFile"]


@dataclass
class ServerFile:
    """Server-side state for one file (the I/O handle of [Wel90])."""

    path: str
    handle_id: int
    size: int = 0
    version: int = 1
    payload: Any = None
    is_pdev: bool = False
    pdev_host: int = -1
    pdev_id: int = -1
    #: Clients with the file open, by mode.
    open_readers: Dict[int, int] = field(default_factory=dict)
    open_writers: Dict[int, int] = field(default_factory=dict)
    #: Clients that may hold cached blocks of this file.
    caching_clients: Set[int] = field(default_factory=set)
    #: Client whose cache holds newer data than the server (delayed write).
    last_writer: Optional[int] = None
    #: False once concurrent write sharing has disabled caching.
    cacheable: bool = True
    #: Authoritative offsets for cross-host shared streams.
    shared_offsets: Dict[int, int] = field(default_factory=dict)
    #: Which clients reference each migrated stream (refcounts).
    stream_refs: Dict[int, Dict[int, int]] = field(default_factory=dict)

    def open_count(self, client: Optional[int] = None) -> int:
        if client is None:
            return sum(self.open_readers.values()) + sum(self.open_writers.values())
        return self.open_readers.get(client, 0) + self.open_writers.get(client, 0)

    def writer_clients(self) -> Set[int]:
        return set(self.open_writers)

    def user_clients(self) -> Set[int]:
        return set(self.open_readers) | set(self.open_writers)


def _bump(table: Dict[int, int], key: int, delta: int) -> None:
    value = table.get(key, 0) + delta
    if value <= 0:
        table.pop(key, None)
    else:
        table[key] = value


class FileServer:
    """A file server bound to one LAN node."""

    def __init__(
        self,
        sim: Simulator,
        lan: Lan,
        node: NetNode,
        rpc: RpcPort,
        cpu: Cpu,
        params: Optional[ClusterParams] = None,
        tracer: Optional[Tracer] = None,
        name: str = "fileserver",
    ):
        self.sim = sim
        self.lan = lan
        self.node = node
        self.rpc = rpc
        self.cpu = cpu
        self.params = params or lan.params
        self.tracer = tracer if tracer is not None else lan.tracer
        self.name = name
        self.files: Dict[str, ServerFile] = {}
        self._handles: Dict[int, ServerFile] = {}
        self._handle_ids = itertools.count(1)
        self.disk = Resource(sim, capacity=1, name=f"{name}.disk")
        self._disk_rng = None  # lazily seeded below
        # Metrics the benchmarks read.
        self.lookups = 0
        self.opens = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.consistency_callbacks = 0
        #: Bumped at each crash; clients compare to detect restarts.
        self.epoch = 0
        self.reopens = 0
        self._register_services()

    # ------------------------------------------------------------------
    def _register_services(self) -> None:
        self.rpc.register("fs.open", self._rpc_open)
        self.rpc.register("fs.close", self._rpc_close)
        self.rpc.register("fs.read", self._rpc_read)
        self.rpc.register("fs.write", self._rpc_write)
        self.rpc.register("fs.remove", self._rpc_remove)
        self.rpc.register("fs.stat", self._rpc_stat)
        self.rpc.register("fs.payload_read", self._rpc_payload_read)
        self.rpc.register("fs.payload_write", self._rpc_payload_write)
        self.rpc.register("fs.stream_move", self._rpc_stream_move)
        self.rpc.register("fs.offset", self._rpc_offset)
        self.rpc.register("fs.register_pdev", self._rpc_register_pdev)
        self.rpc.register("fs.reopen", self._rpc_reopen)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _lookup(self, path: str) -> Generator[Effect, None, ServerFile]:
        """Charge a name lookup and return the file or raise."""
        self.lookups += 1
        yield from self.cpu.consume(self.params.fs_name_lookup_cpu)
        entry = self.files.get(path)
        if entry is None:
            raise FileNotFound(path)
        return entry

    def _create_entry(self, path: str) -> ServerFile:
        handle_id = next(self._handle_ids)
        entry = ServerFile(path=path, handle_id=handle_id)
        self.files[path] = entry
        self._handles[handle_id] = entry
        return entry

    def _by_handle(self, handle_id: int) -> ServerFile:
        entry = self._handles.get(handle_id)
        if entry is None:
            raise FileNotFound(f"stale handle {handle_id}")
        return entry

    def _disk_read(self, nbytes: int) -> Generator[Effect, None, None]:
        """Charge a disk read for the fraction missing the server cache."""
        if self._disk_rng is None:
            import numpy as np

            self._disk_rng = np.random.default_rng(self.params.seed ^ 0xD15C)
        if self._disk_rng.random() < self.params.server_cache_hit_rate:
            return
        duration = self.params.disk_latency + nbytes / self.params.disk_bandwidth
        yield from self.disk.hold(duration)

    def _callback(
        self, client: int, service: str, args: Any
    ) -> Generator[Effect, None, Any]:
        """Cache-consistency callback RPC to a client kernel."""
        self.consistency_callbacks += 1
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, self.name, "callback", client=client, service=service
            )
        return (yield from self.rpc.call(client, service, args))

    # ------------------------------------------------------------------
    # Consistency on open [NWO88]
    # ------------------------------------------------------------------
    def _prepare_open(
        self, entry: ServerFile, request: OpenRequest
    ) -> Generator[Effect, None, bool]:
        """Run consistency actions; return cacheability for this client."""
        client = request.client
        writing = OpenMode.writable(request.mode)

        # Fetch fresh data if the last writer's cache is ahead of us.
        if entry.last_writer is not None and entry.last_writer != client:
            yield from self._callback(
                entry.last_writer, "fsc.flush", (entry.path, entry.handle_id)
            )
            entry.last_writer = None

        if writing:
            entry.version += 1
            others = entry.user_clients() - {client}
            if others:
                # Concurrent write sharing: disable caching everywhere.
                entry.cacheable = False
                for other in sorted(others | entry.caching_clients - {client}):
                    yield from self._callback(
                        other, "fsc.disable_cache", (entry.path, entry.handle_id)
                    )
                entry.caching_clients.clear()
            else:
                # Sole user: invalidate stale remote caches, allow caching.
                for other in sorted(entry.caching_clients - {client}):
                    yield from self._callback(
                        other, "fsc.invalidate", (entry.path, entry.handle_id)
                    )
                    entry.caching_clients.discard(other)
                entry.cacheable = True
        else:
            if entry.writer_clients() - {client}:
                # Someone else is writing: this reader must not cache.
                entry.cacheable = False
        return entry.cacheable

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------
    def _rpc_open(self, request: OpenRequest) -> Generator[Effect, None, OpenResult]:
        self.opens += 1
        if request.mode & OpenMode.CREATE and request.path not in self.files:
            yield from self.cpu.consume(self.params.fs_name_lookup_cpu)
            self.lookups += 1
            entry = self._create_entry(request.path)
        else:
            entry = yield from self._lookup(request.path)
        if entry.is_pdev:
            # Pseudo-device: the client talks to the master host directly.
            _bump(entry.open_readers, request.client, 1)
            return OpenResult(
                handle_id=entry.handle_id,
                version=entry.version,
                size=0,
                cacheable=False,
                is_pdev=True,
                pdev_host=entry.pdev_host,
                pdev_id=entry.pdev_id,
            )
        cacheable = yield from self._prepare_open(entry, request)
        if OpenMode.writable(request.mode):
            _bump(entry.open_writers, request.client, 1)
            if request.mode & OpenMode.WRITE and not request.mode & OpenMode.APPEND:
                pass  # truncation is modelled by the client's new_size at close
        if OpenMode.readable(request.mode) or not OpenMode.writable(request.mode):
            _bump(entry.open_readers, request.client, 1)
        if cacheable:
            entry.caching_clients.add(request.client)
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now,
                self.name,
                "open",
                path=entry.path,
                client=request.client,
                mode=OpenMode.describe(request.mode),
                cacheable=cacheable,
            )
        return OpenResult(
            handle_id=entry.handle_id,
            version=entry.version,
            size=entry.size,
            cacheable=cacheable,
        )

    def _rpc_close(self, request: CloseRequest) -> Generator[Effect, None, None]:
        entry = self._by_handle(request.handle_id)
        yield from self.cpu.consume(self.params.kernel_call_cpu)
        client = request.client
        if OpenMode.writable(request.mode):
            _bump(entry.open_writers, client, -1)
            if request.new_size is not None:
                entry.size = request.new_size
            if request.dirty_bytes > 0:
                entry.last_writer = client
        if OpenMode.readable(request.mode) or not OpenMode.writable(request.mode):
            _bump(entry.open_readers, client, -1)
        if request.stream_id >= 0:
            # The last local reference to a migrated stream is gone:
            # drop whatever reference count the moves accumulated for
            # this client (a pop, not a decrement, so a retried reverse
            # move that double-counted self-heals here).
            refs = entry.stream_refs.get(request.stream_id)
            if refs is not None:
                refs.pop(client, None)
                if not refs:
                    entry.stream_refs.pop(request.stream_id, None)
        # When write sharing ends, future opens may cache again.
        if not entry.open_writers:
            entry.cacheable = True
        return None

    def _rpc_read(self, request: IoRequest) -> Generator[Effect, None, Reply]:
        entry = self._by_handle(request.handle_id)
        nblocks = self.params.blocks(request.nbytes)
        yield from self.cpu.consume(self.params.fs_block_cpu * max(1, nblocks))
        yield from self._disk_read(request.nbytes)
        self.bytes_read += request.nbytes
        return Reply(result=request.nbytes, size=max(1, request.nbytes))

    def _rpc_write(self, request: IoRequest) -> Generator[Effect, None, int]:
        entry = self._by_handle(request.handle_id)
        nblocks = self.params.blocks(request.nbytes)
        yield from self.cpu.consume(self.params.fs_block_cpu * max(1, nblocks))
        self.bytes_written += request.nbytes
        end = request.offset + request.nbytes
        if end > entry.size:
            entry.size = end
        if request.writeback and entry.last_writer == request.client:
            entry.last_writer = None
        return request.nbytes

    def _rpc_remove(self, path: str) -> Generator[Effect, None, None]:
        entry = yield from self._lookup(path)
        for other in sorted(entry.caching_clients):
            yield from self._callback(other, "fsc.invalidate", (path, entry.handle_id))
        self.files.pop(path, None)
        self._handles.pop(entry.handle_id, None)
        return None

    def _rpc_stat(self, path: str) -> Generator[Effect, None, Dict[str, Any]]:
        entry = yield from self._lookup(path)
        return {
            "size": entry.size,
            "version": entry.version,
            "is_pdev": entry.is_pdev,
            "open_count": entry.open_count(),
        }

    def _rpc_payload_read(self, path: str) -> Generator[Effect, None, Any]:
        entry = yield from self._lookup(path)
        yield from self.cpu.consume(self.params.fs_block_cpu)
        return entry.payload

    def _rpc_payload_write(self, request: PayloadWrite) -> Generator[Effect, None, None]:
        entry = self.files.get(request.path)
        if entry is None:
            entry = self._create_entry(request.path)
        yield from self.cpu.consume(self.params.fs_block_cpu)
        if request.op == "update":
            if entry.payload is None:
                entry.payload = {}
            entry.payload.update(request.payload)
        else:
            entry.payload = request.payload
        entry.version += 1
        return None

    # ------------------------------------------------------------------
    # Stream migration support (thesis ch. 5)
    # ------------------------------------------------------------------
    def _rpc_stream_move(self, request: StreamMove) -> Generator[Effect, None, Dict[str, Any]]:
        """Move one stream reference between clients.

        Called by the source kernel during migration, after it has
        flushed its dirty blocks.  The server updates which client
        holds the stream; if the stream becomes shared between hosts
        (fork + migration), the server takes over the access position.
        """
        entry = self._by_handle(request.handle_id)
        yield from self.cpu.consume(self.params.stream_transfer_cpu)
        refs = entry.stream_refs.setdefault(request.stream_id, {})
        if request.source_keeps:
            refs[request.from_client] = max(1, refs.get(request.from_client, 0))
        elif refs.get(request.from_client, 0) > 0:
            _bump(refs, request.from_client, -1)
        _bump(refs, request.to_client, 1)
        # Transfer open-mode bookkeeping between clients.
        if OpenMode.writable(request.mode):
            _bump(entry.open_writers, request.from_client, -1)
            _bump(entry.open_writers, request.to_client, 1)
        if OpenMode.readable(request.mode) or not OpenMode.writable(request.mode):
            _bump(entry.open_readers, request.from_client, -1)
            _bump(entry.open_readers, request.to_client, 1)
        shared = len(refs) > 1
        if shared:
            entry.shared_offsets.setdefault(request.stream_id, request.offset)
            # Cross-host sharing of one stream: offset lives here now, and
            # concurrent writers force caching off.
            if OpenMode.writable(request.mode):
                entry.cacheable = False
                for other in sorted(entry.caching_clients):
                    yield from self._callback(
                        other, "fsc.disable_cache", (entry.path, entry.handle_id)
                    )
                entry.caching_clients.clear()
        cacheable = entry.cacheable
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now,
                self.name,
                "stream-move",
                path=entry.path,
                stream=request.stream_id,
                src=request.from_client,
                dst=request.to_client,
                shared=shared,
            )
        return {"shared": shared, "cacheable": cacheable, "size": entry.size}

    def _rpc_offset(self, request: OffsetOp) -> Generator[Effect, None, int]:
        """Read-modify-write the shared access position of a stream."""
        entry = self._by_handle(request.handle_id)
        yield from self.cpu.consume(self.params.kernel_call_cpu)
        current = entry.shared_offsets.get(request.stream_id, 0)
        if request.set_to is not None:
            current = request.set_to
        else:
            current += request.delta
        entry.shared_offsets[request.stream_id] = current
        return current

    # ------------------------------------------------------------------
    # Pseudo-devices [WO88]
    # ------------------------------------------------------------------
    def _rpc_register_pdev(self, args: Any) -> Generator[Effect, None, int]:
        path, master_host, pdev_id = args
        yield from self.cpu.consume(self.params.fs_name_lookup_cpu)
        entry = self.files.get(path)
        if entry is None:
            entry = self._create_entry(path)
        entry.is_pdev = True
        entry.pdev_host = master_host
        entry.pdev_id = pdev_id
        entry.version += 1
        return entry.handle_id

    # ------------------------------------------------------------------
    # Crash / recovery (Sprite's stateful-server recovery [Wel90])
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash the server: volatile state (who has what open, who
        caches, shared offsets) is lost; the disk (file contents/sizes)
        survives.  Clients re-build our state via ``fs.reopen``."""
        self.node.up = False
        self.epoch += 1
        for entry in self.files.values():
            entry.open_readers.clear()
            entry.open_writers.clear()
            entry.caching_clients.clear()
            entry.last_writer = None
            entry.stream_refs.clear()
            entry.shared_offsets.clear()
            entry.cacheable = True

    def restart(self) -> None:
        """Come back up; clients must run recovery before further I/O."""
        self.node.up = True

    def client_crashed(self, client: int) -> None:
        """Forget a crashed client kernel's per-client state.

        The inverse of ``fs.reopen``: its opens, cache registrations,
        stream references and delayed-write claim evaporate, so the
        files it had open do not stay write-locked or uncacheable
        forever.  Driven by the fault layer after crash detection.
        """
        for entry in self.files.values():
            entry.open_readers.pop(client, None)
            entry.open_writers.pop(client, None)
            entry.caching_clients.discard(client)
            if entry.last_writer == client:
                # Its freshest data died with its cache; server copy wins.
                entry.last_writer = None
            for refs in entry.stream_refs.values():
                refs.pop(client, None)
            if not entry.open_writers:
                entry.cacheable = True

    def _rpc_reopen(self, args: Dict[str, Any]) -> Generator[Effect, None, Dict[str, Any]]:
        """Recovery: a client re-asserts one open stream it holds.

        Rebuilds the open-mode bookkeeping, cache registration, and (for
        cross-host shared streams) the authoritative offset — the client
        supplies its view; the server takes the max across reopeners.
        """
        yield from self.cpu.consume(self.params.fs_name_lookup_cpu)
        entry = self.files.get(args["path"])
        if entry is None:
            # Disk state never had it (created-but-unflushed): recreate.
            entry = self._create_entry(args["path"])
            entry.size = args.get("size", 0)
        mode = args["mode"]
        client = args["client"]
        if OpenMode.writable(mode):
            _bump(entry.open_writers, client, 1)
        if OpenMode.readable(mode) or not OpenMode.writable(mode):
            _bump(entry.open_readers, client, 1)
        if args.get("caching"):
            entry.caching_clients.add(client)
        if args.get("dirty_bytes"):
            entry.last_writer = client
        if args.get("shared"):
            stream_id = args["stream_id"]
            refs = entry.stream_refs.setdefault(stream_id, {})
            _bump(refs, client, 1)
            known = entry.shared_offsets.get(stream_id, 0)
            entry.shared_offsets[stream_id] = max(known, args.get("offset", 0))
        self.reopens += 1
        return {"handle_id": entry.handle_id, "size": entry.size,
                "epoch": self.epoch}

    def file(self, path: str) -> ServerFile:
        """Direct (non-RPC) access for tests and metrics."""
        entry = self.files.get(path)
        if entry is None:
            raise FileNotFound(path)
        return entry

    def add_file(self, path: str, size: int = 0, payload: Any = None) -> ServerFile:
        """Populate the namespace without RPC traffic (workload setup)."""
        entry = self.files.get(path)
        if entry is None:
            entry = self._create_entry(path)
        entry.size = size
        entry.payload = payload
        return entry
