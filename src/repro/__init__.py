"""repro — Transparent process migration in the Sprite operating system.

A faithful, simulation-substrate reproduction of Douglis & Ousterhout's
Sprite process migration (ICDCS 1987; Douglis's 1990 thesis; SPE 1991):
the migration mechanism with home-node transparency, four VM-transfer
policies, open-file hand-off over a caching network file system, host
selection, eviction, and the parallel-make / simulation workloads the
paper evaluates with.

Quick start::

    from repro import SpriteCluster

    cluster = SpriteCluster(workstations=4)

    def job(proc):
        yield from proc.compute(2.0)
        host = yield from proc.gethostname()
        return host

    print(cluster.run_process(cluster.hosts[0], job, name="hello"))
"""

from .cluster import ServerHost, SpriteCluster
from .config import KB, MB, MS, US, ClusterParams

__version__ = "1.0.0"

__all__ = [
    "ClusterParams",
    "KB",
    "MB",
    "MS",
    "US",
    "ServerHost",
    "SpriteCluster",
    "__version__",
]
