"""Deterministic fault injection & recovery — the cluster's chaos engine.

The thesis's migration, load-sharing, and FS-recovery protocols are all
*defined* by how they fail: aborted transfers roll back, a dead migd
degrades requests to local execution, file servers rebuild state from
client reopens.  This package makes those failures first-class and
reproducible:

* :mod:`.plan`       — :class:`FaultPlan`/:class:`FaultAction`: what
  breaks, when (scripted or seeded-random).
* :mod:`.fabric`     — :class:`LinkFabric`: partitions, packet loss and
  latency spikes, consulted by the LAN per message.
* :mod:`.injector`   — :class:`FaultInjector`: executes plans, drives
  host crash/reboot, migd and FS-server outages, crash detection.
* :mod:`.detector`   — :class:`FailureDetector`: heartbeat-driven
  suspicion accrual with flap damping and false-suspicion reconcile;
  replaces the fixed detection delay when attached.
* :mod:`.invariants` — :class:`InvariantChecker`: no process lost or
  duplicated, migration ledger consistent, fault accounting balanced.
* :mod:`.chaos`      — :func:`run_chaos`: workload + plan + audit, with
  a trace fingerprint for byte-identical determinism checks
  (``python -m repro chaos``).
* :mod:`.crashmatrix` — :func:`run_matrix`: the exhaustive {source,
  target, home, FS server} x {crash, partition, flaky} x
  txn-step-boundary sweep over the migration transaction
  (``python -m repro chaos --crash-matrix``).

Everything is zero-cost when absent: a cluster with no injector runs
the exact same instruction path as before this package existed.
"""

from .chaos import (
    ChaosReport,
    adversarial_plan,
    build_chaos_base,
    builtin_plan,
    run_chaos,
    trace_fingerprint,
)
from .crashmatrix import (
    MATRIX_KINDS,
    MATRIX_VICTIMS,
    CellResult,
    MatrixReport,
    build_matrix_base,
    matrix_cells,
    run_cell,
    run_matrix,
)
from .detector import FailureDetector, HostWatch
from .fabric import LinkFabric, LinkState, UnicastVerdict
from .injector import FaultEvent, FaultInjector
from .invariants import InvariantChecker, Violation
from .plan import FAULT_KINDS, FaultAction, FaultPlan

__all__ = [
    "FAULT_KINDS",
    "MATRIX_KINDS",
    "MATRIX_VICTIMS",
    "CellResult",
    "ChaosReport",
    "FailureDetector",
    "FaultAction",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "HostWatch",
    "InvariantChecker",
    "LinkFabric",
    "LinkState",
    "MatrixReport",
    "UnicastVerdict",
    "Violation",
    "adversarial_plan",
    "build_chaos_base",
    "build_matrix_base",
    "builtin_plan",
    "matrix_cells",
    "run_cell",
    "run_chaos",
    "run_matrix",
    "trace_fingerprint",
]
