"""Suspicion-based failure detection (deterministic accrual detector).

The injector's original crash reaction was a single fixed delay:
``crash_host`` sleeps ``crash_detect_delay`` seconds and then the whole
cluster acts at once.  That models Sprite's recovery lag but not its
*mechanism*, and it cannot express the failure modes an adversarial
network produces: a partitioned host looks exactly like a dead one, a
flapping host triggers the full reaction on every blip, and a host
declared dead that comes back has no reintegration path at all.

:class:`FailureDetector` replaces the fixed delay with a heartbeat-
driven accrual detector in the style of φ-accrual, discretized so it
stays deterministic:

* every ``params.heartbeat_period`` seconds the monitor samples each
  workstation: a heartbeat "arrives" iff the host is up **and** the
  fault fabric has a path from the monitor's vantage (the migd home
  host) — so asymmetric partitions produce genuine false suspicions;
* each missed heartbeat raises the host's **suspicion level** by one;
  at ``suspicion_threshold`` consecutive misses the host is *declared*
  dead and the survivors run the exact same reaction the fixed-delay
  path drives (:meth:`FaultInjector.notify_peers`);
* a declared-dead host whose heartbeats resume triggers an explicit
  **reconcile** instead of split-brain: stale foreign processes whose
  home already wrote them off are killed on the returning host, the
  host's file-server state is re-driven through the idempotent reopen
  protocol, and the event is counted as a *false* suspicion when the
  host never actually crashed in between;
* every reconcile bumps the host's **flap count**, which raises its
  personal declaration threshold by ``suspicion_flap_penalty`` misses
  (capped at ``suspicion_max_threshold``) — flapping hosts must stay
  silent longer before the cluster reacts to them again (damping).

Everything is deterministic: the monitor ticks at fixed offsets and
draws nothing from any RNG, so a fixed seed plus a fixed plan yields a
byte-identical trace with the detector enabled.  The detector is
opt-in (``FaultInjector.attach_detector()``); without it the injector
behaves exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator

from ..kernel import ProcState
from ..obs import FAULT_SUSPECT
from ..sim import Effect, Sleep, spawn

__all__ = ["FailureDetector", "HostWatch"]


@dataclass
class HostWatch:
    """Detector state for one monitored host."""

    address: int
    #: Consecutive missed heartbeats.
    suspicion: int = 0
    #: Misses required to declare this host dead (rises with flaps).
    threshold: int = 3
    declared: bool = False
    #: Reconciles seen (each one raises ``threshold`` — damping).
    flaps: int = 0
    #: ``migration._crash_epoch`` last observed while the host was
    #: answering heartbeats; if it is still unchanged when a declared
    #: host reappears, the host never actually crashed in between and
    #: the declaration was a *false* suspicion (partition/flap).
    epoch_seen: int = 0
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def level(self) -> float:
        """Suspicion level in [0, 1+): 1.0 means "declared"."""
        return self.suspicion / max(self.threshold, 1)


class FailureDetector:
    """Heartbeat monitor driving the injector's crash reaction.

    Created via :meth:`FaultInjector.attach_detector`; while attached,
    ``crash_host`` no longer schedules the fixed-delay reaction — this
    monitor declares (and un-declares) hosts instead.
    """

    def __init__(self, injector):
        self.injector = injector
        self.cluster = injector.cluster
        params = self.cluster.params
        self.period = params.heartbeat_period
        self.base_threshold = params.suspicion_threshold
        self.flap_penalty = params.suspicion_flap_penalty
        self.max_threshold = params.suspicion_max_threshold
        self.watches: Dict[int, HostWatch] = {}
        #: Counters for reports and tests.
        self.declared = 0
        self.reconciles = 0
        self.false_suspicions = 0
        self.reconciled_kills = 0
        self.spans = injector.spans
        self._suspect_spans: Dict[int, Any] = {}
        self._task = None

    # ------------------------------------------------------------------
    @property
    def anchor(self) -> int:
        """The monitor's vantage point on the network.

        Connectivity is judged from the migd home host (the natural
        central observer) or, without a load-sharing service, from the
        first file server — matching which partitions actually starve a
        host of service.
        """
        service = self.injector.service
        if service is not None:
            return service.migd.home.address
        if self.cluster.server_hosts:
            return self.cluster.server_hosts[0].address
        return self.cluster.hosts[0].address

    def start(self) -> "FailureDetector":
        if self._task is None:
            self._task = spawn(
                self.cluster.sim, self._monitor,
                name="failure-detector", daemon=True,
            )
        return self

    def watch(self, address: int) -> HostWatch:
        watch = self.watches.get(address)
        if watch is None:
            watch = HostWatch(address=address, threshold=self.base_threshold)
            self.watches[address] = watch
        return watch

    # ------------------------------------------------------------------
    def _heartbeat_ok(self, host) -> bool:
        if not host.node.up:
            return False
        anchor = self.anchor
        if host.address == anchor:
            return True
        return self.injector.fabric.connected(anchor, host.address)

    def _monitor(self) -> Generator[Effect, None, None]:
        # Half-period initial offset: samples interleave with the
        # availability daemons instead of phase-locking on them.
        yield Sleep(self.period / 2.0)
        while True:
            for host in self.cluster.hosts:
                watch = self.watch(host.address)
                if self._heartbeat_ok(host):
                    if watch.declared:
                        yield from self._reconcile(host, watch)
                    watch.suspicion = 0
                    watch.epoch_seen = self._crash_epoch(host)
                    continue
                watch.suspicion += 1
                if watch.suspicion == 1 or watch.declared:
                    # Trace only the first miss and post-declaration
                    # silence is not re-traced at all: suspicion ramps
                    # are reconstructable from period * threshold.
                    self._emit("suspicion", host=host.name,
                               level=round(watch.level, 3),
                               misses=watch.suspicion)
                if (not watch.declared
                        and watch.suspicion >= watch.threshold):
                    self._declare(host, watch)
            yield Sleep(self.period)

    def _declare(self, host, watch: HostWatch) -> None:
        """Suspicion crossed the threshold: run the survivor reaction."""
        watch.declared = True
        self.declared += 1
        if self.spans.enabled:
            self._suspect_spans[host.address] = self.spans.start(
                FAULT_SUSPECT, f"host:{host.name}",
                t=self.cluster.sim.now, address=host.address,
                misses=watch.suspicion, threshold=watch.threshold,
            )
        self._emit("declared_dead", host=host.name, address=host.address,
                   misses=watch.suspicion, threshold=watch.threshold)
        self.injector.notify_peers(host.address)

    def _reconcile(self, host, watch: HostWatch) -> Generator[Effect, None, None]:
        """A declared-dead host is answering heartbeats again.

        The survivors already wrote its work off; the returning host
        must not keep running copies the rest of the cluster has
        replaced or reaped (split-brain).  Kill the stale foreign
        processes, re-drive file-server recovery, and raise the host's
        declaration threshold so a flapping host stops triggering the
        full reaction on every blip.
        """
        watch.declared = False
        watch.suspicion = 0
        watch.flaps += 1
        watch.threshold = min(
            self.base_threshold + self.flap_penalty * watch.flaps,
            self.max_threshold,
        )
        self.reconciles += 1
        false_suspicion = self._crash_epoch(host) == watch.epoch_seen
        if false_suspicion:
            self.false_suspicions += 1
        killed = self._kill_disowned(host)
        self.reconciled_kills += killed
        span = self._suspect_spans.pop(host.address, None)
        if span is not None:
            span.finish(t=self.cluster.sim.now, false_suspicion=false_suspicion,
                        killed=killed)
        self._emit("reconciled", host=host.name, address=host.address,
                   false_suspicion=false_suspicion, killed=killed,
                   threshold=watch.threshold)
        # Re-open the host's streams at every up server (idempotent
        # reopen protocol): servers that dropped the "dead" client's
        # state rebuild it, servers that never noticed ack the reopens.
        for server_host in self.cluster.server_hosts:
            if not server_host.node.up or not host.node.up:
                continue
            try:
                yield from host.fs.recover(server_host.address)
            except Exception:  # noqa: BLE001 - next tick retries
                continue

    def _kill_disowned(self, host) -> int:
        """Kill foreign processes the cluster no longer acknowledges.

        A foreign process on the returning host is *stale* when its
        home kernel no longer holds a MIGRATED shadow pointing here —
        the home reaped it at declaration time (and may already have
        restarted the work elsewhere).  Letting it run would be the
        split-brain this reconcile exists to prevent.
        """
        killed = 0
        kernel = host.kernel
        for pcb in sorted(kernel.procs.values(), key=lambda p: p.pid):
            if (pcb.state != ProcState.RUNNING
                    or pcb.current != host.address
                    or pcb.home == host.address):
                continue
            home_kernel = self.cluster.kernels.get(pcb.home)
            shadow = (home_kernel.procs.get(pcb.pid)
                      if home_kernel is not None else None)
            stale = (
                shadow is None
                or shadow.state != ProcState.MIGRATED
                or shadow.current != host.address
            )
            if not stale:
                continue
            if pcb.task is not None:
                pcb.task.abort(("declared-dead", host.address))
            kernel.procs.pop(pcb.pid, None)
            killed += 1
        return killed

    # ------------------------------------------------------------------
    def _crash_epoch(self, host) -> int:
        manager = self.cluster.managers.get(host.address)
        return manager._crash_epoch if manager is not None else 0

    def _emit(self, kind: str, **detail: Any) -> None:
        self.injector._emit(f"detector_{kind}", **detail)

    def stats(self) -> Dict[str, int]:
        return {
            "declared": self.declared,
            "reconciles": self.reconciles,
            "false_suspicions": self.false_suspicions,
            "reconciled_kills": self.reconciled_kills,
        }
