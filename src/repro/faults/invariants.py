"""Cluster invariants that must hold no matter what the chaos did.

After any run — scripted plan, random churn, or a hand-driven test —
:class:`InvariantChecker` audits the quiesced cluster:

* **Process conservation**: no pid is RUNNING on two kernels at once;
  every resident process thinks it is where its kernel thinks it is;
  every shadow PCB points at a host that actually runs (or ran, before
  crashing) its process.
* **Migration ledger**: records have sane timestamps, never migrate a
  process onto the host it left from in the same hop, and the refusal
  flags agree with the per-reason refusal tally.
* **Fault accounting** (with an injector): processes the plan killed
  are exactly the ones missing — nothing vanished without a recorded
  crash, nothing rose from the dead.
* **Transaction hygiene** (quiesced): once in-flight work has drained
  — every lease TTL expired, every recovery and repair daemon done —
  no migration manager may still hold a ticket lease or a reservation,
  no journal may have an open transaction on an up host, and no file
  server may track a migrated-stream reference for a stream its (up)
  client no longer has open.

:meth:`audit_in_flight` is the instantaneous variant the crash matrix
runs *at* a fault boundary: every expected pid must have exactly one
runnable copy cluster-wide right now.  Inactive copies installed under
an unexpired :class:`~repro.migration.TicketLease` are legal and
counted — the caller asserts they drain to zero by quiesce.

Checks return :class:`Violation` values rather than raising, so the
chaos CLI can report all of them; tests use :meth:`assert_clean`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..kernel import ProcState, home_of_pid
from ..migration import refusal_reasons

__all__ = ["InvariantChecker", "Violation"]


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough detail to debug it."""

    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"{self.kind}: {parts}"


class InvariantChecker:
    """Audits a cluster, optionally against a fault injector's log."""

    def __init__(self, cluster, injector=None):
        self.cluster = cluster
        self.injector = injector

    # ------------------------------------------------------------------
    def check(self, expected_pids: Optional[Iterable[int]] = None) -> List[Violation]:
        violations: List[Violation] = []
        violations.extend(self._check_placement())
        violations.extend(self._check_records())
        violations.extend(self._check_leases())
        violations.extend(self._check_journals())
        violations.extend(self._check_stream_refs())
        violations.extend(self._check_exactly_once())
        if expected_pids is not None:
            violations.extend(self._check_conservation(set(expected_pids)))
        return violations

    def assert_clean(self, expected_pids: Optional[Iterable[int]] = None) -> None:
        violations = self.check(expected_pids)
        if violations:
            raise AssertionError(
                "invariant violations:\n"
                + "\n".join(f"  - {v}" for v in violations)
            )

    # ------------------------------------------------------------------
    def _crashed_hosts(self) -> Set[int]:
        if self.injector is None:
            return set()
        return set(self.injector.crashed_hosts)

    def _checkpointed_pids(self) -> Set[int]:
        """Pids whose state survives in an intact checkpoint image
        (``cluster.checkpoints`` is set by
        :class:`repro.checkpoint.CheckpointService`).  Such a pid is
        accounted state even while no kernel holds a runnable copy —
        the restart manager can bring it back."""
        service = getattr(self.cluster, "checkpoints", None)
        if service is None:
            return set()
        return service.accounted_pids()

    def _check_placement(self) -> List[Violation]:
        violations: List[Violation] = []
        crashed = self._crashed_hosts()
        running_at: Dict[int, List[int]] = {}
        for address in sorted(self.cluster.kernels):
            kernel = self.cluster.kernels[address]
            for pid, pcb in sorted(kernel.procs.items()):
                if pcb.state == ProcState.RUNNING:
                    running_at.setdefault(pid, []).append(address)
                    if pcb.current != address:
                        violations.append(Violation(
                            "misplaced-process",
                            {"pid": pid, "kernel": address,
                             "claims": pcb.current},
                        ))
        for pid, addresses in sorted(running_at.items()):
            if len(addresses) > 1:
                violations.append(Violation(
                    "duplicated-process", {"pid": pid, "hosts": addresses}
                ))
        for address in sorted(self.cluster.kernels):
            kernel = self.cluster.kernels[address]
            for pid, pcb in sorted(kernel.procs.items()):
                if pcb.state != ProcState.MIGRATED:
                    continue
                # A shadow may dangle only because its execution host
                # crashed and detection has not fired yet; a host that
                # never crashed must actually run the process.
                remote = pcb.current
                if remote not in running_at.get(pid, []) and remote not in crashed:
                    violations.append(Violation(
                        "dangling-shadow",
                        {"pid": pid, "home": address, "remote": remote},
                    ))
        return violations

    def _check_records(self) -> List[Violation]:
        violations: List[Violation] = []
        records = list(self.cluster.migration_records())
        refused_flagged = 0
        for record in records:
            if record.refused:
                refused_flagged += 1
                if "refusal" not in record.detail:
                    violations.append(Violation(
                        "refusal-without-reason",
                        {"pid": record.pid, "source": record.source,
                         "target": record.target},
                    ))
            if record.source == record.target:
                violations.append(Violation(
                    "self-migration",
                    {"pid": record.pid, "host": record.source},
                ))
            if record.ended and record.ended < record.started:
                violations.append(Violation(
                    "record-time-warp",
                    {"pid": record.pid, "started": record.started,
                     "ended": record.ended},
                ))
        tally = sum(refusal_reasons(records).values())
        if tally != refused_flagged:
            violations.append(Violation(
                "refusal-tally-mismatch",
                {"flagged": refused_flagged, "tallied": tally},
            ))
        return violations

    def _check_conservation(self, expected: Set[int]) -> List[Violation]:
        """Every expected pid must be accounted for: still resident,
        exited (zombie/dead entries stay in the table), or recorded
        lost by the fault layer — directly (it was executing on the
        crashing host, or was orphaned/reaped by detection) or
        implicitly (its *home* crashed, which wipes the whole process
        table including exit records)."""
        violations: List[Violation] = []
        accounted: Set[int] = set()
        for kernel in self.cluster.kernels.values():
            accounted.update(kernel.procs.keys())
        crashed = self._crashed_hosts()
        excused: Set[int] = set()
        if self.injector is not None:
            excused |= self.injector.lost_pids()
        excused |= self._checkpointed_pids()
        for pid in sorted(expected - accounted - excused):
            if home_of_pid(pid) in crashed:
                continue
            violations.append(Violation("lost-process", {"pid": pid}))
        return violations

    # ------------------------------------------------------------------
    # Migration-transaction hygiene (quiesced cluster)
    # ------------------------------------------------------------------
    def _check_leases(self) -> List[Violation]:
        """No expired ticket lease may linger, and a manager's memory
        reservation must equal the sum over the leases it still holds —
        a mismatch means an abort path forgot to give bytes back."""
        violations: List[Violation] = []
        now = self.cluster.sim.now
        for address in sorted(self.cluster.managers):
            manager = self.cluster.managers[address]
            if not manager.host.node.up:
                continue
            held = 0
            for (pid, ticket_id), lease in sorted(manager._tickets.items()):
                held += lease.reserved_bytes
                if now > lease.expires:
                    violations.append(Violation(
                        "leaked-ticket",
                        {"host": address, "pid": pid, "ticket": ticket_id,
                         "status": lease.status, "expires": lease.expires},
                    ))
            if manager.reserved_bytes != held:
                violations.append(Violation(
                    "leaked-reservation",
                    {"host": address, "reserved": manager.reserved_bytes,
                     "held_by_leases": held},
                ))
        return violations

    def _check_journals(self) -> List[Violation]:
        """Every journalled transaction on an up host must eventually
        finish.  A transaction still open past its lease window can no
        longer be legitimately in flight: recovery, the commit resolver
        or the rollback repair task should have closed it."""
        violations: List[Violation] = []
        now = self.cluster.sim.now
        for address in sorted(self.cluster.managers):
            manager = self.cluster.managers[address]
            if not manager.host.node.up:
                continue
            for txn in manager.journal.open_txns():
                if txn.expires and now <= txn.expires:
                    continue  # lease still live: genuinely in flight
                violations.append(Violation(
                    "leaked-journal-txn",
                    {"host": address, "txn": txn.txn_id, "pid": txn.pid,
                     "state": txn.state.name,
                     "rollback_pending": txn.rollback_pending},
                ))
        return violations

    def _check_stream_refs(self) -> List[Violation]:
        """Server-side migrated-stream references must be backed by an
        actual open stream on the referenced (up) client — anything else
        is a refcount leaked by a half-done stream hand-off."""
        violations: List[Violation] = []
        hosts = {host.address: host for host in self.cluster.hosts}
        for server_host in self.cluster.server_hosts:
            if not server_host.node.up:
                continue
            for path in sorted(server_host.server.files):
                entry = server_host.server.files[path]
                for stream_id in sorted(entry.stream_refs):
                    for client, count in sorted(
                        entry.stream_refs[stream_id].items()
                    ):
                        if count <= 0:
                            continue
                        host = hosts.get(client)
                        if host is None or not host.node.up:
                            continue  # crashed client: server cleanup pends
                        if stream_id not in host.fs.open_streams:
                            violations.append(Violation(
                                "leaked-stream-ref",
                                {"server": server_host.name, "path": path,
                                 "stream": stream_id, "client": client,
                                 "count": count},
                            ))
        return violations

    def _check_exactly_once(self) -> List[Violation]:
        """No RPC port may ever have executed a non-idempotent handler
        twice for one logical request — at-least-once retries and
        duplicating links must be absorbed by the dedup cache, never by
        the handler.  (``mig.commit`` running twice is how a process
        gets activated on two hosts.)"""
        violations: List[Violation] = []
        ports = [(host.name, host.rpc) for host in self.cluster.hosts]
        ports += [
            (server_host.name, server_host.rpc)
            for server_host in self.cluster.server_hosts
            if hasattr(server_host, "rpc")
        ]
        for name, port in ports:
            if port.double_executions:
                violations.append(Violation(
                    "double-execution",
                    {"host": name, "count": port.double_executions},
                ))
        return violations

    # ------------------------------------------------------------------
    # Instantaneous audit (run at a fault boundary, not at quiesce)
    # ------------------------------------------------------------------
    def audit_in_flight(
        self, expected_pids: Optional[Iterable[int]] = None
    ) -> Tuple[List[Violation], int]:
        """Single-live-copy audit, valid *at any instant*.

        A copy is **runnable** when its kernel's process table holds it
        ``RUNNING`` and the PCB agrees it executes there — during a
        transfer that is the frozen source copy (activation happens only
        inside ``mig.commit``), afterwards the target copy.  Returns the
        violations plus the number of **inactive** copies: installed-
        but-unactivated target copies under unexpired leases, which are
        legal now but must drain to zero by quiesce.

        A pid with *no* runnable copy is excused only when it exited
        (zombie/dead entry or a recorded exit status somewhere), died in
        a recorded host crash, lost its home kernel, or survives as an
        inactive copy awaiting commit resolution.
        """
        now = self.cluster.sim.now
        violations: List[Violation] = []
        runnable_at: Dict[int, List[int]] = {}
        exited: Set[int] = set()
        for address in sorted(self.cluster.kernels):
            kernel = self.cluster.kernels[address]
            for pid, pcb in sorted(kernel.procs.items()):
                if (pcb.state == ProcState.RUNNING
                        and pcb.current == address):
                    runnable_at.setdefault(pid, []).append(address)
                if (pcb.state in (ProcState.ZOMBIE, ProcState.DEAD)
                        or pcb.exit_status is not None):
                    exited.add(pid)
        inactive_pids: Dict[int, List[int]] = {}
        inactive = 0
        for address in sorted(self.cluster.managers):
            manager = self.cluster.managers[address]
            if not manager.host.node.up:
                continue
            for (pid, _), lease in sorted(manager._tickets.items()):
                if (lease.status == "installed"
                        and lease.install is not None
                        and now <= lease.expires):
                    inactive += 1
                    inactive_pids.setdefault(pid, []).append(address)
        if expected_pids is None:
            expected = set(runnable_at) | set(inactive_pids) | exited
        else:
            expected = set(expected_pids)
        crashed = self._crashed_hosts()
        lost = self.injector.lost_pids() if self.injector else set()
        # A checkpointed pid between crash and restore has no runnable
        # copy anywhere, but its intact image is recoverable state.
        lost |= self._checkpointed_pids()
        for pid in sorted(expected):
            copies = runnable_at.get(pid, [])
            if len(copies) > 1:
                violations.append(Violation(
                    "duplicated-runnable", {"pid": pid, "hosts": copies}
                ))
            elif not copies:
                if (pid in exited or pid in lost or pid in inactive_pids
                        or home_of_pid(pid) in crashed):
                    continue
                violations.append(Violation(
                    "no-runnable-copy", {"pid": pid}
                ))
        return violations, inactive
