"""Cluster invariants that must hold no matter what the chaos did.

After any run — scripted plan, random churn, or a hand-driven test —
:class:`InvariantChecker` audits the quiesced cluster:

* **Process conservation**: no pid is RUNNING on two kernels at once;
  every resident process thinks it is where its kernel thinks it is;
  every shadow PCB points at a host that actually runs (or ran, before
  crashing) its process.
* **Migration ledger**: records have sane timestamps, never migrate a
  process onto the host it left from in the same hop, and the refusal
  flags agree with the per-reason refusal tally.
* **Fault accounting** (with an injector): processes the plan killed
  are exactly the ones missing — nothing vanished without a recorded
  crash, nothing rose from the dead.

Checks return :class:`Violation` values rather than raising, so the
chaos CLI can report all of them; tests use :meth:`assert_clean`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set

from ..kernel import ProcState, home_of_pid
from ..migration import refusal_reasons

__all__ = ["InvariantChecker", "Violation"]


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough detail to debug it."""

    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"{self.kind}: {parts}"


class InvariantChecker:
    """Audits a cluster, optionally against a fault injector's log."""

    def __init__(self, cluster, injector=None):
        self.cluster = cluster
        self.injector = injector

    # ------------------------------------------------------------------
    def check(self, expected_pids: Optional[Iterable[int]] = None) -> List[Violation]:
        violations: List[Violation] = []
        violations.extend(self._check_placement())
        violations.extend(self._check_records())
        if expected_pids is not None:
            violations.extend(self._check_conservation(set(expected_pids)))
        return violations

    def assert_clean(self, expected_pids: Optional[Iterable[int]] = None) -> None:
        violations = self.check(expected_pids)
        if violations:
            raise AssertionError(
                "invariant violations:\n"
                + "\n".join(f"  - {v}" for v in violations)
            )

    # ------------------------------------------------------------------
    def _crashed_hosts(self) -> Set[int]:
        if self.injector is None:
            return set()
        return set(self.injector.crashed_hosts)

    def _check_placement(self) -> List[Violation]:
        violations: List[Violation] = []
        crashed = self._crashed_hosts()
        running_at: Dict[int, List[int]] = {}
        for address in sorted(self.cluster.kernels):
            kernel = self.cluster.kernels[address]
            for pid, pcb in sorted(kernel.procs.items()):
                if pcb.state == ProcState.RUNNING:
                    running_at.setdefault(pid, []).append(address)
                    if pcb.current != address:
                        violations.append(Violation(
                            "misplaced-process",
                            {"pid": pid, "kernel": address,
                             "claims": pcb.current},
                        ))
        for pid, addresses in sorted(running_at.items()):
            if len(addresses) > 1:
                violations.append(Violation(
                    "duplicated-process", {"pid": pid, "hosts": addresses}
                ))
        for address in sorted(self.cluster.kernels):
            kernel = self.cluster.kernels[address]
            for pid, pcb in sorted(kernel.procs.items()):
                if pcb.state != ProcState.MIGRATED:
                    continue
                # A shadow may dangle only because its execution host
                # crashed and detection has not fired yet; a host that
                # never crashed must actually run the process.
                remote = pcb.current
                if remote not in running_at.get(pid, []) and remote not in crashed:
                    violations.append(Violation(
                        "dangling-shadow",
                        {"pid": pid, "home": address, "remote": remote},
                    ))
        return violations

    def _check_records(self) -> List[Violation]:
        violations: List[Violation] = []
        records = list(self.cluster.migration_records())
        refused_flagged = 0
        for record in records:
            if record.refused:
                refused_flagged += 1
                if "refusal" not in record.detail:
                    violations.append(Violation(
                        "refusal-without-reason",
                        {"pid": record.pid, "source": record.source,
                         "target": record.target},
                    ))
            if record.source == record.target:
                violations.append(Violation(
                    "self-migration",
                    {"pid": record.pid, "host": record.source},
                ))
            if record.ended and record.ended < record.started:
                violations.append(Violation(
                    "record-time-warp",
                    {"pid": record.pid, "started": record.started,
                     "ended": record.ended},
                ))
        tally = sum(refusal_reasons(records).values())
        if tally != refused_flagged:
            violations.append(Violation(
                "refusal-tally-mismatch",
                {"flagged": refused_flagged, "tallied": tally},
            ))
        return violations

    def _check_conservation(self, expected: Set[int]) -> List[Violation]:
        """Every expected pid must be accounted for: still resident,
        exited (zombie/dead entries stay in the table), or recorded
        lost by the fault layer — directly (it was executing on the
        crashing host, or was orphaned/reaped by detection) or
        implicitly (its *home* crashed, which wipes the whole process
        table including exit records)."""
        violations: List[Violation] = []
        accounted: Set[int] = set()
        for kernel in self.cluster.kernels.values():
            accounted.update(kernel.procs.keys())
        crashed = self._crashed_hosts()
        excused: Set[int] = set()
        if self.injector is not None:
            excused = self.injector.lost_pids()
        for pid in sorted(expected - accounted - excused):
            if home_of_pid(pid) in crashed:
                continue
            violations.append(Violation("lost-process", {"pid": pid}))
        return violations
