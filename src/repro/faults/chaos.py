"""The chaos harness: a busy cluster, a fault plan, and an audit.

:func:`run_chaos` is one reproducible experiment: build a cluster with
tracing on, run a defensive workload under automatic load sharing,
unleash a :class:`~repro.faults.FaultPlan` (scripted or seeded-random),
quiesce, and audit the wreckage with the
:class:`~repro.faults.InvariantChecker`.  The returned
:class:`ChaosReport` carries a SHA-256 fingerprint of the full trace —
two runs with the same seed and plan must produce *byte-identical*
traces, which is how both the golden test and ``python -m repro chaos
--verify-determinism`` detect nondeterminism.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..checkpoint import CheckpointService, policy_named
from ..cluster import SpriteCluster
from ..fs import OpenMode
from ..kernel import ProcState
from ..loadsharing import LoadSharingService
from ..sim import Sleep, spawn
from ..snapshot import Snapshot
from .injector import FaultInjector
from .invariants import InvariantChecker
from .plan import FaultPlan

__all__ = [
    "ChaosReport",
    "adversarial_plan",
    "build_chaos_base",
    "run_chaos",
    "trace_fingerprint",
    "builtin_plan",
]


def trace_fingerprint(tracer) -> str:
    """SHA-256 over the rendered trace — byte-identical or bust."""
    payload = "\n".join(str(record) for record in tracer.records)
    return hashlib.sha256(payload.encode()).hexdigest()


def builtin_plan(cluster, duration: float) -> FaultPlan:
    """The default scripted gauntlet, scaled to ``duration``.

    Hits every fault kind once: a full host outage, a network
    partition, a migd outage, a file-server outage, and a lossy link —
    spread over the first ~80% of the run so recovery can finish.
    """
    hosts = cluster.hosts
    t = duration / 100.0  # timeline unit
    plan = FaultPlan()
    if len(hosts) >= 3:
        plan.host_outage(10 * t, hosts[2], 8 * t)
    plan.partition(25 * t, [h.address for h in hosts[:2]])
    plan.heal(33 * t)
    plan.migd_outage(40 * t, 5 * t)
    plan.server_outage(52 * t, 5 * t)
    if len(hosts) >= 4:
        plan.link(60 * t, hosts[0], hosts[3], drop=0.3, delay=0.002)
        plan.link_clear(75 * t, hosts[0], hosts[3])
    return plan


def adversarial_plan(cluster, duration: float) -> FaultPlan:
    """The builtin gauntlet plus an adversarial network underneath it.

    Everything :func:`builtin_plan` does, and in addition the busiest
    links spend most of the run duplicating, reordering, and corrupting
    messages — the environment the exactly-once RPC layer, checksum
    drops, and suspicion damping exist for.  Per-message outcomes are
    drawn from ``faults.net``, so a fixed seed still yields a
    byte-identical trace.
    """
    hosts = cluster.hosts
    t = duration / 100.0
    plan = builtin_plan(cluster, duration)
    if len(hosts) >= 2:
        # The two job-launching homes talk the most: duplicate and
        # reorder their traffic for most of the run.
        plan.link(5 * t, hosts[0], hosts[1],
                  duplicate=0.25, reorder=0.2, reorder_window=0.003)
        plan.link_clear(85 * t, hosts[0], hosts[1])
    if len(hosts) >= 3:
        # Corruption on a migration-target path: checksum drops force
        # retries, which the dedup cache must absorb.
        plan.link(15 * t, hosts[1], hosts[2], corrupt=0.12, duplicate=0.15)
        plan.link_clear(80 * t, hosts[1], hosts[2])
    return plan


@dataclass
class ChaosReport:
    """What happened, whether it was legal, and how to reproduce it."""

    seed: int
    workstations: int
    duration: float
    jobs: int = 0
    jobs_finished: int = 0
    jobs_lost: int = 0
    jobs_ok: int = 0
    migrations: int = 0
    refusals: int = 0
    faults: int = 0
    packets_blocked: int = 0
    packets_dropped: int = 0
    policy: str = "migrate"
    checkpoints: int = 0
    restores: int = 0
    torn_images: int = 0
    unrecoverable: int = 0
    #: Fraction of submitted jobs that completed with exit 0.
    availability: float = 0.0
    #: Successful job-seconds completed per second of wall (sim) time.
    goodput: float = 0.0
    #: Adversarial-network accounting (all zero on clean fabrics).
    packets_duplicated: int = 0
    packets_reordered: int = 0
    packets_corrupted: int = 0
    checksum_drops: int = 0
    duplicates_suppressed: int = 0
    dedup_replays: int = 0
    double_executions: int = 0
    inbox_overflows: int = 0
    #: Failure-detector accounting (zero without ``detector=True``).
    suspicions_declared: int = 0
    false_suspicions: int = 0
    reconciles: int = 0
    #: Admission-control refusals (migd busy + per-host caps).
    backpressure_refusals: int = 0
    violations: List[str] = field(default_factory=list)
    fingerprint: str = ""
    events: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "workstations": self.workstations,
            "duration": self.duration,
            "jobs": self.jobs,
            "jobs_finished": self.jobs_finished,
            "jobs_lost": self.jobs_lost,
            "jobs_ok": self.jobs_ok,
            "migrations": self.migrations,
            "refusals": self.refusals,
            "faults": self.faults,
            "packets_blocked": self.packets_blocked,
            "packets_dropped": self.packets_dropped,
            "policy": self.policy,
            "checkpoints": self.checkpoints,
            "restores": self.restores,
            "torn_images": self.torn_images,
            "unrecoverable": self.unrecoverable,
            "availability": self.availability,
            "goodput": self.goodput,
            "packets_duplicated": self.packets_duplicated,
            "packets_reordered": self.packets_reordered,
            "packets_corrupted": self.packets_corrupted,
            "checksum_drops": self.checksum_drops,
            "duplicates_suppressed": self.duplicates_suppressed,
            "dedup_replays": self.dedup_replays,
            "double_executions": self.double_executions,
            "inbox_overflows": self.inbox_overflows,
            "suspicions_declared": self.suspicions_declared,
            "false_suspicions": self.false_suspicions,
            "reconciles": self.reconciles,
            "backpressure_refusals": self.backpressure_refusals,
            "violations": self.violations,
            "fingerprint": self.fingerprint,
            "events": self.events,
        }


def _chaos_job(proc, index: int, work: float):
    """A defensive batch job: compute, write a scratch file, compute.

    Infrastructure failures surface as exceptions from kernel calls;
    the job retries nothing and just reports failure — surviving *or*
    dying cleanly are both legal outcomes the invariant checker can
    account for.
    """
    try:
        yield from proc.compute(work * 0.4)
        fd = yield from proc.open(
            f"/tmp/chaos-{index}", OpenMode.WRITE | OpenMode.CREATE
        )
        yield from proc.write(fd, 4096)
        yield from proc.close(fd)
        yield from proc.compute(work * 0.6)
    except Exception:  # noqa: BLE001 - any infra failure = nonzero exit
        return 1
    return 0


def _chaos_job_resumable(proc, index: int, work: float, memory: int = 0):
    """The chaos job, restart-aware.

    Identical workload to :func:`_chaos_job`, but each compute stage is
    guarded on ``pcb.cpu_time`` so a process restored from a checkpoint
    (which banks the image's CPU progress into ``cpu_time``) skips the
    work its image already paid for and re-runs only the remainder.
    The file write is idempotent and simply re-executed.  ``memory``
    sizes the address space, which sizes the checkpoint images.
    """
    pcb = proc.pcb
    try:
        if memory and pcb.vm.size < memory:
            yield from proc.use_memory(memory)
        if pcb.cpu_time < work * 0.4:
            yield from proc.compute(work * 0.4 - pcb.cpu_time)
        fd = yield from proc.open(
            f"/tmp/chaos-{index}", OpenMode.WRITE | OpenMode.CREATE
        )
        yield from proc.write(fd, 4096)
        yield from proc.close(fd)
        if pcb.cpu_time < work:
            yield from proc.compute(work - pcb.cpu_time)
    except Exception:  # noqa: BLE001 - any infra failure = nonzero exit
        return 1
    return 0


def build_chaos_base(seed: int = 0, workstations: int = 5) -> Snapshot:
    """Build-and-warm the chaos cluster once, captured for forking.

    The returned :class:`~repro.snapshot.Snapshot` carries the traced
    cluster *and* its centralized load-sharing service (as the
    ``service`` extra, so a fork's selectors still point at the fork's
    own hosts).  ``run_chaos(base=...)`` accepts the snapshot or any
    fork of it; every fork replays byte-identically.
    """
    cluster = SpriteCluster(workstations=workstations, seed=seed, trace=True)
    cluster.standard_images()
    service = LoadSharingService(cluster, architecture="centralized")
    return cluster.snapshot(service=service)


def run_chaos(
    seed: int = 0,
    workstations: int = 5,
    duration: float = 120.0,
    plan: Optional[FaultPlan] = None,
    random_churn: bool = False,
    mtbf: float = 60.0,
    jobs: int = 12,
    job_length: float = 8.0,
    detect_delay: Optional[float] = None,
    drain: Optional[float] = None,
    base: Optional[object] = None,
    policy: str = "migrate",
    checkpoint_interval: Optional[float] = None,
    checkpoint_mode: str = "full",
    job_memory: int = 0,
    adversarial: bool = False,
    detector: Optional[bool] = None,
) -> ChaosReport:
    """One full chaos experiment; see the module docstring.

    ``base`` skips the build-and-warm prefix: pass the
    :class:`~repro.snapshot.Snapshot` from :func:`build_chaos_base`
    (forked internally) or an already-forked cluster from it.  The
    report's ``seed``/``workstations`` then come from the base cluster
    itself, so the caller can't mislabel a run.

    ``policy`` selects the fault-tolerance strategy (``migrate`` /
    ``checkpoint`` / ``hybrid``, see :mod:`repro.checkpoint`).  The
    default ``migrate`` path constructs no checkpoint machinery at all
    and stays byte-identical to a build without it.  ``job_memory``
    sizes each job's address space (hence its checkpoint images).

    ``adversarial=True`` selects the hostile profile: the
    :func:`adversarial_plan` gauntlet (duplicating / reordering /
    corrupting links on top of the builtin faults), modest migration
    and migd admission caps so backpressure actually engages, and —
    unless overridden via ``detector`` — the suspicion-based failure
    detector in place of the fixed detection delay.
    """
    if detector is None:
        detector = adversarial
    if base is None:
        cluster = SpriteCluster(
            workstations=workstations, seed=seed, trace=True
        )
        cluster.standard_images()
        service = LoadSharingService(cluster, architecture="centralized")
    else:
        cluster = base.fork() if isinstance(base, Snapshot) else base
        service = cluster.extras["service"]
        seed = cluster.params.seed
        workstations = len(cluster.hosts)
    if adversarial:
        # Engage the admission caps (the cluster's params object is
        # shared by every host, so this configures them all).  Only
        # fill in caps the caller left at the disabled default.
        params = cluster.params
        if params.migration_max_incoming == 0:
            params.migration_max_incoming = 4
        if params.migration_max_outgoing == 0:
            params.migration_max_outgoing = 8
        if params.migd_max_pending == 0:
            params.migd_max_pending = 8
    if plan is None:
        if random_churn:
            plan = FaultPlan.random(
                cluster.rng, cluster.hosts[1:], duration * 0.8, mtbf=mtbf,
                adversarial=adversarial,
            )
        elif adversarial:
            plan = adversarial_plan(cluster, duration)
        else:
            plan = builtin_plan(cluster, duration)
    injector = FaultInjector(
        cluster, plan, service=service, detect_delay=detect_delay
    ).start()
    if detector:
        injector.attach_detector()

    fault_policy = policy_named(policy)
    checkpoints: Optional[CheckpointService] = None
    if fault_policy.checkpointing:
        checkpoints = CheckpointService(
            cluster, injector=injector,
            interval=checkpoint_interval, mode=checkpoint_mode,
        )
    # The plain job keeps the checkpoint-off trace byte-identical to a
    # build without repro.checkpoint; the resumable variant is needed
    # whenever restores can happen (or images should have a VM payload).
    resumable = fault_policy.checkpointing or job_memory > 0

    # --- workload: jobs launched from the first two hosts, spread out
    # over the run, plus an orchestrator that load-shares them.
    launched: List = []

    def launcher():
        gap = duration * 0.5 / max(jobs, 1)
        for index in range(jobs):
            home = cluster.hosts[index % min(2, len(cluster.hosts))]
            if home.node.up:
                if resumable:
                    pcb, _ctx = home.spawn_process(
                        _chaos_job_resumable, index, job_length, job_memory,
                        name=f"chaos-{index}",
                    )
                else:
                    pcb, _ctx = home.spawn_process(
                        _chaos_job, index, job_length, name=f"chaos-{index}"
                    )
                launched.append(pcb)
                if checkpoints is not None:
                    checkpoints.register(
                        pcb, _chaos_job_resumable,
                        index, job_length, job_memory,
                    )
            yield Sleep(gap)

    def orchestrator():
        """Keep trying to push runnable jobs onto granted idle hosts."""
        selector = service.selector_for(cluster.hosts[0])
        while True:
            yield Sleep(duration / 40.0)
            if not cluster.hosts[0].node.up:
                continue
            movable = [
                pcb for pcb in launched
                if not pcb.task.done
                and pcb.state == ProcState.RUNNING
                and pcb.current in cluster.managers
                and cluster.managers[pcb.current].host.node.up
            ]
            if not movable:
                continue
            granted = yield from selector.request(len(movable))
            for pcb, target in zip(movable, granted):
                try:
                    yield from cluster.managers[pcb.current].migrate(
                        pcb, target, reason="chaos"
                    )
                except Exception:  # noqa: BLE001 - refusals/crashes expected
                    pass

    spawn(cluster.sim, launcher(), name="chaos-launcher", daemon=True)
    if fault_policy.proactive_migration:
        spawn(cluster.sim, orchestrator(), name="chaos-orchestrator",
              daemon=True)

    cluster.run(until=duration)
    # Quiesce: heal the network, reboot the dead, let detection and
    # recovery daemons finish, then audit.
    injector.heal_all()
    if drain is None:
        drain = (
            injector.detect_delay
            + 3 * cluster.params.availability_period
            + 2 * job_length
        )
        if injector.detector is not None:
            # Suspicion accrual needs up to max_threshold missed beats
            # before it declares, plus one beat to reconcile after the
            # heal — give the monitor time to settle.
            drain += cluster.params.heartbeat_period * (
                cluster.params.suspicion_max_threshold + 2
            )
    cluster.run(until=duration + drain)

    checker = InvariantChecker(cluster, injector)
    violations = checker.check(expected_pids=[pcb.pid for pcb in launched])

    records = cluster.migration_records()
    finished = sum(
        1 for pcb in launched
        if pcb.task.done and isinstance(pcb.task.result, int)
    )
    jobs_ok = sum(
        1 for pcb in launched if pcb.task.done and pcb.task.result == 0
    )
    # Availability/goodput are computed from task results after the run
    # (trace-free arithmetic: they cannot perturb the fingerprint).
    horizon = duration + drain
    ckpt_stats = checkpoints.stats() if checkpoints is not None else {}
    ports = [host.rpc for host in cluster.hosts]
    ports += [sh.rpc for sh in cluster.server_hosts]
    managers = list(cluster.managers.values())
    det = injector.detector
    backpressure = (
        service.migd.refused_busy
        + sum(m.refused_incoming_busy for m in managers)
        + sum(m.refused_outgoing_cap for m in managers)
    )
    return ChaosReport(
        seed=seed,
        workstations=workstations,
        duration=duration,
        jobs=len(launched),
        jobs_finished=finished,
        jobs_lost=len(launched) - finished,
        jobs_ok=jobs_ok,
        migrations=sum(1 for r in records if not r.refused),
        refusals=sum(1 for r in records if r.refused),
        faults=len(injector.log),
        packets_blocked=injector.fabric.blocked,
        packets_dropped=injector.fabric.dropped,
        policy=fault_policy.name,
        checkpoints=ckpt_stats.get("checkpoints", 0),
        restores=ckpt_stats.get("restores", 0),
        torn_images=(
            ckpt_stats.get("torn_writes", 0)
            + ckpt_stats.get("torn_skipped", 0)
        ),
        unrecoverable=ckpt_stats.get("unrecoverable", 0),
        availability=jobs_ok / len(launched) if launched else 0.0,
        goodput=(jobs_ok * job_length / horizon) if horizon > 0 else 0.0,
        packets_duplicated=injector.fabric.duplicated,
        packets_reordered=injector.fabric.reordered,
        packets_corrupted=injector.fabric.corrupted,
        checksum_drops=sum(p.checksum_failures for p in ports),
        duplicates_suppressed=sum(p.duplicates_suppressed for p in ports),
        dedup_replays=sum(p.replays_sent for p in ports),
        double_executions=sum(p.double_executions for p in ports),
        inbox_overflows=cluster.lan.inbox_overflows,
        suspicions_declared=det.declared if det is not None else 0,
        false_suspicions=det.false_suspicions if det is not None else 0,
        reconciles=det.reconciles if det is not None else 0,
        backpressure_refusals=backpressure,
        violations=[str(v) for v in violations],
        fingerprint=trace_fingerprint(cluster.tracer),
        events=[str(event) for event in injector.log],
    )
