"""The fault injector: executes a :class:`FaultPlan` against a cluster.

One injector owns all fault state for a cluster: it installs the
:class:`~repro.faults.LinkFabric` on the LAN, drives host crash/reboot
lifecycles, kills and restarts the migd server, crashes file servers
and re-runs client recovery, and keeps the event log the invariant
checker audits afterwards.

Determinism: the injector draws nothing itself — plans are data, the
fabric draws from ``cluster.rng.stream("faults.net")``, and detection
daemons run at fixed offsets — so a fixed seed plus a fixed plan yields
a byte-identical trace.

Zero cost when absent: without an injector, ``lan.fabric`` stays
``None`` and every fault hook in the kernel/FS/LAN is behind an
``is not None`` or ``.up`` test that a healthy run already made.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Set

from ..kernel import Host
from ..obs import FAULT_OUTAGE, SpanTracer
from ..sim import Effect, Sleep, spawn
from .fabric import LinkFabric
from .plan import FaultAction, FaultPlan

__all__ = ["FaultInjector", "FaultEvent"]


@dataclass(frozen=True)
class FaultEvent:
    """One thing the injector did, for reports and the invariant checker."""

    time: float
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:12.6f}] fault {self.kind:<16} {parts}"


class FaultInjector:
    """Applies faults — scripted via a plan or imperatively from tests.

    ``service`` is the cluster's :class:`~repro.loadsharing.service.\
LoadSharingService` (or anything with ``.migd``); without it the migd
    fault kinds are unavailable but everything else works.
    """

    def __init__(
        self,
        cluster,
        plan: Optional[FaultPlan] = None,
        service: Optional[Any] = None,
        detect_delay: Optional[float] = None,
    ):
        self.cluster = cluster
        self.plan = plan
        self.service = service
        self.detect_delay = (
            detect_delay
            if detect_delay is not None
            else cluster.params.crash_detect_delay
        )
        self.fabric = LinkFabric(
            rng=cluster.rng.stream("faults.net"), tracer=cluster.tracer
        )
        cluster.lan.fabric = self.fabric
        self.spans = SpanTracer.for_tracer(cluster.tracer)
        #: Everything the injector did, in order.
        self.log: List[FaultEvent] = []
        #: PCBs that were executing on a host when it crashed.
        self.lost_processes: List[Any] = []
        #: Addresses that have ever crashed (invariant checker uses this
        #: to excuse dangling shadows and lost pids).
        self.crashed_hosts: Set[int] = set()
        self.orphaned = 0
        self.reaped = 0
        #: Optional :class:`repro.checkpoint.RestartManager`; when set,
        #: crash detection offers it the crashed host's victims.  The
        #: call is synchronous and a no-op with nothing registered, so
        #: checkpoint-off runs schedule zero extra events.
        self.restart: Optional[Any] = None
        #: Optional :class:`repro.faults.FailureDetector`; while one is
        #: attached, crashes are *not* auto-detected after the fixed
        #: delay — the detector's heartbeat monitor declares them.
        self.detector: Optional[Any] = None
        self._outage_spans: Dict[int, Any] = {}
        self._started = False

    # ------------------------------------------------------------------
    # Plan driving
    # ------------------------------------------------------------------
    def start(self) -> "FaultInjector":
        """Launch the daemon that replays the plan over sim time."""
        if self._started:
            return self
        self._started = True
        if self.plan is not None and len(self.plan):
            spawn(self.cluster.sim, self._drive, name="fault-injector",
                  daemon=True)
        return self

    def _drive(self) -> Generator[Effect, None, None]:
        for action in self.plan.sorted_actions():
            delay = action.time - self.cluster.sim.now
            if delay > 0:
                yield Sleep(delay)
            self.apply(action)

    def apply(self, action: FaultAction) -> None:
        """Execute one action now (the plan driver calls this on time)."""
        kind = action.kind
        if kind == "host_crash":
            self.crash_host(self._host(action.target))
        elif kind == "host_reboot":
            self.reboot_host(self._host(action.target))
        elif kind == "migd_kill":
            self.kill_migd()
        elif kind == "migd_restart":
            self.restart_migd()
        elif kind == "server_crash":
            self.crash_server(action.target)
        elif kind == "server_restart":
            self.restart_server(action.target)
        elif kind == "partition":
            self.partition(*action.target)
        elif kind == "heal":
            self.heal()
        elif kind == "link":
            a, b = action.target
            self.set_link(a, b, **action.params)
        elif kind == "link_clear":
            a, b = action.target
            self.clear_link(a, b)
        else:  # pragma: no cover - FaultAction already validated kind
            raise ValueError(f"unknown fault kind {kind!r}")

    # ------------------------------------------------------------------
    # Target resolution
    # ------------------------------------------------------------------
    def _host(self, target: Any) -> Host:
        if isinstance(target, Host):
            return target
        if isinstance(target, str):
            return self.cluster.host_by_name(target)
        return self.cluster.host_by_address(int(target))

    def _address(self, target: Any) -> int:
        if isinstance(target, (Host,)) or hasattr(target, "address"):
            return target.address
        if isinstance(target, str):
            return self.cluster.host_by_name(target).address
        return int(target)

    def _server_host(self, target: Any):
        if target is None:
            target = 0
        if hasattr(target, "server"):
            return target
        if isinstance(target, int) and target < len(self.cluster.server_hosts):
            return self.cluster.server_hosts[target]
        for server_host in self.cluster.server_hosts:
            if server_host.address == target or server_host.name == target:
                return server_host
        raise KeyError(f"no file server matching {target!r}")

    # ------------------------------------------------------------------
    # Host crash / reboot
    # ------------------------------------------------------------------
    def crash_host(self, host: Host) -> List[Any]:
        """Full-host crash; peers react after the detection delay."""
        lost = host.crash()
        self.lost_processes.extend(lost)
        self.crashed_hosts.add(host.address)
        if self.spans.enabled:
            self._outage_spans[host.address] = self.spans.start(
                FAULT_OUTAGE, f"host:{host.name}", t=self.cluster.sim.now,
                address=host.address,
            )
        self._emit("host_crash", host=host.name, address=host.address,
                   lost=len(lost))
        if self.detector is None:
            spawn(
                self.cluster.sim,
                self._detect_crash(host.address),
                name=f"crash-detect:{host.name}",
                daemon=True,
            )
        return lost

    def reboot_host(self, host: Host) -> None:
        host.reboot()
        span = self._outage_spans.pop(host.address, None)
        if span is not None:
            span.finish(t=self.cluster.sim.now)
        self._emit("host_reboot", host=host.name, address=host.address)

    def _detect_crash(self, address: int) -> Generator[Effect, None, None]:
        """After the detection delay, tell the survivors.

        Runs even if the host already rebooted: its home/foreign state
        was lost at crash time regardless, so peers must still reap
        shadows and orphans that depended on the old incarnation.
        """
        yield Sleep(self.detect_delay)
        self.notify_peers(address)

    def notify_peers(self, address: int) -> None:
        """Run the cluster-wide reaction to ``address`` being dead.

        The single reaction path, whether driven by the fixed detection
        delay or by the suspicion detector: surviving kernels orphan and
        reap, servers drop the client's state, migd forgets the host,
        and the restart manager re-homes checkpointed victims.
        """
        for peer_address in sorted(self.cluster.kernels):
            kernel = self.cluster.kernels[peer_address]
            if peer_address == address or not kernel.node.up:
                continue
            counts = kernel.on_peer_crashed(address)
            self.orphaned += counts["orphaned"]
            self.reaped += counts["reaped"]
        for server_host in self.cluster.server_hosts:
            server_host.server.client_crashed(address)
        if self.service is not None:
            self.service.migd.host_lost(address)
        if self.restart is not None:
            self.restart.host_lost(address)
        self._emit("crash_detected", address=address,
                   orphaned=self.orphaned, reaped=self.reaped)

    def attach_detector(self) -> Any:
        """Switch from fixed-delay detection to the suspicion-based
        :class:`~repro.faults.detector.FailureDetector` (started)."""
        if self.detector is None:
            from .detector import FailureDetector

            self.detector = FailureDetector(self).start()
        return self.detector

    # ------------------------------------------------------------------
    # migd
    # ------------------------------------------------------------------
    def kill_migd(self) -> None:
        if self.service is None:
            raise RuntimeError("no load-sharing service attached")
        self.service.migd.stop()
        self._emit("migd_kill")

    def restart_migd(self) -> None:
        if self.service is None:
            raise RuntimeError("no load-sharing service attached")
        self.service.migd.restart()
        self._emit("migd_restart")

    # ------------------------------------------------------------------
    # File servers
    # ------------------------------------------------------------------
    def crash_server(self, target: Any = 0) -> None:
        server_host = self._server_host(target)
        server_host.server.crash()
        self._emit("server_crash", server=server_host.name)

    def restart_server(self, target: Any = 0) -> None:
        """Bring a server back and re-drive every client's recovery."""
        server_host = self._server_host(target)
        server_host.server.restart()
        self._emit("server_restart", server=server_host.name)
        spawn(
            self.cluster.sim,
            self._drive_recovery(server_host.address),
            name=f"fs-recover:{server_host.name}",
            daemon=True,
        )

    def _drive_recovery(self, server_address: int) -> Generator[Effect, None, None]:
        """Sequentially re-open every client's streams at the reborn
        server (the thesis's idempotent reopen protocol).  A client that
        fails mid-recovery — say the server crashes *again* — is logged
        and skipped; the next restart re-drives it."""
        for host in self.cluster.hosts:
            if not host.node.up:
                continue
            try:
                reopened = yield from host.fs.recover(server_address)
            except Exception as exc:  # noqa: BLE001 - keep recovering others
                self._emit("recovery_failed", host=host.name,
                           server=server_address, error=type(exc).__name__)
                continue
            if reopened:
                self._emit("recovered", host=host.name,
                           server=server_address, reopened=reopened)

    # ------------------------------------------------------------------
    # Network
    # ------------------------------------------------------------------
    def partition(self, *groups) -> None:
        resolved = [[self._address(member) for member in group]
                    for group in groups]
        self.fabric.partition(resolved)
        self._emit("partition", groups=resolved)

    def heal(self) -> None:
        self.fabric.heal()
        self._emit("heal")

    def set_link(
        self,
        a: Any,
        b: Any,
        drop: float = 0.0,
        delay: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        corrupt: float = 0.0,
        reorder_window: float = 0.002,
    ) -> None:
        a, b = self._address(a), self._address(b)
        self.fabric.set_link(
            a, b, drop=drop, delay=delay, duplicate=duplicate,
            reorder=reorder, corrupt=corrupt, reorder_window=reorder_window,
        )
        detail: Dict[str, Any] = {"a": a, "b": b, "drop": drop, "delay": delay}
        # Adversarial knobs appear in the event only when set, so legacy
        # plans keep their byte-identical trace records.
        if duplicate > 0.0:
            detail["duplicate"] = duplicate
        if reorder > 0.0:
            detail["reorder"] = reorder
        if corrupt > 0.0:
            detail["corrupt"] = corrupt
        self._emit("link", **detail)

    def clear_link(self, a: Any, b: Any) -> None:
        a, b = self._address(a), self._address(b)
        self.fabric.clear_link(a, b)
        self._emit("link_clear", a=a, b=b)

    # ------------------------------------------------------------------
    def heal_all(self) -> None:
        """End-of-run cleanup: heal partitions, clear links, reboot
        every crashed host, so invariants can be checked on a quiesced
        cluster."""
        self.fabric.heal()
        self.fabric.clear_links()
        for host in self.cluster.hosts:
            if not host.node.up:
                self.reboot_host(host)

    def lost_pids(self) -> Set[int]:
        return {pcb.pid for pcb in self.lost_processes}

    # ------------------------------------------------------------------
    def _emit(self, kind: str, **detail: Any) -> None:
        now = self.cluster.sim.now
        self.log.append(FaultEvent(now, kind, detail))
        tracer = self.cluster.tracer
        if tracer.enabled:
            tracer.emit(now, "faults", kind, **detail)
