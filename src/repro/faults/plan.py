"""Fault plans: what breaks, when.

A :class:`FaultPlan` is an ordered script of :class:`FaultAction`
entries over *simulated* time.  Plans are plain data — building one has
no side effects; a :class:`~repro.faults.FaultInjector` executes it
against a cluster.  Plans can be written by hand (the builder methods
chain) or generated reproducibly from the cluster's seeded RNG streams
with :meth:`FaultPlan.random`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

__all__ = ["FaultAction", "FaultPlan", "FAULT_KINDS"]

#: Every action kind an injector knows how to apply.
FAULT_KINDS = (
    "host_crash",
    "host_reboot",
    "migd_kill",
    "migd_restart",
    "server_crash",
    "server_restart",
    "partition",
    "heal",
    "link",
    "link_clear",
)


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault: at ``time``, do ``kind`` to ``target``."""

    time: float
    kind: str
    target: Any = None
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.time < 0.0:
            raise ValueError(f"fault scheduled before t=0: {self.time}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}"
            )


class FaultPlan:
    """An ordered fault script (builder methods chain)."""

    def __init__(self, actions: Sequence[FaultAction] = ()):
        self.actions: List[FaultAction] = list(actions)

    def __len__(self) -> int:
        return len(self.actions)

    def add(self, time: float, kind: str, target: Any = None, **params: Any) -> "FaultPlan":
        self.actions.append(FaultAction(time, kind, target, params))
        return self

    def sorted_actions(self) -> List[FaultAction]:
        """Execution order: by time, ties broken by insertion order."""
        order = sorted(
            range(len(self.actions)), key=lambda i: (self.actions[i].time, i)
        )
        return [self.actions[i] for i in order]

    # ------------------------------------------------------------------
    # Builders (target: a Host/ServerHost, its name, or its address)
    # ------------------------------------------------------------------
    def host_crash(self, time: float, host: Any) -> "FaultPlan":
        return self.add(time, "host_crash", host)

    def host_reboot(self, time: float, host: Any) -> "FaultPlan":
        return self.add(time, "host_reboot", host)

    def host_outage(self, time: float, host: Any, duration: float) -> "FaultPlan":
        """Crash at ``time``, reboot ``duration`` seconds later."""
        return self.host_crash(time, host).host_reboot(time + duration, host)

    def migd_kill(self, time: float) -> "FaultPlan":
        return self.add(time, "migd_kill")

    def migd_restart(self, time: float) -> "FaultPlan":
        return self.add(time, "migd_restart")

    def migd_outage(self, time: float, duration: float) -> "FaultPlan":
        return self.migd_kill(time).migd_restart(time + duration)

    def server_crash(self, time: float, server: Any = 0) -> "FaultPlan":
        return self.add(time, "server_crash", server)

    def server_restart(self, time: float, server: Any = 0) -> "FaultPlan":
        return self.add(time, "server_restart", server)

    def server_outage(self, time: float, duration: float, server: Any = 0) -> "FaultPlan":
        return self.server_crash(time, server).server_restart(time + duration, server)

    def partition(self, time: float, *groups: Sequence[Any]) -> "FaultPlan":
        return self.add(time, "partition", [list(g) for g in groups])

    def heal(self, time: float) -> "FaultPlan":
        return self.add(time, "heal")

    def link(
        self,
        time: float,
        a: Any,
        b: Any,
        drop: float = 0.0,
        delay: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        corrupt: float = 0.0,
        reorder_window: float = 0.002,
    ) -> "FaultPlan":
        """Impair the a<->b link: loss, added latency, and (adversarial)
        per-message duplication, reordering skew, payload corruption."""
        params: Dict[str, Any] = {"drop": drop, "delay": delay}
        # Adversarial knobs travel only when set, so legacy plans apply
        # (and trace) byte-identically.
        if duplicate > 0.0:
            params["duplicate"] = duplicate
        if reorder > 0.0:
            params["reorder"] = reorder
            params["reorder_window"] = reorder_window
        if corrupt > 0.0:
            params["corrupt"] = corrupt
        return self.add(time, "link", (a, b), **params)

    def link_clear(self, time: float, a: Any, b: Any) -> "FaultPlan":
        return self.add(time, "link_clear", (a, b))

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        streams,
        hosts: Sequence[Any],
        duration: float,
        mtbf: float = 120.0,
        mean_outage: float = 8.0,
        link_glitches: int = 0,
        max_glitch_drop: float = 0.4,
        adversarial: bool = False,
        stream_name: str = "faults.plan",
    ) -> "FaultPlan":
        """A seeded random churn plan (MOSIX-style: churn is normal).

        ``streams`` is a :class:`~repro.sim.RandomStreams`; all draws
        come from its ``stream_name`` substream, so the same seed always
        yields the same plan.  Each host crashes with exponential
        inter-arrival times (mean ``mtbf``) and reboots after an
        exponential outage (mean ``mean_outage``); optionally
        ``link_glitches`` random loss/delay episodes are sprinkled over
        random host pairs.  With ``adversarial=True`` each glitch also
        draws duplication, reordering, and corruption probabilities
        (draws happen only then, so legacy plans consume the identical
        RNG sequence).
        """
        rng = streams.stream(stream_name)
        plan = cls()
        for host in hosts:
            t = float(rng.exponential(mtbf))
            while t < duration:
                outage = max(0.1, float(rng.exponential(mean_outage)))
                plan.host_outage(round(t, 6), host, round(outage, 6))
                t += outage + float(rng.exponential(mtbf))
        if link_glitches and len(hosts) >= 2:
            for _ in range(link_glitches):
                i, j = rng.choice(len(hosts), size=2, replace=False)
                start = float(rng.uniform(0.0, max(duration - 1.0, 0.0)))
                length = float(rng.uniform(1.0, max(2.0, duration / 8.0)))
                drop = float(rng.uniform(0.05, max_glitch_drop))
                delay = float(rng.uniform(0.0, 0.005))
                a, b = hosts[int(i)], hosts[int(j)]
                duplicate = reorder = corrupt = 0.0
                if adversarial:
                    duplicate = round(float(rng.uniform(0.0, 0.3)), 6)
                    reorder = round(float(rng.uniform(0.0, 0.3)), 6)
                    corrupt = round(float(rng.uniform(0.0, 0.15)), 6)
                plan.link(round(start, 6), a, b, drop=round(drop, 6),
                          delay=round(delay, 6), duplicate=duplicate,
                          reorder=reorder, corrupt=corrupt)
                plan.link_clear(round(min(start + length, duration), 6), a, b)
        return plan
