"""Link-state fabric: partitions, per-link loss and delay.

The LAN's only failure mode used to be the binary ``node.up`` flag.
:class:`LinkFabric` adds the network failures the thesis's protocols
must survive — partitions between host groups, probabilistic packet
loss, latency spikes on individual links — as state *beside* the LAN:
:class:`~repro.net.Lan` consults ``lan.fabric`` with one ``is not
None`` test per message, so a fault-free run pays nothing.

Semantics, by traffic class:

* **unicast messages** (``Lan.send``): a partition raises
  :class:`~repro.net.NetworkPartitionedError` before any wire time is
  spent; a loss draw consumes the wire time but delivers nothing (the
  caller discovers it by timeout); per-link delay is added to the
  propagation latency.
* **bulk transfers** (``Lan.transfer``): partitions raise; per-link
  delay applies.  Loss is not drawn per transfer — bulk data rides a
  retransmitting transport, so model its loss as a delay spike instead.
* **broadcast** (``Lan.broadcast``): receivers behind a partition or a
  per-receiver loss draw simply miss the message.

All randomness comes from a ``numpy`` generator handed in by the
caller (the injector passes ``cluster.rng.stream("faults.net")``), so
a fixed seed reproduces the exact same drop pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..net.lan import NetworkPartitionedError
from ..sim import Tracer

__all__ = ["LinkFabric", "LinkState"]


@dataclass
class LinkState:
    """Per-link impairment: loss probability and extra one-way delay."""

    drop: float = 0.0
    delay: float = 0.0


class LinkFabric:
    """Mutable connectivity state consulted by the LAN on every message."""

    def __init__(self, rng=None, tracer: Optional[Tracer] = None):
        if rng is None:
            import numpy as np

            rng = np.random.default_rng(0)
        self.rng = rng
        self.tracer = tracer if tracer is not None else Tracer()
        #: address -> partition group id; ``None`` means fully connected.
        #: Addresses not named in any group share one residual group.
        self._groups: Optional[Dict[int, int]] = None
        self._links: Dict[Tuple[int, int], LinkState] = {}
        #: Counters for the invariant checker and reports.
        self.blocked = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # Configuration (driven by the injector)
    # ------------------------------------------------------------------
    @staticmethod
    def _key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Split the network: only hosts in the same group can talk.

        Hosts not named in any group fall into one shared residual
        group (so ``partition([[a]])`` isolates ``a`` from everyone
        else, servers included).
        """
        mapping: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for address in group:
                mapping[address] = index
        self._groups = mapping

    def heal(self) -> None:
        """Remove any partition; per-link impairments are unaffected."""
        self._groups = None

    def set_link(self, a: int, b: int, drop: float = 0.0, delay: float = 0.0) -> None:
        """Impair the (undirected) link between ``a`` and ``b``."""
        if not 0.0 <= drop < 1.0:
            raise ValueError(f"drop probability must be in [0, 1): {drop}")
        if delay < 0.0:
            raise ValueError(f"negative link delay: {delay}")
        self._links[self._key(a, b)] = LinkState(drop=drop, delay=delay)

    def clear_link(self, a: int, b: int) -> None:
        self._links.pop(self._key(a, b), None)

    def clear_links(self) -> None:
        self._links.clear()

    @property
    def partitioned(self) -> bool:
        return self._groups is not None

    def connected(self, a: int, b: int) -> bool:
        groups = self._groups
        if groups is None:
            return True
        return groups.get(a, -1) == groups.get(b, -1)

    # ------------------------------------------------------------------
    # Queries from the LAN hot paths
    # ------------------------------------------------------------------
    def unicast(self, src: int, dst: int) -> Tuple[bool, float]:
        """Verdict for one message: ``(deliver, extra_delay)``.

        Raises :class:`NetworkPartitionedError` when no path exists.
        """
        if not self.connected(src, dst):
            self.blocked += 1
            raise NetworkPartitionedError(
                f"no path from {src} to {dst} (network partitioned)"
            )
        link = self._links.get((src, dst) if src <= dst else (dst, src))
        if link is None:
            return True, 0.0
        if link.drop > 0.0 and self.rng.random() < link.drop:
            self.dropped += 1
            return False, link.delay
        return True, link.delay

    def bulk(self, src: int, dst: int) -> float:
        """Extra delay for a bulk transfer; raises when partitioned."""
        if not self.connected(src, dst):
            self.blocked += 1
            raise NetworkPartitionedError(
                f"no path from {src} to {dst} (network partitioned)"
            )
        link = self._links.get((src, dst) if src <= dst else (dst, src))
        return link.delay if link is not None else 0.0

    def multicast(self, src: int, dst: int) -> bool:
        """Whether one broadcast receiver gets its copy."""
        if not self.connected(src, dst):
            self.blocked += 1
            return False
        link = self._links.get((src, dst) if src <= dst else (dst, src))
        if link is not None and link.drop > 0.0 and self.rng.random() < link.drop:
            self.dropped += 1
            return False
        return True
