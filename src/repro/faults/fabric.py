"""Link-state fabric: partitions, per-link loss, delay — and adversity.

The LAN's only failure mode used to be the binary ``node.up`` flag.
:class:`LinkFabric` adds the network failures the thesis's protocols
must survive — partitions between host groups, probabilistic packet
loss, latency spikes, and the adversarial trio (duplication,
reordering, payload corruption) on individual links — as state
*beside* the LAN: :class:`~repro.net.Lan` consults ``lan.fabric`` with
one ``is not None`` test per message, so a fault-free run pays nothing.

Semantics, by traffic class:

* **unicast messages** (``Lan.send``): a partition raises
  :class:`~repro.net.NetworkPartitionedError` before any wire time is
  spent; a loss draw consumes the wire time but delivers nothing (the
  caller discovers it by timeout); per-link delay is added to the
  propagation latency.  A *duplicate* draw delivers a second copy of
  the message after a short extra lag, a *reorder* draw adds a random
  skew so the message can overtake later traffic, and a *corrupt* draw
  flags the delivered copy so the receiver's checksum check discards
  it (``RpcPort`` counts and drops flagged requests).
* **bulk transfers** (``Lan.transfer``): partitions raise; per-link
  delay applies.  Loss is not drawn per transfer — bulk data rides a
  retransmitting transport, so model its loss as a delay spike instead.
* **broadcast** (``Lan.broadcast``): receivers behind a partition or a
  per-receiver loss draw simply miss the message.

All randomness comes from a ``numpy`` generator handed in by the
caller (the injector passes ``cluster.rng.stream("faults.net")``), so
a fixed seed reproduces the exact same drop pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..net.lan import NetworkPartitionedError
from ..sim import Tracer

__all__ = ["LinkFabric", "LinkState", "UnicastVerdict"]


@dataclass
class LinkState:
    """Per-link impairment: loss/duplication/reordering/corruption
    probabilities and extra one-way delay."""

    drop: float = 0.0
    delay: float = 0.0
    #: Probability a delivered message is delivered twice.
    duplicate: float = 0.0
    #: Probability a delivered message picks up a random extra skew in
    #: ``(0, reorder_window]`` so it can overtake later traffic.
    reorder: float = 0.0
    #: Probability a delivered copy arrives flagged corrupt (the
    #: receiver's checksum check discards it).
    corrupt: float = 0.0
    #: Upper bound of the reorder skew / duplicate lag draws (seconds).
    reorder_window: float = 0.002

    @property
    def adversarial(self) -> bool:
        return (self.duplicate > 0.0 or self.reorder > 0.0
                or self.corrupt > 0.0)


@dataclass
class UnicastVerdict:
    """Full fabric verdict for one unicast message (``Lan.send``)."""

    deliver: bool = True
    delay: float = 0.0
    #: Extra copies to deliver (0 or 1), each lagging ``dup_delay``
    #: behind the original; ``dup_corrupt`` flags the copy.
    duplicates: int = 0
    dup_delay: float = 0.0
    dup_corrupt: bool = False
    #: The original delivered copy arrives corrupted.
    corrupt: bool = False


class LinkFabric:
    """Mutable connectivity state consulted by the LAN on every message."""

    def __init__(self, rng=None, tracer: Optional[Tracer] = None):
        if rng is None:
            import numpy as np

            rng = np.random.default_rng(0)
        self.rng = rng
        self.tracer = tracer if tracer is not None else Tracer()
        #: address -> partition group id; ``None`` means fully connected.
        #: Addresses not named in any group share one residual group.
        self._groups: Optional[Dict[int, int]] = None
        self._links: Dict[Tuple[int, int], LinkState] = {}
        #: Counters for the invariant checker and reports.
        self.blocked = 0
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.corrupted = 0

    # ------------------------------------------------------------------
    # Configuration (driven by the injector)
    # ------------------------------------------------------------------
    @staticmethod
    def _key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Split the network: only hosts in the same group can talk.

        Hosts not named in any group fall into one shared residual
        group (so ``partition([[a]])`` isolates ``a`` from everyone
        else, servers included).
        """
        mapping: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for address in group:
                mapping[address] = index
        self._groups = mapping

    def heal(self) -> None:
        """Remove any partition; per-link impairments are unaffected."""
        self._groups = None

    def set_link(
        self,
        a: int,
        b: int,
        drop: float = 0.0,
        delay: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        corrupt: float = 0.0,
        reorder_window: float = 0.002,
    ) -> None:
        """Impair the (undirected) link between ``a`` and ``b``."""
        if not 0.0 <= drop < 1.0:
            raise ValueError(f"drop probability must be in [0, 1): {drop}")
        if delay < 0.0:
            raise ValueError(f"negative link delay: {delay}")
        for name, prob in (("duplicate", duplicate), ("reorder", reorder),
                           ("corrupt", corrupt)):
            if not 0.0 <= prob < 1.0:
                raise ValueError(
                    f"{name} probability must be in [0, 1): {prob}"
                )
        if reorder_window <= 0.0:
            raise ValueError(f"reorder window must be positive: {reorder_window}")
        self._links[self._key(a, b)] = LinkState(
            drop=drop, delay=delay, duplicate=duplicate, reorder=reorder,
            corrupt=corrupt, reorder_window=reorder_window,
        )

    def clear_link(self, a: int, b: int) -> None:
        self._links.pop(self._key(a, b), None)

    def clear_links(self) -> None:
        self._links.clear()

    @property
    def partitioned(self) -> bool:
        return self._groups is not None

    def connected(self, a: int, b: int) -> bool:
        groups = self._groups
        if groups is None:
            return True
        return groups.get(a, -1) == groups.get(b, -1)

    # ------------------------------------------------------------------
    # Queries from the LAN hot paths
    # ------------------------------------------------------------------
    def unicast(self, src: int, dst: int) -> Tuple[bool, float]:
        """Compact verdict for one message: ``(deliver, extra_delay)``.

        Raises :class:`NetworkPartitionedError` when no path exists.
        The draw sequence is identical to :meth:`unicast_effects`, so
        mixing the two APIs keeps traces reproducible.
        """
        verdict = self.unicast_effects(src, dst)
        if verdict is None:
            return True, 0.0
        return verdict.deliver, verdict.delay

    def unicast_effects(self, src: int, dst: int) -> Optional[UnicastVerdict]:
        """Full verdict for one message; ``None`` means clean delivery.

        Raises :class:`NetworkPartitionedError` when no path exists.
        Returning ``None`` on the no-impairment path keeps the per-
        message cost of an installed-but-idle fabric to a dict probe.
        """
        if not self.connected(src, dst):
            self.blocked += 1
            raise NetworkPartitionedError(
                f"no path from {src} to {dst} (network partitioned)"
            )
        link = self._links.get((src, dst) if src <= dst else (dst, src))
        if link is None:
            return None
        if link.drop > 0.0 and self.rng.random() < link.drop:
            self.dropped += 1
            return UnicastVerdict(deliver=False, delay=link.delay)
        verdict = UnicastVerdict(deliver=True, delay=link.delay)
        # Guard every adversarial draw on its probability so a plain
        # loss/delay link consumes exactly the pre-existing draw
        # sequence (golden traces stay byte-identical).
        if link.reorder > 0.0 and self.rng.random() < link.reorder:
            self.reordered += 1
            verdict.delay += float(self.rng.uniform(0.0, link.reorder_window))
        if link.corrupt > 0.0 and self.rng.random() < link.corrupt:
            self.corrupted += 1
            verdict.corrupt = True
        if link.duplicate > 0.0 and self.rng.random() < link.duplicate:
            self.duplicated += 1
            verdict.duplicates = 1
            verdict.dup_delay = float(self.rng.uniform(0.0, link.reorder_window))
            if link.corrupt > 0.0 and self.rng.random() < link.corrupt:
                self.corrupted += 1
                verdict.dup_corrupt = True
        return verdict

    def bulk(self, src: int, dst: int) -> float:
        """Extra delay for a bulk transfer; raises when partitioned."""
        if not self.connected(src, dst):
            self.blocked += 1
            raise NetworkPartitionedError(
                f"no path from {src} to {dst} (network partitioned)"
            )
        link = self._links.get((src, dst) if src <= dst else (dst, src))
        return link.delay if link is not None else 0.0

    def multicast(self, src: int, dst: int) -> bool:
        """Whether one broadcast receiver gets its copy."""
        if not self.connected(src, dst):
            self.blocked += 1
            return False
        link = self._links.get((src, dst) if src <= dst else (dst, src))
        if link is not None and link.drop > 0.0 and self.rng.random() < link.drop:
            self.dropped += 1
            return False
        return True
