"""The exhaustive crash matrix over the migration transaction.

The transactional protocol in :mod:`repro.migration.mechanism` claims
that a fault at *any* point of a migration leaves the cluster with
exactly one live copy of the process and nothing leaked.  This module
tests that claim literally: one **cell** per element of

    {source, target, home, FS server} x {crash, partition, flaky}
                                      x every txn-journal step boundary

(:data:`~repro.migration.TXN_STEPS` — 11 boundaries, so 132 cells).
Each cell builds a fresh three-workstation cluster, starts a defensive
victim process on its *home* host with an open scratch file, migrates
it once (home → source) so every protocol role is a distinct machine,
then arms the journal's synchronous ``on_step`` hook and migrates again
(source → target).  The instant the armed step is journaled the fault
fires: a full host crash (rebooted a few seconds later, inside the
detection window), a network partition isolating the victim machine
(healed before the ticket lease can expire), or an adversarial *flaky*
episode where every link touching the victim starts duplicating,
reordering and corrupting messages — the migration must still land
exactly once, carried by the RPC layer's checksums, request ids and
server-side dedup cache.  Right at that instant the
cell runs :meth:`~repro.faults.InvariantChecker.audit_in_flight` —
exactly one runnable copy cluster-wide, inactive lease-held copies
allowed — and after a quiesce period long enough for every lease TTL,
retry loop, recovery and repair daemon to drain, it runs the full
quiesced audit: nothing lost, nothing duplicated, no leaked tickets,
stream references or journal entries.

Determinism is part of the contract: a cell draws no randomness beyond
the cluster seed, so a fixed seed and a fixed cell list reproduce a
byte-identical trace — :func:`run_matrix` fingerprints every cell and
the golden test runs the matrix twice and compares.

``python -m repro chaos --crash-matrix`` runs the matrix from the
command line; ``--cells N`` bounds it to every ``ceil(132/N)``-th cell
for the CI smoke.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..cluster import SpriteCluster
from ..fs import OpenMode
from ..migration import TXN_STEPS, MigrationAbandoned, MigrationRefused
from ..sim import Effect, Sleep, spawn
from ..snapshot import SweepRunner
from .injector import FaultInjector
from .invariants import InvariantChecker
from .chaos import trace_fingerprint

__all__ = [
    "MATRIX_VICTIMS",
    "MATRIX_KINDS",
    "CellResult",
    "MatrixReport",
    "build_matrix_base",
    "matrix_cells",
    "run_cell",
    "run_matrix",
]

#: Which machine the fault hits.  ``source``/``target`` are the two
#: ends of the measured migration, ``home`` is the third-party home
#: kernel keeping the shadow, ``fs`` is the file server holding the
#: victim's scratch file (and every migrated stream reference).
MATRIX_VICTIMS = ("source", "target", "home", "fs")

#: ``crash`` = full machine crash (volatile state lost, reboot after
#: :data:`REBOOT_AFTER`); ``partition`` = the machine drops off the
#: network without losing state (healed after :data:`HEAL_AFTER`);
#: ``flaky`` = every link to the machine starts duplicating, reordering
#: and corrupting messages (cleared after :data:`FLAKY_CLEAR`) — the
#: adversarial-network case the exactly-once RPC layer must absorb.
MATRIX_KINDS = ("crash", "partition", "flaky")

#: Reboot delay after a crash — shorter than the default crash-detection
#: delay (10 s), so cells exercise the "came back before the survivors
#: noticed" path as well as post-detection recovery.
REBOOT_AFTER = 4.0

#: Partition heal delay — shorter than the ticket TTL (30 s), so a
#: partitioned transfer may still resolve its lease rather than always
#: timing out.
HEAL_AFTER = 12.0

#: How long a ``flaky`` cell's adversarial links stay impaired — long
#: enough to cover the whole transfer (duplicated commits, corrupted
#: installs, reordered replies), short enough to quiesce well inside
#: the cell horizon.
FLAKY_CLEAR = 20.0

#: Per-message probabilities a ``flaky`` cell applies to every link of
#: the victim machine.
FLAKY_DUPLICATE = 0.3
FLAKY_REORDER = 0.25
FLAKY_CORRUPT = 0.1

#: Sim seconds a cell runs after arming; long enough for the fault
#: (fires within the first migration seconds), every retry/backoff
#: loop, a full lease TTL, and the recovery daemons to drain.
CELL_HORIZON = 150.0


def matrix_cells(
    steps: Sequence[str] = TXN_STEPS,
    victims: Sequence[str] = MATRIX_VICTIMS,
    kinds: Sequence[str] = MATRIX_KINDS,
) -> List[Tuple[str, str, str]]:
    """Every (step, victim, kind) cell, in deterministic order."""
    return [
        (step, victim, kind)
        for step in steps
        for victim in victims
        for kind in kinds
    ]


@dataclass
class CellResult:
    """One cell's verdict: what the fault did and what the audits said."""

    step: str
    victim: str
    kind: str
    #: ``migrated`` / ``refused: <why>`` / ``abandoned`` (source crashed
    #: under the driving task) / ``not-fired`` (armed step never reached).
    outcome: str = "not-fired"
    #: Sim time the fault fired (0 when it never did).
    fired_at: float = 0.0
    #: Inactive (installed-but-unactivated) copies at the fault instant.
    inactive_at_fault: int = 0
    #: Inactive copies at quiesce — must be zero (leases drained).
    inactive_at_quiesce: int = 0
    #: ``audit_in_flight`` violations at the fault instant.
    in_flight_violations: List[str] = field(default_factory=list)
    #: Full quiesced-audit violations.
    violations: List[str] = field(default_factory=list)
    #: SHA-256 of the cell's full trace.
    fingerprint: str = ""

    @property
    def clean(self) -> bool:
        return (
            not self.violations
            and not self.in_flight_violations
            and self.inactive_at_quiesce == 0
            and self.outcome != "not-fired"
        )

    def to_dict(self) -> Dict:
        return {
            "step": self.step,
            "victim": self.victim,
            "kind": self.kind,
            "outcome": self.outcome,
            "fired_at": self.fired_at,
            "inactive_at_fault": self.inactive_at_fault,
            "inactive_at_quiesce": self.inactive_at_quiesce,
            "in_flight_violations": self.in_flight_violations,
            "violations": self.violations,
            "fingerprint": self.fingerprint,
        }

    def __str__(self) -> str:
        status = "clean" if self.clean else "DIRTY"
        return (
            f"{self.step:<16} {self.victim:<6} {self.kind:<9} "
            f"{status:<5} {self.outcome}"
        )


@dataclass
class MatrixReport:
    """The whole matrix: cells, verdicts, one combined fingerprint."""

    seed: int
    cells: List[CellResult] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(cell.clean for cell in self.cells)

    @property
    def fingerprint(self) -> str:
        payload = "\n".join(
            f"{c.step}|{c.victim}|{c.kind}|{c.outcome}|{c.fingerprint}"
            for c in self.cells
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "cells": [cell.to_dict() for cell in self.cells],
            "clean": self.clean,
            "fingerprint": self.fingerprint,
        }


def _victim_program(proc, scratch: str):
    """The migrated guinea pig: computes forever, keeps a scratch file
    open (so every cell moves a stream), and shrugs off I/O failures —
    an FS outage mid-write must not kill it, only slow it down."""
    fd = yield from proc.open(scratch, OpenMode.WRITE | OpenMode.CREATE)
    while True:
        yield from proc.compute(0.25)
        try:
            yield from proc.write(fd, 512)
        except Exception:  # noqa: BLE001 - infra failure: back off, retry
            yield from proc.compute(0.5)


def build_matrix_base(seed: int = 0) -> SpriteCluster:
    """The shared per-cell prefix: three traced workstations + images.

    Built once per matrix and handed to :class:`SweepRunner`, which
    forks one copy-on-write child per cell — a child starts from an
    image identical to a fresh build, so cell traces (and the matrix
    fingerprint) are the same either way.
    """
    cluster = SpriteCluster(workstations=3, seed=seed, trace=True)
    cluster.standard_images()
    return cluster


def run_cell(
    step: str,
    victim: str,
    kind: str,
    seed: int = 0,
    horizon: float = CELL_HORIZON,
    cluster: Optional[SpriteCluster] = None,
) -> CellResult:
    """Run one matrix cell; see the module docstring.

    ``cluster`` is an optional pre-built (never run) base — normally a
    fork handed in by :func:`run_matrix`; when omitted the cell builds
    its own via :func:`build_matrix_base`.
    """
    if step not in TXN_STEPS:
        raise ValueError(f"unknown txn step {step!r}")
    if victim not in MATRIX_VICTIMS:
        raise ValueError(f"unknown victim {victim!r}")
    if kind not in MATRIX_KINDS:
        raise ValueError(f"unknown fault kind {kind!r}")

    result = CellResult(step=step, victim=victim, kind=kind)
    if cluster is None:
        cluster = build_matrix_base(seed)
    injector = FaultInjector(cluster)
    checker = InvariantChecker(cluster, injector)
    home, source, target = cluster.hosts[0], cluster.hosts[1], cluster.hosts[2]
    server_host = cluster.server_hosts[0]
    victim_node = {
        "source": source,
        "target": target,
        "home": home,
        "fs": server_host,
    }[victim]

    pcb, _ctx = home.spawn_process(
        _victim_program, "/tmp/matrix-scratch", name="matrix-victim"
    )

    def fire_fault(txn, logged_step: str) -> None:
        if result.fired_at or logged_step != step:
            return
        result.fired_at = cluster.sim.now
        if kind == "crash":
            if victim == "fs":
                injector.crash_server(0)
            else:
                injector.crash_host(victim_node)
            spawn(cluster.sim, _recover(), name="matrix-recover", daemon=True)
        elif kind == "partition":
            injector.partition([victim_node.node.address])
            spawn(cluster.sim, _heal(), name="matrix-heal", daemon=True)
        else:  # flaky: impair every link touching the victim machine
            for peer in _peer_addresses():
                injector.set_link(
                    victim_node.node.address, peer,
                    duplicate=FLAKY_DUPLICATE, reorder=FLAKY_REORDER,
                    corrupt=FLAKY_CORRUPT,
                )
            spawn(cluster.sim, _unflake(), name="matrix-unflake", daemon=True)
        # The in-flight audit, at the crash instant itself.
        violations, inactive = checker.audit_in_flight([pcb.pid])
        result.in_flight_violations = [str(v) for v in violations]
        result.inactive_at_fault = inactive

    def _recover() -> Generator[Effect, None, None]:
        yield Sleep(REBOOT_AFTER)
        if victim == "fs":
            injector.restart_server(0)
        else:
            injector.reboot_host(victim_node)

    def _heal() -> Generator[Effect, None, None]:
        yield Sleep(HEAL_AFTER)
        injector.heal()

    def _peer_addresses() -> List[int]:
        nodes = list(cluster.hosts) + list(cluster.server_hosts)
        return [
            n.node.address for n in nodes
            if n.node.address != victim_node.node.address
        ]

    def _unflake() -> Generator[Effect, None, None]:
        yield Sleep(FLAKY_CLEAR)
        for peer in _peer_addresses():
            injector.clear_link(victim_node.node.address, peer)

    def driver() -> Generator[Effect, None, None]:
        yield Sleep(1.0)
        # Stage the roles: move the process off its home first, so the
        # measured migration has distinct source/target/home machines.
        yield from cluster.managers[home.address].migrate(
            pcb, source.address, reason="setup"
        )
        yield Sleep(0.5)
        cluster.managers[source.address].journal.on_step = fire_fault
        try:
            record = yield from cluster.managers[source.address].migrate(
                pcb, target.address, reason="matrix"
            )
            result.outcome = "migrated" if not record.refused else (
                "refused: " + str(record.detail.get("refusal", "?"))
            )
        except MigrationAbandoned:
            result.outcome = "abandoned"
        except MigrationRefused as err:
            result.outcome = f"refused: {err}"
        finally:
            cluster.managers[source.address].journal.on_step = None

    spawn(cluster.sim, driver(), name="matrix-driver", daemon=True)
    cluster.run(until=horizon)

    # Quiesce: heal anything still broken, give detection/recovery one
    # more full window, then audit.
    injector.heal_all()
    cluster.run(until=horizon + injector.detect_delay + 5.0)

    result.violations = [str(v) for v in checker.check([pcb.pid])]
    quiesce_violations, inactive = checker.audit_in_flight([pcb.pid])
    result.violations.extend(
        "at-quiesce " + str(v) for v in quiesce_violations
    )
    result.inactive_at_quiesce = inactive
    result.fingerprint = trace_fingerprint(cluster.tracer)
    return result


def run_matrix(
    seed: int = 0,
    cells: Optional[Sequence[Tuple[str, str, str]]] = None,
    max_cells: Optional[int] = None,
    horizon: float = CELL_HORIZON,
    workers: int = 1,
) -> MatrixReport:
    """Run the matrix (or a bounded, evenly-spread subset of it).

    ``max_cells`` keeps CI smoke runs cheap without losing coverage
    breadth: it picks every k-th cell of the full ordering, so all
    victims and fault kinds stay represented.

    The per-cell cluster prefix is built **once** and every cell runs
    in a copy-on-write fork of it, up to ``workers`` concurrently
    (:class:`~repro.snapshot.SweepRunner`); results merge in cell
    order, so :attr:`MatrixReport.fingerprint` is byte-identical for
    any ``workers`` value.
    """
    if cells is None:
        cells = matrix_cells()
    cells = list(cells)
    if max_cells is not None and 0 < max_cells < len(cells):
        total = len(cells)
        indices = sorted({(i * total) // max_cells for i in range(max_cells)})
        cells = [cells[i] for i in indices]
    report = MatrixReport(seed=seed)

    def cell_fn(cluster: SpriteCluster, cell: Tuple[str, str, str]) -> CellResult:
        step, victim, kind = cell
        return run_cell(
            step, victim, kind, seed=seed, horizon=horizon, cluster=cluster
        )

    runner = SweepRunner(build_matrix_base(seed), workers=workers)
    report.cells = runner.run(cells, cell_fn)
    return report
