"""Transparent process migration — the paper's primary contribution.

:mod:`.mechanism` implements the transfer protocol (negotiation with
version numbers, safe-point freezing, per-module state packaging, open-
stream hand-off, home-shadow maintenance).  :mod:`.vm` provides the four
virtual-memory transfer policies of §4.2.1.  :mod:`.eviction` reclaims
workstations for returning users.  :mod:`.stats` aggregates telemetry.
"""

from .eviction import EvictionDaemon, EvictionEvent
from .mechanism import MigrationManager, MigrationRecord, MigrationRefused
from .stats import (
    collect_records,
    records_by_reason,
    refusal_reasons,
    summarize_records,
)
from .vm import (
    POLICIES,
    CopyOnReference,
    FlushToServer,
    FullCopy,
    PreCopy,
    VmOutcome,
    VmPolicy,
    make_policy,
)

__all__ = [
    "CopyOnReference",
    "EvictionDaemon",
    "EvictionEvent",
    "FlushToServer",
    "FullCopy",
    "MigrationManager",
    "MigrationRecord",
    "MigrationRefused",
    "POLICIES",
    "PreCopy",
    "VmOutcome",
    "VmPolicy",
    "collect_records",
    "make_policy",
    "records_by_reason",
    "refusal_reasons",
    "summarize_records",
]
