"""Transparent process migration — the paper's primary contribution.

:mod:`.mechanism` implements the transfer protocol (negotiation with
version numbers, safe-point freezing, per-module state packaging, open-
stream hand-off, home-shadow maintenance) as a crash-consistent
transaction; :mod:`.txn` holds the journal and state machine behind its
single commit point.  :mod:`.vm` provides the four virtual-memory
transfer policies of §4.2.1.  :mod:`.eviction` reclaims workstations
for returning users.  :mod:`.stats` aggregates telemetry.
"""

from .eviction import EvictionDaemon, EvictionEvent
from .mechanism import (
    MigrationAbandoned,
    MigrationManager,
    MigrationRecord,
    MigrationRefused,
    TicketLease,
)
from .stats import (
    collect_records,
    records_by_reason,
    refusal_reasons,
    rollback_stats,
    summarize_records,
)
from .txn import (
    TXN_STEPS,
    JournalEntry,
    MigrationJournal,
    MigrationTxn,
    TxnState,
    UndoEntry,
)
from .vm import (
    POLICIES,
    CopyOnReference,
    FlushToServer,
    FullCopy,
    PreCopy,
    VmOutcome,
    VmPolicy,
    make_policy,
)

__all__ = [
    "CopyOnReference",
    "EvictionDaemon",
    "EvictionEvent",
    "FlushToServer",
    "FullCopy",
    "JournalEntry",
    "MigrationAbandoned",
    "MigrationJournal",
    "MigrationManager",
    "MigrationRecord",
    "MigrationRefused",
    "MigrationTxn",
    "POLICIES",
    "PreCopy",
    "TXN_STEPS",
    "TicketLease",
    "TxnState",
    "UndoEntry",
    "VmOutcome",
    "VmPolicy",
    "collect_records",
    "make_policy",
    "records_by_reason",
    "refusal_reasons",
    "rollback_stats",
    "summarize_records",
]
