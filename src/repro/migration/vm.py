"""Virtual-memory transfer policies (thesis §4.2.1).

The literature's four designs, behind one strategy interface so the
mechanism (and benchmark E2) can swap them:

* :class:`FlushToServer` — **Sprite's choice.**  Freeze, write dirty
  pages to the backing file on the file server, resume on the target
  and demand-page from the server.  No residual dependency on the
  source; leverages the network FS that already exists.
* :class:`FullCopy` — Charlotte/LOCUS: freeze and ship the whole image
  source→target.  Simple; freeze time grows linearly with size.
* :class:`PreCopy` — V [TLC85]: copy the image while the process keeps
  running, then freeze and copy what got dirtied; repeat until the
  remainder is small.  Short freezes, more total bytes.
* :class:`CopyOnReference` — Accent [Zay87a]: move only the page tables
  at freeze time; the target faults pages from the *source* on
  reference.  Fastest migration, but the source must keep serving
  pages: a residual dependency for the process's lifetime.

A policy reports what moved when; costs it cannot pay during the
transfer (demand paging after resume) are recorded as *debt* on the VM
and settled by the process's first post-migration computation, which is
when real page faults would trickle in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from ..sim import Effect

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..kernel import Pcb
    from .mechanism import MigrationManager

__all__ = [
    "VmOutcome",
    "VmPolicy",
    "FlushToServer",
    "FullCopy",
    "PreCopy",
    "CopyOnReference",
    "POLICIES",
    "make_policy",
]


@dataclass
class VmOutcome:
    """What a VM policy moved, and when."""

    policy: str
    bytes_before_freeze: int = 0
    bytes_during_freeze: int = 0
    #: Bytes the target will fault in after resume, and from where
    #: ("backing" = file server, "cor" = the source host).
    post_resume_debt: int = 0
    debt_from: Optional[str] = None
    rounds: int = 1
    residual_dependency: bool = False

    @property
    def bytes_total(self) -> int:
        return self.bytes_before_freeze + self.bytes_during_freeze + self.post_resume_debt


class VmPolicy:
    """Strategy interface: two phases around the freeze point."""

    name = "abstract"

    def pre_freeze(
        self, manager: "MigrationManager", pcb: "Pcb", target: int
    ) -> Generator[Effect, None, int]:
        """Work done while the process still runs (pre-copy rounds).

        Returns bytes moved.  Default: nothing.
        """
        return 0
        yield  # pragma: no cover - makes this a generator

    def during_freeze(
        self, manager: "MigrationManager", pcb: "Pcb", target: int
    ) -> Generator[Effect, None, VmOutcome]:
        raise NotImplementedError

    def _page_cpu(self, manager: "MigrationManager", nbytes: int) -> float:
        params = manager.params
        return params.page_handling_cpu * params.pages(nbytes)


class FlushToServer(VmPolicy):
    """Sprite: flush dirty pages to the backing file; demand-page later."""

    name = "flush-to-server"

    def during_freeze(self, manager, pcb, target):
        vm = pcb.vm
        flushed = 0
        if vm.dirty > 0 and vm.backing is not None:
            yield from vm.backing.page_out(vm.dirty)
            flushed = vm.dirty
            vm.clean()
        debt = vm.resident
        vm.evict_resident()
        vm.page_in_debt = debt
        vm.debt_from = "backing"
        return VmOutcome(
            policy=self.name,
            bytes_during_freeze=flushed,
            post_resume_debt=debt,
            debt_from="backing",
            residual_dependency=False,
        )


class FullCopy(VmPolicy):
    """Charlotte/LOCUS: monolithic image transfer inside the freeze."""

    name = "full-copy"

    def during_freeze(self, manager, pcb, target):
        vm = pcb.vm
        nbytes = vm.size
        if nbytes > 0:
            yield from manager.host.cpu.consume(self._page_cpu(manager, nbytes))
            yield from manager.lan.transfer(manager.address, target, nbytes)
            yield from manager.remote_page_install(target, nbytes)
        vm.resident = nbytes
        vm.clean()
        return VmOutcome(
            policy=self.name,
            bytes_during_freeze=nbytes,
            residual_dependency=False,
        )


class PreCopy(VmPolicy):
    """V-system: iterative copy while running, short final freeze.

    The re-dirty rate during a round comes from the process's declared
    ``vm.dirty_rate_hint`` (bytes/second); workloads set it to match
    their behaviour.  Rounds stop when the remainder is under two pages
    or ``max_rounds`` is hit.
    """

    name = "pre-copy"

    def __init__(self, max_rounds: int = 5):
        self.max_rounds = max_rounds
        self._pending_remainder = 0
        self._rounds_done = 0
        self._pre_bytes = 0

    def pre_freeze(self, manager, pcb, target):
        vm = pcb.vm
        remaining = vm.size
        moved = 0
        rounds = 0
        threshold = 2 * manager.params.page_size
        rate = vm.dirty_rate_hint
        while remaining > 0 and rounds < self.max_rounds:
            rounds += 1
            yield from manager.host.cpu.consume(self._page_cpu(manager, remaining))
            start = manager.sim.now
            yield from manager.lan.transfer(manager.address, target, remaining)
            yield from manager.remote_page_install(target, remaining)
            moved += remaining
            round_time = manager.sim.now - start
            redirtied = min(int(rate * round_time), vm.size)
            remaining = redirtied
            if remaining <= threshold:
                break
        self._pending_remainder = remaining
        self._rounds_done = rounds
        self._pre_bytes = moved
        return moved

    def during_freeze(self, manager, pcb, target):
        vm = pcb.vm
        remainder = self._pending_remainder if self._rounds_done else vm.size
        rounds = self._rounds_done or 1
        if remainder > 0:
            yield from manager.host.cpu.consume(self._page_cpu(manager, remainder))
            yield from manager.lan.transfer(manager.address, target, remainder)
            yield from manager.remote_page_install(target, remainder)
        vm.resident = vm.size
        vm.clean()
        outcome = VmOutcome(
            policy=self.name,
            bytes_before_freeze=self._pre_bytes,
            bytes_during_freeze=remainder,
            rounds=rounds + (1 if remainder else 0),
            residual_dependency=False,
        )
        self._pending_remainder = 0
        self._rounds_done = 0
        self._pre_bytes = 0
        return outcome


class CopyOnReference(VmPolicy):
    """Accent/Zayas: ship page tables now, fault pages from the source."""

    name = "copy-on-reference"

    def during_freeze(self, manager, pcb, target):
        vm = pcb.vm
        # Page tables and registers only: covered by the PCB state bytes;
        # charge one page of map data per 1 MB of address space.
        map_bytes = max(1, manager.params.pages(vm.size) * 8)
        yield from manager.lan.transfer(manager.address, target, map_bytes)
        debt = vm.resident
        vm.page_in_debt = debt
        vm.debt_from = "cor"
        vm.cor_source = manager.address
        vm.evict_resident()
        return VmOutcome(
            policy=self.name,
            bytes_during_freeze=map_bytes,
            post_resume_debt=debt,
            debt_from="cor",
            residual_dependency=True,
        )


POLICIES = {
    policy.name: policy
    for policy in (FlushToServer, FullCopy, PreCopy, CopyOnReference)
}


def make_policy(name: str) -> VmPolicy:
    """Instantiate a policy by its registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown VM policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
