"""The process-migration mechanism (thesis ch. 4), run as a transaction.

One :class:`MigrationManager` per host.  A migration runs the protocol
the thesis describes, module by module, but structured as an explicit
two-phase transaction (:mod:`repro.migration.txn`) with a *single
commit point* and an undo log on both ends:

1. **Negotiate** with the target kernel: migration *version numbers*
   must match (§4.5) and the target's acceptance policy must agree.
   Acceptance issues a leased :class:`~repro.kernel.MigrationTicket` —
   the target reserves guest memory under it and reaps everything if no
   commit arrives before the lease expires.
2. **Freeze** the process at a safe point (between compute quanta or at
   kernel-call boundaries; in-flight kernel calls drain first).
3. **Transfer virtual memory** per the configured policy
   (:mod:`repro.migration.vm`).
4. **Package and ship kernel state**: the machine-independent PCB,
   then each open stream via the file system's export/import protocol
   (each export preceded by an intent entry in the undo log).
   ``mig.install`` leaves the copy **inactive** at the target, held in
   a :class:`~repro.kernel.PendingInstall` outside the process table.
5. **Commit**: the source's ``mig.commit`` RPC is the commit point.
   Before it the source's copy is the process (any failure aborts by
   replaying the undo log and the process resumes at the source,
   unharmed); after it the target's copy is the process (the source
   detaches, updates the home's shadow, and closes the lease — duties
   that reboot-time journal recovery re-drives if the source crashes).

Exec-time migration (:meth:`MigrationManager.migrate_for_exec`) skips
step 3 entirely — the address space is about to be replaced — which is
why Sprite migrates at exec whenever it can.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple, Union

from ..config import ClusterParams
from ..fs.errors import FsError
from ..kernel import (
    ExitStatus,
    Host,
    MigrationTicket,
    Pcb,
    PendingInstall,
    ProcState,
    SpriteKernel,
    signals,
)
from ..net import (
    NetworkPartitionedError,
    Reply,
    RetryLaterError,
    RpcError,
    RpcTimeout,
)
from ..obs.spans import (
    MIG_COMMIT,
    MIG_COMMIT_RPC,
    MIG_FREEZE,
    MIG_INSTALL,
    MIG_MIGRATE,
    MIG_NEGOTIATE,
    MIG_STATE_PACK,
    MIG_STREAMS,
    MIG_UPDATE_HOME,
    MIG_VM_PRE,
    MIG_VM_TRANSFER,
    MIG_WAIT_SAFE_POINT,
    Span,
    SpanTracer,
)
from ..sim import Effect, SimClock, SimEvent, Sleep, Tracer, first, spawn
from .packaging import (
    discard_imports,
    export_streams,
    import_streams,
    install_payload,
    state_bytes,
    stream_bytes,
)
from .txn import MigrationJournal, MigrationTxn, TxnState
from .vm import FlushToServer, VmOutcome, VmPolicy, make_policy

__all__ = [
    "MigrationManager",
    "MigrationRecord",
    "MigrationRefused",
    "MigrationAbandoned",
    "TicketLease",
]


class MigrationRefused(RpcError):
    """The target kernel declined the migration (version/policy), or the
    transaction aborted — either way the process did not move."""


class MigrationAbandoned(MigrationRefused):
    """The *source* crashed mid-transaction: the driving task must stop
    touching the transaction — reboot-time journal recovery owns it."""


@dataclass
class MigrationRecord:
    """Telemetry for one completed (or refused) migration."""

    pid: int
    name: str
    source: int
    target: int
    reason: str
    policy: str
    started: float
    ended: float = 0.0
    freeze_started: float = 0.0
    freeze_ended: float = 0.0
    #: When the commit point was crossed (0 for migrations that aborted
    #: before reaching it).
    commit_started: float = 0.0
    vm: Optional[VmOutcome] = None
    streams_moved: int = 0
    stream_bytes: int = 0
    state_bytes: int = 0
    refused: bool = False
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return self.ended - self.started

    @property
    def freeze_time(self) -> float:
        return self.freeze_ended - self.freeze_started

    @property
    def commit_time(self) -> float:
        """Frozen time spent past the commit point (post-commit duties)."""
        if not self.commit_started:
            return 0.0
        return self.freeze_ended - self.commit_started


@dataclass
class TicketLease:
    """Target-side record of one issued migration ticket.

    Lives in ``MigrationManager._tickets`` from ``mig.negotiate`` until
    ``mig.close`` / ``mig.release`` / lease expiry.  ``install`` holds
    the inactive copy between ``mig.install`` and the commit point.
    """

    pid: int
    ticket_id: int
    expires: float
    reserved_bytes: int = 0
    #: issued -> installing -> installed -> activated -> closed
    #: (or released / reaped on the abort paths).
    status: str = "issued"
    install: Optional[PendingInstall] = None


#: Signature of a target-side acceptance policy (load sharing installs
#: one that refuses when the host is no longer idle).
AcceptHook = Callable[[Dict[str, Any]], bool]


class MigrationManager:
    """Per-host migration engine; also the target-side RPC services."""

    def __init__(
        self,
        host: Host,
        managers: Dict[int, "MigrationManager"],
        policy: Union[str, VmPolicy, None] = None,
        accept_hook: Optional[AcceptHook] = None,
    ):
        self.host = host
        self.kernel: SpriteKernel = host.kernel
        self.kernel.migration = self
        if policy is None:
            policy = FlushToServer()
        elif isinstance(policy, str):
            policy = make_policy(policy)
        self.policy: VmPolicy = policy
        self.accept_hook = accept_hook
        self.records: List[MigrationRecord] = []
        #: Span tracer shared cluster-wide (one per Tracer); disabled by
        #: default, so span sites cost one branch each.
        self.spans: SpanTracer = SpanTracer.for_tracer(host.tracer)
        #: Metrics hook, set by ``ClusterObservability.install``; when
        #: ``None`` (the default) no metrics work happens at all.
        self.obs: Optional[Any] = None
        #: Accept timestamps of migrations not yet installed; acceptance
        #: policies count these against guest caps (flood prevention,
        #: [BSW89]).  Entries expire so an aborted transfer cannot leak
        #: a permanent reservation.
        self._pending_accepts: List[float] = []
        #: How long an accepted-but-uninstalled reservation is honoured.
        self.pending_accept_ttl = 30.0
        #: Write-ahead journal (persistent: survives host.crash).
        self.journal = MigrationJournal(
            host.name, enabled=host.params.migration_txn_journal
        )
        self.journal.bind_clock(SimClock(host.sim))
        #: Target-side lease registry: (pid, ticket_id) -> lease.
        self._tickets: Dict[Tuple[int, int], TicketLease] = {}
        self._ticket_seq = 0
        #: Guest memory currently reserved under unexpired leases.
        self.reserved_bytes = 0
        #: Overload backpressure: in-flight outgoing migrations (capped
        #: by ``params.migration_max_outgoing`` when > 0) and refusal
        #: counters for both directions of the cap.
        self.outgoing_in_flight = 0
        self.refused_outgoing_cap = 0
        self.refused_incoming_busy = 0
        #: Aborts whose undo log could not be fully replayed inline
        #: (a background repair task owns the remainder).
        self.rollback_incomplete = 0
        #: Evictions that failed (their refusal is swallowed so one bad
        #: victim cannot strand the others on a reclaimed host).
        self.eviction_failures = 0
        #: Bumped by ``on_crash``: driving tasks notice mid-protocol
        #: that their host died under them and abandon the transaction.
        self._crash_epoch = 0
        #: Per-peer crash epochs (bumped when the cluster *detects* a
        #: peer's crash) — the escape hatch for retry-forever loops.
        self._peer_epochs: Dict[int, int] = {}
        self._managers = managers
        managers[host.address] = self
        self.host.rpc.register("mig.negotiate", self._rpc_negotiate)
        self.host.rpc.register("mig.install", self._rpc_install)
        self.host.rpc.register("mig.commit", self._rpc_commit)
        self.host.rpc.register("mig.release", self._rpc_release)
        self.host.rpc.register("mig.renew", self._rpc_renew)
        self.host.rpc.register("mig.resolve", self._rpc_resolve)
        self.host.rpc.register("mig.close", self._rpc_close)
        self.host.rpc.register("mig.update_location", self._rpc_update_location)
        self.host.rpc.register("mig.cor_fetch", self._rpc_cor_fetch,
                       idempotent=True)

    # ------------------------------------------------------------------
    @property
    def sim(self):
        return self.host.sim

    @property
    def lan(self):
        return self.host.lan

    @property
    def params(self) -> ClusterParams:
        return self.host.params

    @property
    def address(self) -> int:
        return self.host.address

    @property
    def tracer(self) -> Tracer:
        return self.host.tracer

    def remote_page_install(self, target: int, nbytes: int) -> Generator[Effect, None, None]:
        """Charge the target's CPU for receiving/installing pages.

        Wire time is charged separately by the caller; this models the
        destination kernel's copy/map work during a VM transfer.
        """
        peer = self._managers[target]
        yield from peer.host.cpu.consume(
            self.params.page_handling_cpu * self.params.pages(nbytes)
        )

    # ------------------------------------------------------------------
    # Crash / reboot lifecycle (wired from SpriteKernel)
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """Volatile migration state dies with the host.

        The journal (modeled as written through the file system)
        survives; the lease registry, reservations, and pending accepts
        do not — exactly why an unexpired lease at a crashed target is
        simply gone and the source must treat silence as abort-or-
        resolve, never as success.
        """
        self._crash_epoch += 1
        self._tickets.clear()
        self._pending_accepts.clear()
        self.reserved_bytes = 0

    def on_reboot(self) -> None:
        """Replay the journal: resolve every transaction left open."""
        if not self.journal.enabled:
            return
        txns = self.journal.open_txns()
        if not txns:
            return
        spawn(
            self.sim,
            self._recover_journal(txns, self._crash_epoch),
            name=f"mig-recovery:{self.host.name}",
            daemon=True,
        )

    def peer_crashed(self, address: int) -> None:
        """The cluster detected ``address`` crashed (kernel callback)."""
        self._peer_epochs[address] = self._peer_epochs.get(address, 0) + 1

    def _abandon_if_crashed(
        self, epoch: int, txn: Optional[MigrationTxn] = None
    ) -> None:
        """Raise if this host crashed since the transaction captured
        ``epoch`` — the driving task must not touch the txn again."""
        if self._crash_epoch != epoch or not self.host.node.up:
            raise MigrationAbandoned(
                f"host {self.host.name} crashed mid-migration"
                + (f" (txn {txn.txn_id})" if txn is not None else "")
            )

    def _journal_step(
        self, txn: MigrationTxn, epoch: int, name: str, **detail: Any
    ) -> None:
        """Journal a step, then notice if the crash-matrix hook (which
        fires synchronously inside ``journal.log``) crashed this host."""
        txn.step(name, **detail)
        self._abandon_if_crashed(epoch, txn)

    def _peer_epoch(self, address: int) -> int:
        return self._peer_epochs.get(address, 0)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def migrate(
        self, pcb: Pcb, target: int, reason: str = "manual"
    ) -> Generator[Effect, None, MigrationRecord]:
        """Migrate a (possibly running) process; called from any task
        on the process's current host — eviction daemons, migd, tests."""
        self._check_eligible(pcb, target)
        ticket = MigrationTicket(
            target=target,
            reason=reason,
            parked=SimEvent(self.sim, f"parked:{pcb.pid}"),
            resume=SimEvent(self.sim, f"resume:{pcb.pid}"),
        )
        record = self._new_record(pcb, target, reason)
        root = self._root_span(record)
        cap = self.params.migration_max_outgoing
        if cap > 0 and self.outgoing_in_flight >= cap:
            # Source-side admission control: too many transfers already
            # in flight.  Refuse locally (the process keeps running
            # here) with a reason ``refusal_reasons`` can aggregate.
            self.refused_outgoing_cap += 1
            self._refuse(
                record,
                "source at outgoing-migration cap",
                f"host {self.host.name} already has "
                f"{self.outgoing_in_flight} migration(s) in flight",
                root,
            )
        txn = self.journal.begin(pcb, self.address, target, reason)
        epoch = self._crash_epoch
        self.outgoing_in_flight += 1
        try:
            # Negotiate and pre-copy while the process keeps running.
            yield from self._negotiate(pcb, target, record, txn, root, epoch)
            negotiated_at = self.sim.now
            self._phase(root, MIG_NEGOTIATE, record.started, negotiated_at)
            ticket.ticket_id = txn.ticket_id
            ticket.expires = txn.expires
            try:
                pre_bytes = yield from self.policy.pre_freeze(self, pcb, target)
            except (RpcError, FsError) as err:
                self._abandon_if_crashed(epoch, txn)
                yield from self._abort_txn(pcb, target, txn, epoch)
                self._refuse(
                    record,
                    f"pre-copy failed: {err}",
                    f"pre-copy to {target} failed for pid {pcb.pid}: {err}",
                    root,
                )
            self._abandon_if_crashed(epoch, txn)
            record.detail["pre_freeze_bytes"] = pre_bytes
            precopied_at = self.sim.now
            self._phase(root, MIG_VM_PRE, negotiated_at, precopied_at,
                        bytes=pre_bytes)
            # Ask the process to park at its next safe point.
            pcb.migration_ticket = ticket
            if pcb.task is not None and pcb.interruptible:
                pcb.task.interrupt(("migrate", target))
            index, _value = yield first(ticket.parked.wait(), pcb.exit_event.wait())
            self._abandon_if_crashed(epoch, txn)
            if index == 1:
                # The process exited before reaching a safe point.
                pcb.migration_ticket = None
                yield from self._abort_txn(pcb, target, txn, epoch)
                self._refuse(
                    record,
                    "process exited before freeze",
                    f"pid {pcb.pid} exited before it could be migrated",
                    root,
                )
            record.freeze_started = self.sim.now
            self._phase(root, MIG_WAIT_SAFE_POINT, precopied_at,
                        record.freeze_started)
            # A long pre-copy may have burned most of the lease: renew it
            # now that the frozen transfer is about to start.
            yield from self._renew_lease(txn, target, epoch)
            txn.advance(TxnState.FROZEN)
            self._journal_step(txn, epoch, "frozen")
            try:
                yield from self._frozen_transfer(
                    pcb, target, record, txn, skip_vm=False, root=root,
                    epoch=epoch,
                )
                yield from self._commit_txn(pcb, target, record, txn, root, epoch)
            finally:
                # Whatever happened, the process must not stay frozen: on
                # an abort it resumes right here on the source.
                record.freeze_ended = self.sim.now
                pcb.migration_ticket = None
                if not ticket.resume.fired:
                    ticket.resume.trigger()
                self._emit_freeze_phases(root, record)
            record.ended = self.sim.now
            self._finish_record(record, root)
            return record
        except MigrationAbandoned:
            if root is not None:
                root.annotate(abandoned=True).finish(self.sim.now)
            raise
        finally:
            self.outgoing_in_flight -= 1

    def migrate_self(
        self, pcb: Pcb, target: int
    ) -> Generator[Effect, None, MigrationRecord]:
        """Migration executed by the process's own task (the migrate
        kernel call): it is already at a safe point, so the whole
        transfer is one freeze."""
        self._check_eligible(pcb, target)
        record = self._new_record(pcb, target, "self")
        root = self._root_span(record)
        txn = self.journal.begin(pcb, self.address, target, "self")
        epoch = self._crash_epoch
        try:
            yield from self._negotiate(pcb, target, record, txn, root, epoch)
            record.freeze_started = self.sim.now
            self._phase(root, MIG_NEGOTIATE, record.started,
                        record.freeze_started)
            txn.advance(TxnState.FROZEN)
            self._journal_step(txn, epoch, "frozen")
            try:
                yield from self._frozen_transfer(
                    pcb, target, record, txn, skip_vm=False, root=root,
                    epoch=epoch,
                )
                yield from self._commit_txn(pcb, target, record, txn, root, epoch)
            finally:
                record.freeze_ended = self.sim.now
                self._emit_freeze_phases(root, record)
            record.ended = self.sim.now
            self._finish_record(record, root)
            return record
        except MigrationAbandoned:
            if root is not None:
                root.annotate(abandoned=True).finish(self.sim.now)
            raise

    def migrate_for_exec(
        self, pcb: Pcb, target: int, arg_bytes: int = 2048
    ) -> Generator[Effect, None, MigrationRecord]:
        """Exec-time migration: no VM moves; args/env ride with the state."""
        self._check_eligible(pcb, target)
        record = self._new_record(pcb, target, "exec")
        record.detail["arg_bytes"] = arg_bytes
        root = self._root_span(record)
        txn = self.journal.begin(pcb, self.address, target, "exec")
        epoch = self._crash_epoch
        try:
            yield from self._negotiate(pcb, target, record, txn, root, epoch)
            record.freeze_started = self.sim.now
            self._phase(root, MIG_NEGOTIATE, record.started,
                        record.freeze_started)
            txn.advance(TxnState.FROZEN)
            self._journal_step(txn, epoch, "frozen")
            # Discard the old address space outright (exec replaces it).
            if pcb.vm.backing is not None and pcb.vm.backing.handle_id >= 0:
                yield from pcb.vm.backing.remove()
                pcb.vm.backing = None
            pcb.vm.size = 0
            pcb.vm.evict_resident()
            self._abandon_if_crashed(epoch, txn)
            try:
                yield from self._frozen_transfer(
                    pcb, target, record, txn, skip_vm=True,
                    extra_bytes=arg_bytes, root=root, epoch=epoch,
                )
                yield from self._commit_txn(pcb, target, record, txn, root, epoch)
            finally:
                record.freeze_ended = self.sim.now
                self._emit_freeze_phases(root, record)
            record.ended = self.sim.now
            self._finish_record(record, root)
            return record
        except MigrationAbandoned:
            if root is not None:
                root.annotate(abandoned=True).finish(self.sim.now)
            raise

    def evict_all_foreign(self, reason: str = "eviction") -> Generator[Effect, None, List[MigrationRecord]]:
        """Send every foreign process home (user reclaimed the host).

        Each eviction is its own transaction; one refused victim (home
        down, transfer aborted) must not strand the remaining guests,
        so refusals are counted and skipped rather than propagated.
        """
        victims = self.kernel.foreign_pcbs()
        records = []
        failures: List[str] = []
        for pcb in victims:
            try:
                record = yield from self.migrate(pcb, pcb.home, reason=reason)
            except MigrationAbandoned:
                raise
            except MigrationRefused as err:
                self.eviction_failures += 1
                failures.append(f"pid {pcb.pid}: {err}")
                if self.tracer.enabled:
                    self.tracer.emit(
                        self.sim.now, f"mig:{self.host.name}",
                        "eviction-failed", pid=pcb.pid, why=str(err),
                    )
                continue
            records.append(record)
        if failures:
            # Surface the failure only after every victim had its try,
            # so the eviction daemon counts it and retries next period.
            raise MigrationRefused(
                f"{len(failures)} eviction(s) failed: " + "; ".join(failures)
            )
        return records

    # ------------------------------------------------------------------
    # Protocol steps (source side)
    # ------------------------------------------------------------------
    def _check_eligible(self, pcb: Pcb, target: int) -> None:
        if pcb.vm.shared_writable:
            raise MigrationRefused(
                f"pid {pcb.pid} uses shared writable memory (not migratable)"
            )
        if pcb.state != ProcState.RUNNING or pcb.current != self.address:
            raise MigrationRefused(
                f"pid {pcb.pid} is not resident on {self.host.name}"
            )
        if pcb.checkpoint_lock:
            raise MigrationRefused(
                f"pid {pcb.pid} is being checkpointed (image in progress)"
            )
        if target == self.address:
            raise MigrationRefused("source and target are the same host")

    def _new_record(self, pcb: Pcb, target: int, reason: str) -> MigrationRecord:
        return MigrationRecord(
            pid=pcb.pid,
            name=pcb.name,
            source=self.address,
            target=target,
            reason=reason,
            policy=self.policy.name,
            started=self.sim.now,
        )

    # ------------------------------------------------------------------
    # Span plumbing.  ``root`` is None whenever spans are disabled, so
    # every downstream site is a single ``is not None`` test.
    # ------------------------------------------------------------------
    def _root_span(self, record: MigrationRecord) -> Optional[Span]:
        """Open the ``mig.migrate`` root span for one migration."""
        spans = self.spans
        if not spans.enabled:
            return None
        return spans.start(
            MIG_MIGRATE,
            f"mig:{self.host.name}",
            t=record.started,
            pid=record.pid,
            src=record.source,
            dst=record.target,
            reason=record.reason,
        )

    def _phase(
        self, root: Optional[Span], name: str, start: float, end: float,
        **attrs: Any,
    ) -> None:
        """Record one lifecycle phase as a child of ``root``.

        Phases are emitted with explicit boundaries so consecutive
        phases are contiguous: their durations sum exactly to the
        root's extent (``MigrationRecord.total_time``).
        """
        if root is not None:
            self.spans.record(name, root.source, start, end, parent=root,
                              **attrs)

    def _emit_freeze_phases(self, root: Optional[Span], record: MigrationRecord) -> None:
        """Split the frozen interval at the commit point.

        ``mig.freeze`` covers park -> commit point, ``mig.commit`` the
        post-commit duties (detach, home update, lease close); aborts
        never cross the commit point, so their whole frozen interval is
        ``mig.freeze``.  Either way the phases stay contiguous and the
        partition of ``total_time`` is preserved.
        """
        if record.commit_started:
            self._phase(root, MIG_FREEZE, record.freeze_started,
                        record.commit_started)
            self._phase(root, MIG_COMMIT, record.commit_started,
                        record.freeze_ended)
        else:
            self._phase(root, MIG_FREEZE, record.freeze_started,
                        record.freeze_ended)

    def _refuse(
        self,
        record: MigrationRecord,
        why: str,
        message: str,
        root: Optional[Span] = None,
    ) -> None:
        """Finalize a refused migration and raise ``MigrationRefused``."""
        record.refused = True
        record.ended = self.sim.now
        record.detail["refusal"] = why
        self.records.append(record)
        if self.obs is not None:
            self.obs.on_migration(record)
        if root is not None:
            root.annotate(refused=True, why=why).finish(record.ended)
        raise MigrationRefused(message)

    def _negotiate(
        self,
        pcb: Pcb,
        target: int,
        record: MigrationRecord,
        txn: MigrationTxn,
        root: Optional[Span] = None,
        epoch: int = 0,
    ) -> Generator[Effect, None, None]:
        try:
            answer = yield from self.host.rpc.call(
                target,
                "mig.negotiate",
                {
                    "version": self.params.migration_version,
                    "pid": pcb.pid,
                    "name": pcb.name,
                    "uid": pcb.uid,
                    "home": pcb.home,
                    "reason": record.reason,
                    "vm_bytes": pcb.vm.size,
                },
            )
        except RetryLaterError:
            # Backpressure, not death: the target is alive but at its
            # incoming cap (the RPC layer already retried with backoff).
            # Degrade to local execution with a distinct refusal reason.
            answer = {"accept": False, "why": "target busy (retry later)"}
        except RpcError as err:
            # Unreachable target: abort cleanly, process stays put.
            answer = {"accept": False, "why": f"target unreachable: {err}"}
        self._abandon_if_crashed(epoch, txn)
        if not answer.get("accept"):
            why = answer.get("why", "unspecified")
            txn.finish()
            self._refuse(
                record,
                why,
                f"host {target} refused pid {pcb.pid}: {answer.get('why')}",
                root,
            )
        txn.ticket_id = int(answer.get("ticket", 0))
        txn.expires = float(answer.get("expires", 0.0))
        txn.push_undo("ticket", ticket=txn.ticket_id)
        self._journal_step(txn, epoch, "negotiated", ticket=txn.ticket_id)

    def _frozen_transfer(
        self,
        pcb: Pcb,
        target: int,
        record: MigrationRecord,
        txn: MigrationTxn,
        skip_vm: bool,
        extra_bytes: int = 0,
        root: Optional[Span] = None,
        epoch: int = 0,
    ) -> Generator[Effect, None, None]:
        params = self.params
        step_started = self.sim.now
        # -- virtual memory -------------------------------------------------
        if not skip_vm:
            try:
                record.vm = yield from self.policy.during_freeze(self, pcb, target)
            except (RpcError, FsError) as err:
                self._abandon_if_crashed(epoch, txn)
                yield from self._abort_txn(pcb, target, txn, epoch)
                self._refuse(
                    record,
                    f"vm transfer failed: {err}",
                    f"VM transfer to {target} failed for pid {pcb.pid}: {err}",
                    root,
                )
            self._abandon_if_crashed(epoch, txn)
            if root is not None:
                step_started = self._step(
                    root, MIG_VM_TRANSFER, step_started,
                    bytes=record.vm.bytes_total, policy=record.policy,
                )
        self._journal_step(txn, epoch, "vm_sent")
        # -- kernel state packaging (per-module encapsulation, §4.5) ---------
        yield from self.host.cpu.consume(params.migration_state_cpu)
        self._abandon_if_crashed(epoch, txn)
        if root is not None:
            step_started = self._step(root, MIG_STATE_PACK, step_started)
        self._journal_step(txn, epoch, "state_packed")
        # -- open streams ---------------------------------------------------
        # Each export is preceded by an *intent* undo entry, so a crash
        # or failure mid-loop can roll back exactly the exports that may
        # have touched the server — including the one that failed.
        def _export_intent(fd: int, stream: Any) -> Any:
            return txn.push_undo("stream", fd=fd, stream=stream, state=None)

        try:
            stream_states = yield from export_streams(
                self.host.fs, pcb, target, on_export=_export_intent
            )
        except (RpcError, FsError) as err:
            self._abandon_if_crashed(epoch, txn)
            yield from self._abort_txn(pcb, target, txn, epoch)
            self._refuse(
                record,
                f"stream export failed: {err}",
                f"stream export to {target} failed for pid {pcb.pid}: {err}",
                root,
            )
        self._abandon_if_crashed(epoch, txn)
        record.streams_moved = len(stream_states)
        record.stream_bytes = stream_bytes(params, len(stream_states))
        record.state_bytes = state_bytes(params, extra_bytes)
        self._journal_step(txn, epoch, "streams_exported",
                           count=record.streams_moved)
        if root is not None:
            step_started = self._step(
                root, MIG_STREAMS, step_started,
                count=record.streams_moved,
            )
        # -- ship the state; the target installs it *inactive* ---------------
        if pcb.task is not None and pcb.task.done:
            yield from self._abort_txn(pcb, target, txn, epoch)
            self._refuse(
                record,
                "process died during transfer",
                f"pid {pcb.pid} died while its state was being packaged",
                root,
            )
        payload = install_payload(pcb, txn.ticket_id, stream_states)
        wire_bytes = record.state_bytes + record.stream_bytes
        try:
            reply = yield from self.host.rpc.call(
                target, "mig.install", payload, size=wire_bytes
            )
        except RpcError as err:
            # The target died before the commit point: abort — pull the
            # stream references back and leave the process running here.
            self._abandon_if_crashed(epoch, txn)
            yield from self._abort_txn(pcb, target, txn, epoch)
            self._refuse(
                record,
                f"install failed: {err}",
                f"target {target} failed during transfer of pid {pcb.pid}: "
                f"{err}",
                root,
            )
        self._abandon_if_crashed(epoch, txn)
        if not (reply or {}).get("installed"):
            why = (reply or {}).get("why", "install refused")
            yield from self._abort_txn(pcb, target, txn, epoch)
            self._refuse(
                record,
                f"install refused: {why}",
                f"target {target} refused to install pid {pcb.pid}: {why}",
                root,
            )
        txn.expires = max(txn.expires, float(reply.get("expires", 0.0)))
        txn.advance(TxnState.SHIPPED)
        self._journal_step(txn, epoch, "shipped")
        if root is not None:
            self._step(root, MIG_INSTALL, step_started, bytes=wire_bytes)

    def _commit_txn(
        self,
        pcb: Pcb,
        target: int,
        record: MigrationRecord,
        txn: MigrationTxn,
        root: Optional[Span],
        epoch: int,
    ) -> Generator[Effect, None, None]:
        """Cross the commit point, then run the post-commit duties."""
        if pcb.task is not None and pcb.task.done and pcb.current != target:
            yield from self._abort_txn(pcb, target, txn, epoch)
            self._refuse(
                record,
                "process died before commit",
                f"pid {pcb.pid} died before the commit point",
                root,
            )
        record.commit_started = self.sim.now
        self._journal_step(txn, epoch, "commit_sent")
        outcome, why = yield from self._commit_rpc(pcb, target, txn, epoch)
        if outcome == "refused":
            yield from self._abort_txn(pcb, target, txn, epoch)
            self._refuse(
                record,
                f"commit refused: {why}",
                f"target {target} could not activate pid {pcb.pid}: {why}",
                root,
            )
        if outcome == "lost":
            # The commit landed and then the target died (already
            # detected): the process is gone — record its death.
            txn.advance(TxnState.COMMITTED)
            record.detail["lost_after_commit"] = True
            self.journal.committed += 1
            yield from self._write_off(pcb, target, epoch)
            txn.finish()
            self._refuse(
                record,
                "target lost after commit",
                f"target {target} crashed after pid {pcb.pid} committed",
                root,
            )
        # -- committed: the target's copy is the process ----------------------
        self._journal_step(txn, epoch, "committed")
        txn.advance(TxnState.COMMITTED)
        if root is not None:
            self._step(root, MIG_COMMIT_RPC, record.commit_started)
        source = self.address
        self.kernel.detach_pcb(pcb, target)
        self._journal_step(txn, epoch, "detached")
        if pcb.home not in (source, target):
            update_from = self.sim.now
            yield from self._update_home(pcb, target, txn, epoch)
            if root is not None:
                self._step(root, MIG_UPDATE_HOME, update_from,
                           home=pcb.home)
        self._journal_step(txn, epoch, "home_updated")
        yield from self._close_lease(txn, target, epoch)
        self._journal_step(txn, epoch, "closed")
        self.journal.committed += 1
        txn.finish()
        pcb.migrations += 1
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now,
                f"mig:{self.host.name}",
                "migrated",
                pid=pcb.pid,
                target=target,
                reason=record.reason,
                streams=record.streams_moved,
            )

    def _activation_happened(self, pcb: Pcb, target: int) -> bool:
        """Ground truth for an in-doubt commit.

        Only ``mig.commit``'s activation block ever points a PCB at the
        target, so this marker stands in for the state exchanged by
        Sprite's host-recovery handshake when the reply was lost.
        """
        return pcb.current == target

    def _commit_rpc(
        self, pcb: Pcb, target: int, txn: MigrationTxn, epoch: int
    ) -> Generator[Effect, None, Tuple[str, str]]:
        """Drive ``mig.commit`` to a definite outcome.

        Returns ``("committed", _)``, ``("refused", why)`` — nothing
        activated, abort is safe — or ``("lost", why)`` — the target
        activated and then crashed.  Silence (timeouts, partitions) is
        resolved by retrying until the activation marker, the target's
        detected-crash epoch, or the lease expiry settles the question.
        """
        peer_epoch = self._peer_epoch(target)
        attempt = 0
        while True:
            self._abandon_if_crashed(epoch, txn)
            if self._peer_epoch(target) != peer_epoch:
                if self._activation_happened(pcb, target):
                    return "lost", "target crashed after activating"
                return "refused", "target crashed before activating"
            if self._activation_happened(pcb, target):
                return "committed", "activated"
            if self.sim.now > txn.expires:
                # The lease is gone: the target has reaped (or will
                # refuse) — the commit can no longer take effect.
                return "refused", "lease expired before commit landed"
            try:
                reply = yield from self.host.rpc.call(
                    target, "mig.commit",
                    {"pid": pcb.pid, "ticket": txn.ticket_id},
                )
            except (RpcTimeout, NetworkPartitionedError, RetryLaterError):
                # In doubt: the request may have been delivered.  Loop —
                # the ground-truth checks above settle it.
                attempt += 1
                yield Sleep(self.host.rpc.retry_backoff(min(attempt, 6)))
                continue
            if reply.get("activated"):
                return "committed", "activated"
            if reply.get("unknown") and self._activation_happened(pcb, target):
                # Our earlier in-doubt attempt activated and the lease
                # has since been closed/reaped; the commit stands.
                return "committed", "activated"
            return "refused", reply.get("why", "commit refused")

    def _update_home(
        self, pcb: Pcb, target: int, txn: MigrationTxn, epoch: int
    ) -> Generator[Effect, None, None]:
        """Point a third-party home's shadow at the target (must land:
        retried until the home answers or is declared crashed)."""
        home = pcb.home
        home_epoch = self._peer_epoch(home)
        attempt = 0
        while True:
            self._abandon_if_crashed(epoch, txn)
            if self._peer_epoch(home) != home_epoch:
                return  # home crashed: no shadow survives to update
            try:
                yield from self.host.rpc.call(
                    home,
                    "mig.update_location",
                    {"pid": pcb.pid, "current": target},
                )
                return
            except (RpcTimeout, NetworkPartitionedError, RetryLaterError):
                attempt += 1
                yield Sleep(self.host.rpc.retry_backoff(min(attempt, 6)))

    def _renew_lease(
        self, txn: MigrationTxn, target: int, epoch: int
    ) -> Generator[Effect, None, None]:
        """Best-effort lease renewal before the frozen transfer starts.

        Failure is tolerated: if the lease really is gone the install
        will refuse and the normal abort path runs.  A busy target is
        *not* a failed one — the lease still stands, so backpressure
        gets a short backoff and another try instead of a give-up."""
        reply = None
        for attempt in range(3):
            try:
                reply = yield from self.host.rpc.call(
                    target, "mig.renew",
                    {"pid": txn.pid, "ticket": txn.ticket_id},
                )
            except RetryLaterError:
                self._abandon_if_crashed(epoch, txn)
                yield Sleep(self.host.rpc.retry_backoff(attempt))
                continue
            except RpcError:
                self._abandon_if_crashed(epoch, txn)
                return
            break
        if reply is None:
            return  # still busy after the backoffs: proceed unrenewed
        self._abandon_if_crashed(epoch, txn)
        if reply.get("renewed"):
            txn.expires = max(txn.expires, float(reply.get("expires", 0.0)))

    def _close_lease(
        self, txn: MigrationTxn, target: int, epoch: int
    ) -> Generator[Effect, None, None]:
        """Drop the target's lease record for a committed migration.

        Retried until it lands; the target's own expiry reaper is the
        backstop if the source dies first."""
        peer_epoch = self._peer_epoch(target)
        attempt = 0
        while True:
            self._abandon_if_crashed(epoch, txn)
            if self._peer_epoch(target) != peer_epoch:
                return  # lease registry died with the target
            if self.sim.now > txn.expires:
                return  # the reaper already dropped it
            try:
                yield from self.host.rpc.call(
                    target, "mig.close",
                    {"pid": txn.pid, "ticket": txn.ticket_id},
                )
                return
            except (RpcTimeout, NetworkPartitionedError, RetryLaterError):
                attempt += 1
                yield Sleep(self.host.rpc.retry_backoff(min(attempt, 6)))

    def _write_off(
        self, pcb: Pcb, target: int, epoch: int
    ) -> Generator[Effect, None, None]:
        """The process committed to a target that then died: record the
        death so parents unblock instead of waiting forever."""
        status = pcb.exit_status or ExitStatus(
            pid=pcb.pid,
            code=128 + signals.SIGKILL,
            cpu_time=pcb.cpu_time,
            exit_host=target,
        )
        pcb.exit_status = status
        if pcb.home == self.address:
            self.kernel.procs.setdefault(pcb.pid, pcb)
            if pcb.state not in (ProcState.ZOMBIE, ProcState.DEAD):
                self.kernel._record_zombie(pcb, status)
            return
        # Foreign process: drop our copy and tell the home (bounded
        # retries — the home's own crash detection is the backstop).
        self.kernel.procs.pop(pcb.pid, None)
        home_epoch = self._peer_epoch(pcb.home)
        for attempt in range(self.params.migration_rollback_retries + 1):
            self._abandon_if_crashed(epoch)
            if self._peer_epoch(pcb.home) != home_epoch:
                return
            try:
                yield from self.host.rpc.call(
                    pcb.home,
                    "proc.exit_notify",
                    {"pid": pcb.pid, "code": status.code,
                     "cpu_time": status.cpu_time, "exit_host": target},
                )
                return
            except (RpcTimeout, NetworkPartitionedError, RetryLaterError):
                yield Sleep(self.host.rpc.retry_backoff(attempt))

    # ------------------------------------------------------------------
    # Abort / undo-log replay
    # ------------------------------------------------------------------
    def _abort_txn(
        self, pcb: Pcb, target: int, txn: MigrationTxn, epoch: int
    ) -> Generator[Effect, None, None]:
        """Abort: replay the undo log (with retry/backoff); if retries
        exhaust, hand the remainder to a background repair task so the
        frozen process is never held hostage to a dead peer."""
        self._abandon_if_crashed(epoch, txn)
        if txn.state is not TxnState.ABORTED:
            txn.advance(TxnState.ABORTED)
            self.journal.aborted += 1
        ok = yield from self._replay_undo(txn, target, epoch, close_refs=False)
        if ok:
            txn.finish()
            return
        txn.rollback_pending = True
        self.rollback_incomplete += 1
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, f"mig:{self.host.name}",
                "rollback-incomplete", txn=txn.txn_id,
            )
        spawn(
            self.sim,
            self._repair(txn, target, epoch, close_refs=False),
            name=f"mig-repair:{txn.txn_id}",
            daemon=True,
        )

    def _replay_undo(
        self, txn: MigrationTxn, target: int, epoch: int, close_refs: bool
    ) -> Generator[Effect, None, bool]:
        ok = True
        for entry in txn.pending_undo():
            done = yield from self._try_undo(entry, txn, target, close_refs, epoch)
            if not done:
                ok = False
        return ok

    def _try_undo(
        self, entry, txn: MigrationTxn, target: int, close_refs: bool,
        epoch: int,
    ) -> Generator[Effect, None, bool]:
        for attempt in range(max(1, self.params.migration_rollback_retries)):
            self._abandon_if_crashed(epoch, txn)
            try:
                yield from self._undo_one(entry, txn, target, close_refs)
                return True
            except RetryLaterError:
                # The peer is alive but overloaded: every undo (ticket
                # release included) will land once it drains, so back
                # off and retry — never downgrade to "left to expire".
                yield Sleep(self.host.rpc.retry_backoff(attempt))
                continue
            except (RpcError, FsError):
                if entry.kind == "ticket":
                    # The lease self-destructs at expiry; stop hammering
                    # a dead or partitioned target.
                    entry.undone = True
                    entry.detail["released"] = "left to expire"
                    return True
                yield Sleep(self.host.rpc.retry_backoff(attempt))
        return False

    def _undo_one(
        self, entry, txn: MigrationTxn, target: int, close_refs: bool = False
    ) -> Generator[Effect, None, None]:
        """Apply one compensating action (idempotent via ``entry.undone``)."""
        if entry.undone:
            return
        if entry.kind == "stream":
            stream = entry.detail["stream"]
            state = entry.detail.get("state")
            if state is None:
                # The export never returned — but its server-side move
                # may have landed (lost reply).  Compensate blind: the
                # reverse move is safe either way (the server clamps a
                # decrement of a reference it never saw).
                if stream.is_pipe:
                    kind = "pipe"
                elif stream.is_pdev:
                    kind = "pdev"
                else:
                    kind = "file"
                state = {
                    "undo": {
                        "kind": kind,
                        "addref_sent": False,
                        "refcount_decremented": False,
                    },
                }
            yield from self.host.fs.undo_export(stream, state, target)
            if close_refs and not stream.closed:
                # Recovery path: the process died with the crash, so the
                # reclaimed reference must also be closed out.
                stream.refcount = 1
                yield from self.host.fs.close(stream)
            entry.undone = True
            return
        if entry.kind == "ticket":
            yield from self.host.rpc.call(
                target,
                "mig.release",
                {"pid": txn.pid,
                 "ticket": entry.detail.get("ticket", txn.ticket_id)},
            )
            entry.undone = True
            return

    def _repair(
        self, txn: MigrationTxn, target: int, epoch: int, close_refs: bool
    ) -> Generator[Effect, None, None]:
        """Background retry loop for an abort whose inline rollback
        exhausted its retries (e.g. the FS server was down too)."""
        attempt = 0
        while True:
            if self._crash_epoch != epoch or not self.host.node.up:
                return  # reboot recovery owns the journal now
            pending = txn.pending_undo()
            if not pending:
                txn.rollback_pending = False
                txn.finish()
                if self.tracer.enabled:
                    self.tracer.emit(
                        self.sim.now, f"mig:{self.host.name}",
                        "rollback-repaired", txn=txn.txn_id,
                    )
                return
            progressed = False
            for entry in pending:
                if entry.kind == "ticket" and self.sim.now > txn.expires:
                    entry.undone = True
                    entry.detail["released"] = "expired"
                    progressed = True
                    continue
                try:
                    yield from self._undo_one(entry, txn, target, close_refs)
                    progressed = True
                except (RpcError, FsError):
                    continue
            if not progressed:
                attempt += 1
                yield Sleep(self.host.rpc.retry_backoff(min(attempt, 6)))

    # ------------------------------------------------------------------
    # Reboot-time journal recovery
    # ------------------------------------------------------------------
    def _recover_journal(
        self, txns: List[MigrationTxn], epoch: int
    ) -> Generator[Effect, None, None]:
        """Resolve every transaction the crash left open."""
        yield from self.host.cpu.consume(
            self.params.kernel_call_cpu * max(1, len(txns))
        )
        for txn in txns:
            if self._crash_epoch != epoch or not self.host.node.up:
                return
            try:
                yield from self._recover_txn(txn, epoch)
            except MigrationAbandoned:
                return
            except (RpcError, FsError) as err:  # pragma: no cover - safety net
                if self.tracer.enabled:
                    self.tracer.emit(
                        self.sim.now, f"mig:{self.host.name}",
                        "recovery-failed", txn=txn.txn_id, why=str(err),
                    )

    def _recover_txn(
        self, txn: MigrationTxn, epoch: int
    ) -> Generator[Effect, None, None]:
        pcb: Optional[Pcb] = txn.pcb
        target = txn.target
        if txn.state is TxnState.COMMITTED and txn.did("closed"):
            txn.finish()
            return
        activated = txn.did("committed")
        if not activated and txn.did("commit_sent"):
            activated = yield from self._resolve_at_target(txn, epoch)
        if activated:
            # Re-drive the post-commit duties the crash interrupted.
            txn.advance(TxnState.COMMITTED)
            txn.step("committed", recovered=True)
            self._abandon_if_crashed(epoch, txn)
            if pcb is not None:
                if pcb.home == self.address:
                    if pcb.exit_status is not None:
                        # The process already exited remotely; make sure
                        # the zombie is visible to waiting parents.
                        self.kernel.procs.setdefault(pcb.pid, pcb)
                        if pcb.state not in (ProcState.ZOMBIE, ProcState.DEAD):
                            self.kernel._record_zombie(pcb, pcb.exit_status)
                    elif pcb.pid not in self.kernel.procs:
                        self.kernel.detach_pcb(pcb, target)
                txn.step("detached", recovered=True)
                if (
                    pcb.home not in (self.address, target)
                    and not txn.did("home_updated")
                ):
                    yield from self._update_home(pcb, target, txn, epoch)
            txn.step("home_updated", recovered=True)
            if not txn.did("closed"):
                yield from self._close_lease(txn, target, epoch)
            txn.step("closed", recovered=True)
            self.journal.recovered += 1
            txn.finish()
            if self.tracer.enabled:
                self.tracer.emit(
                    self.sim.now, f"mig:{self.host.name}",
                    "txn-recovered", txn=txn.txn_id, outcome="committed",
                )
            return
        yield from self._recover_aborted(txn, epoch)

    def _resolve_at_target(
        self, txn: MigrationTxn, epoch: int
    ) -> Generator[Effect, None, bool]:
        """Ask the target whether an in-doubt commit activated."""
        peer_epoch = self._peer_epoch(txn.target)
        for attempt in range(max(1, self.params.migration_rollback_retries)):
            self._abandon_if_crashed(epoch, txn)
            if self._peer_epoch(txn.target) != peer_epoch:
                break
            try:
                reply = yield from self.host.rpc.call(
                    txn.target, "mig.resolve",
                    {"pid": txn.pid, "ticket": txn.ticket_id},
                )
            except (RpcTimeout, NetworkPartitionedError, RetryLaterError):
                yield Sleep(self.host.rpc.retry_backoff(attempt))
                continue
            if reply.get("known"):
                return bool(reply.get("activated"))
            break  # lease gone at the target: fall back to the marker
        pcb = txn.pcb
        return pcb is not None and self._activation_happened(pcb, txn.target)

    def _recover_aborted(
        self, txn: MigrationTxn, epoch: int
    ) -> Generator[Effect, None, None]:
        """The commit never took effect: the source's (dead) copy was
        authoritative, so replay the undo log — and since the process
        died with the crash, reclaimed stream references are closed out
        rather than restored."""
        if txn.state is not TxnState.ABORTED:
            txn.advance(TxnState.ABORTED)
            self.journal.aborted += 1
        ok = yield from self._replay_undo(txn, txn.target, epoch, close_refs=True)
        self.journal.recovered += 1
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, f"mig:{self.host.name}",
                "txn-recovered", txn=txn.txn_id, outcome="aborted",
            )
        if ok:
            txn.finish()
            return
        txn.rollback_pending = True
        self.rollback_incomplete += 1
        spawn(
            self.sim,
            self._repair(txn, txn.target, epoch, close_refs=True),
            name=f"mig-repair:{txn.txn_id}",
            daemon=True,
        )

    def _step(
        self, root: Span, name: str, started: float, **attrs: Any
    ) -> float:
        """Record one transfer sub-step span ending now; returns now."""
        now = self.sim.now
        # span-guard: caller (only invoked under ``if root is not None``)
        self.spans.record(name, root.source, started, now, parent=root,
                          **attrs)
        return now

    def _finish_record(
        self, record: MigrationRecord, root: Optional[Span] = None
    ) -> None:
        self.records.append(record)
        if self.obs is not None:
            self.obs.on_migration(record)
        if root is not None:
            root.finish(record.ended, streams=record.streams_moved)

    # ------------------------------------------------------------------
    # Target-side services
    # ------------------------------------------------------------------
    def _rpc_negotiate(self, args: Dict[str, Any]) -> Generator[Effect, None, Dict[str, Any]]:
        epoch = self._crash_epoch
        yield from self.host.cpu.consume(self.params.kernel_call_cpu)
        if epoch != self._crash_epoch or not self.host.node.up:
            return {"accept": False, "why": "target crashed during negotiation"}
        if args["version"] != self.params.migration_version:
            return {
                "accept": False,
                "why": (
                    f"migration version mismatch: theirs {args['version']}, "
                    f"ours {self.params.migration_version}"
                ),
            }
        # A host always accepts its own processes back (eviction must
        # never fail); foreign work passes admission control first.
        if args["home"] != self.address:
            cap = self.params.migration_max_incoming
            if cap > 0 and len(self._tickets) >= cap:
                # Overloaded, not dead: the error crosses the wire and
                # tells the source to back off — an unbounded burst of
                # offers degrades to local execution instead of piling
                # leases onto a saturated target.
                self.refused_incoming_busy += 1
                raise RetryLaterError(
                    f"host {self.host.name} at incoming-migration cap "
                    f"({cap} lease(s) outstanding)"
                )
            if self.accept_hook is not None and not self.accept_hook(args):
                return {"accept": False, "why": "host not accepting foreign work"}
        self._ticket_seq += 1
        lease = TicketLease(
            pid=args["pid"],
            ticket_id=self._ticket_seq,
            expires=self.sim.now + self.params.migration_ticket_ttl,
            reserved_bytes=int(args.get("vm_bytes", 0)),
        )
        key = (lease.pid, lease.ticket_id)
        self._tickets[key] = lease
        self.reserved_bytes += lease.reserved_bytes
        spawn(
            self.sim,
            self._reaper(key, lease),
            name=f"mig-reaper:{self.host.name}:{lease.ticket_id}",
            daemon=True,
        )
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, f"mig:{self.host.name}", "ticket-issued",
                pid=lease.pid, ticket=lease.ticket_id,
                reserved=lease.reserved_bytes,
            )
        return {
            "accept": True,
            "version": self.params.migration_version,
            "ticket": lease.ticket_id,
            "expires": lease.expires,
        }

    def _reaper(self, key: Tuple[int, int], lease: TicketLease) -> Generator[Effect, None, None]:
        """Reap the lease (and any inactive copy under it) at expiry."""
        while True:
            now = self.sim.now
            if now >= lease.expires:
                break
            yield Sleep(lease.expires - now)
        if self._tickets.get(key) is not lease:
            return  # closed/released/re-issued meanwhile (or we crashed)
        self._reap(key, lease, "expired")

    def _reap(self, key: Tuple[int, int], lease: TicketLease, why: str) -> None:
        self._tickets.pop(key, None)
        self._free_reservation(lease)
        if lease.install is not None:
            # The source still owns the stream references (its abort or
            # recovery pulls them back); only local records go.
            discard_imports(self.host.fs, lease.install.streams)
            lease.install = None
        lease.status = "reaped"
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, f"mig:{self.host.name}", "ticket-reaped",
                pid=lease.pid, ticket=lease.ticket_id, why=why,
            )

    def _free_reservation(self, lease: TicketLease) -> None:
        self.reserved_bytes = max(0, self.reserved_bytes - lease.reserved_bytes)
        lease.reserved_bytes = 0

    @property
    def pending_arrivals(self) -> int:
        """Accepted migrations still in flight (stale entries pruned)."""
        horizon = self.sim.now - self.pending_accept_ttl
        self._pending_accepts = [t for t in self._pending_accepts if t > horizon]
        return len(self._pending_accepts)

    def note_incoming(self) -> None:
        """Record an acceptance (called by acceptance policies)."""
        self._pending_accepts.append(self.sim.now)

    def _rpc_install(self, payload: Dict[str, Any]) -> Generator[Effect, None, Dict[str, Any]]:
        """Install the shipped state *inactive* under its lease.

        The travelling PCB is deliberately not touched and nothing
        enters the process table: until ``mig.commit`` the source's
        copy is the process, and an abort has nothing here to undo
        beyond dropping the :class:`PendingInstall`.
        """
        epoch = self._crash_epoch
        pcb: Pcb = payload["pcb"]
        key = (payload.get("pid", pcb.pid), payload.get("ticket", 0))
        if self._pending_accepts:
            self._pending_accepts.pop(0)
        lease = self._tickets.get(key)
        if lease is None:
            return {"installed": False, "why": "unknown or expired ticket"}
        if lease.status == "installed":
            # Idempotent: a retried install is acknowledged, not redone.
            return {"installed": True, "duplicate": True,
                    "expires": lease.expires}
        if lease.status != "issued":
            return {"installed": False, "why": f"ticket is {lease.status}"}
        if self.sim.now >= lease.expires:
            return {"installed": False, "why": "ticket expired"}
        lease.status = "installing"
        yield from self.host.cpu.consume(self.params.migration_state_cpu)
        pending = PendingInstall(
            pid=pcb.pid,
            ticket_id=lease.ticket_id,
            pcb=pcb,
            expires=lease.expires,
            reserved_bytes=lease.reserved_bytes,
            cpu_time=payload.get("cpu_time", 0.0),
        )
        imported, failure = yield from import_streams(
            self.host.fs, payload["streams"]
        )
        pending.streams.update(imported)
        # Re-validate after the yields: the host may have crashed (and
        # even rebooted) or the reaper may have fired mid-install; a
        # zombie service task must not resurrect state either way.
        if (
            epoch != self._crash_epoch
            or not self.host.node.up
            or self._tickets.get(key) is not lease
        ):
            discard_imports(self.host.fs, pending.streams)
            return {"installed": False, "why": "lease lost during install"}
        if failure is not None:
            discard_imports(self.host.fs, pending.streams)
            lease.status = "issued"
            return {"installed": False, "why": f"stream import failed: {failure}"}
        # Each protocol message renews the lease (the reaper re-checks).
        lease.expires = max(
            lease.expires, self.sim.now + self.params.migration_ticket_ttl
        )
        pending.expires = lease.expires
        lease.install = pending
        lease.status = "installed"
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, f"mig:{self.host.name}", "installed",
                pid=pcb.pid, ticket=lease.ticket_id,
            )
        return {"installed": True, "expires": lease.expires}

    def _rpc_commit(self, args: Dict[str, Any]) -> Generator[Effect, None, Dict[str, Any]]:
        """The commit point, target side: activate the inactive copy.

        Everything from ``install_pcb`` to the reply is yield-free, so
        activation is atomic with respect to crashes and other tasks —
        there is never an instant with two runnable copies.
        """
        epoch = self._crash_epoch
        key = (args["pid"], args["ticket"])
        yield from self.host.cpu.consume(self.params.kernel_call_cpu)
        if epoch != self._crash_epoch or not self.host.node.up:
            return {"activated": False, "why": "target crashed during commit"}
        lease = self._tickets.get(key)
        if lease is None:
            return {"activated": False, "unknown": True,
                    "why": "unknown or expired ticket"}
        if lease.status == "activated":
            return {"activated": True, "duplicate": True}
        if lease.status != "installed" or lease.install is None:
            return {"activated": False,
                    "why": f"ticket is {lease.status}: nothing installed"}
        if self.sim.now >= lease.expires:
            self._reap(key, lease, "expired-at-commit")
            return {"activated": False, "why": "ticket expired"}
        pending = lease.install
        pcb = pending.pcb
        if pcb.task is not None and pcb.task.done:
            self._reap(key, lease, "process-died")
            return {"activated": False, "why": "process died before commit"}
        # --- activation: atomic (no yields until the return) ---
        self.kernel.install_pcb(pcb)
        pcb.streams = dict(pending.streams)
        if pcb.vm.backing is not None:
            pcb.vm.backing = pcb.vm.backing.handoff(self.host.fs)
        self._free_reservation(lease)
        lease.install = None
        lease.status = "activated"
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, f"mig:{self.host.name}", "activated",
                pid=pcb.pid, ticket=lease.ticket_id,
            )
        return {"activated": True}

    def _rpc_release(self, args: Dict[str, Any]) -> Generator[Effect, None, Dict[str, Any]]:
        """Source-side abort is releasing its lease (undo-log replay)."""
        epoch = self._crash_epoch
        key = (args["pid"], args["ticket"])
        yield from self.host.cpu.consume(self.params.kernel_call_cpu)
        if epoch != self._crash_epoch or not self.host.node.up:
            return {"released": False, "why": "target crashed"}
        lease = self._tickets.get(key)
        if lease is None:
            return {"released": True, "already": True}
        if lease.status == "activated":
            return {"released": False, "why": "already activated"}
        self._tickets.pop(key, None)
        self._free_reservation(lease)
        if lease.install is not None:
            discard_imports(self.host.fs, lease.install.streams)
            lease.install = None
        lease.status = "released"
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, f"mig:{self.host.name}", "ticket-released",
                pid=lease.pid, ticket=lease.ticket_id,
            )
        return {"released": True}

    def _rpc_renew(self, args: Dict[str, Any]) -> Generator[Effect, None, Dict[str, Any]]:
        """Extend a live lease (the source is about to freeze/ship)."""
        epoch = self._crash_epoch
        key = (args["pid"], args["ticket"])
        yield from self.host.cpu.consume(self.params.kernel_call_cpu)
        if epoch != self._crash_epoch or not self.host.node.up:
            return {"renewed": False, "why": "target crashed"}
        lease = self._tickets.get(key)
        if lease is None or lease.status not in ("issued", "installing", "installed"):
            return {"renewed": False, "why": "lease not renewable"}
        lease.expires = max(
            lease.expires, self.sim.now + self.params.migration_ticket_ttl
        )
        return {"renewed": True, "expires": lease.expires}

    def _rpc_resolve(self, args: Dict[str, Any]) -> Generator[Effect, None, Dict[str, Any]]:
        """Recovery probe: did an in-doubt commit activate?  Read-only."""
        yield from self.host.cpu.consume(self.params.kernel_call_cpu)
        lease = self._tickets.get((args["pid"], args["ticket"]))
        if lease is None:
            return {"known": False, "activated": False}
        return {"known": True, "activated": lease.status == "activated"}

    def _rpc_close(self, args: Dict[str, Any]) -> Generator[Effect, None, Dict[str, Any]]:
        """Committed migration complete: drop the lease record."""
        key = (args["pid"], args["ticket"])
        yield from self.host.cpu.consume(self.params.kernel_call_cpu)
        lease = self._tickets.pop(key, None)
        if lease is not None:
            self._free_reservation(lease)
            lease.status = "closed"
        return {"closed": lease is not None}

    def _rpc_update_location(self, args: Dict[str, Any]) -> Generator[Effect, None, None]:
        yield from self.host.cpu.consume(self.params.kernel_call_cpu)
        shadow = self.kernel.procs.get(args["pid"])
        if shadow is not None and shadow.state == ProcState.MIGRATED:
            shadow.current = args["current"]
        return None

    def _rpc_cor_fetch(self, nbytes: int) -> Generator[Effect, None, Reply]:
        """Serve a copy-on-reference page fetch (residual dependency)."""
        yield from self.host.cpu.consume(
            self.params.page_handling_cpu * self.params.pages(nbytes)
        )
        return Reply(result=nbytes, size=max(1, nbytes))
