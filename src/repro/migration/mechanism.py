"""The process-migration mechanism (thesis ch. 4).

One :class:`MigrationManager` per host.  A migration runs the protocol
the thesis describes, module by module:

1. **Negotiate** with the target kernel: migration *version numbers*
   must match (§4.5 — mismatched kernels refuse, the fix for migration's
   fragility), and the target's acceptance policy must agree.
2. **Freeze** the process at a safe point (between compute quanta or at
   kernel-call boundaries; in-flight kernel calls drain first).
3. **Transfer virtual memory** per the configured policy
   (:mod:`repro.migration.vm` — Sprite's default flushes dirty pages to
   the backing file on the server).
4. **Package and ship kernel state**: the machine-independent PCB,
   signal state, and exec arguments, then each open stream via the file
   system's export/import protocol (flush + I/O-server hand-off, ch. 5).
5. **Install** on the target, update the home's shadow PCB, and resume.
   The source keeps *no* residual state (unless copy-on-reference was
   chosen, which is exactly its documented drawback).

Exec-time migration (:meth:`MigrationManager.migrate_for_exec`) skips
step 3 entirely — the address space is about to be replaced — which is
why Sprite migrates at exec whenever it can.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Union

from ..config import ClusterParams
from ..kernel import Host, MigrationTicket, Pcb, ProcState, SpriteKernel
from ..net import Reply, RpcError
from ..obs.spans import Span, SpanTracer
from ..sim import Effect, SimEvent, Tracer
from .vm import FlushToServer, VmOutcome, VmPolicy, make_policy

__all__ = ["MigrationManager", "MigrationRecord", "MigrationRefused"]


class MigrationRefused(RpcError):
    """The target kernel declined the migration (version/policy)."""


@dataclass
class MigrationRecord:
    """Telemetry for one completed (or refused) migration."""

    pid: int
    name: str
    source: int
    target: int
    reason: str
    policy: str
    started: float
    ended: float = 0.0
    freeze_started: float = 0.0
    freeze_ended: float = 0.0
    vm: Optional[VmOutcome] = None
    streams_moved: int = 0
    stream_bytes: int = 0
    state_bytes: int = 0
    refused: bool = False
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return self.ended - self.started

    @property
    def freeze_time(self) -> float:
        return self.freeze_ended - self.freeze_started


#: Signature of a target-side acceptance policy (load sharing installs
#: one that refuses when the host is no longer idle).
AcceptHook = Callable[[Dict[str, Any]], bool]


class MigrationManager:
    """Per-host migration engine; also the target-side RPC services."""

    def __init__(
        self,
        host: Host,
        managers: Dict[int, "MigrationManager"],
        policy: Union[str, VmPolicy, None] = None,
        accept_hook: Optional[AcceptHook] = None,
    ):
        self.host = host
        self.kernel: SpriteKernel = host.kernel
        self.kernel.migration = self
        if policy is None:
            policy = FlushToServer()
        elif isinstance(policy, str):
            policy = make_policy(policy)
        self.policy: VmPolicy = policy
        self.accept_hook = accept_hook
        self.records: List[MigrationRecord] = []
        #: Span tracer shared cluster-wide (one per Tracer); disabled by
        #: default, so span sites cost one branch each.
        self.spans: SpanTracer = SpanTracer.for_tracer(host.tracer)
        #: Metrics hook, set by ``ClusterObservability.install``; when
        #: ``None`` (the default) no metrics work happens at all.
        self.obs: Optional[Any] = None
        #: Accept timestamps of migrations not yet installed; acceptance
        #: policies count these against guest caps (flood prevention,
        #: [BSW89]).  Entries expire so an aborted transfer cannot leak
        #: a permanent reservation.
        self._pending_accepts: List[float] = []
        #: How long an accepted-but-uninstalled reservation is honoured.
        self.pending_accept_ttl = 30.0
        self._managers = managers
        managers[host.address] = self
        self.host.rpc.register("mig.negotiate", self._rpc_negotiate)
        self.host.rpc.register("mig.install", self._rpc_install)
        self.host.rpc.register("mig.update_location", self._rpc_update_location)
        self.host.rpc.register("mig.cor_fetch", self._rpc_cor_fetch)

    # ------------------------------------------------------------------
    @property
    def sim(self):
        return self.host.sim

    @property
    def lan(self):
        return self.host.lan

    @property
    def params(self) -> ClusterParams:
        return self.host.params

    @property
    def address(self) -> int:
        return self.host.address

    @property
    def tracer(self) -> Tracer:
        return self.host.tracer

    def remote_page_install(self, target: int, nbytes: int) -> Generator[Effect, None, None]:
        """Charge the target's CPU for receiving/installing pages.

        Wire time is charged separately by the caller; this models the
        destination kernel's copy/map work during a VM transfer.
        """
        peer = self._managers[target]
        yield from peer.host.cpu.consume(
            self.params.page_handling_cpu * self.params.pages(nbytes)
        )

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def migrate(
        self, pcb: Pcb, target: int, reason: str = "manual"
    ) -> Generator[Effect, None, MigrationRecord]:
        """Migrate a (possibly running) process; called from any task
        on the process's current host — eviction daemons, migd, tests."""
        self._check_eligible(pcb, target)
        ticket = MigrationTicket(
            target=target,
            reason=reason,
            parked=SimEvent(self.sim, f"parked:{pcb.pid}"),
            resume=SimEvent(self.sim, f"resume:{pcb.pid}"),
        )
        record = self._new_record(pcb, target, reason)
        root = self._root_span(record)
        # Negotiate and pre-copy while the process keeps running.
        yield from self._negotiate(pcb, target, record, root)
        negotiated_at = self.sim.now
        self._phase(root, "mig.negotiate", record.started, negotiated_at)
        pre_bytes = yield from self.policy.pre_freeze(self, pcb, target)
        record.detail["pre_freeze_bytes"] = pre_bytes
        precopied_at = self.sim.now
        self._phase(root, "mig.vm_pre", negotiated_at, precopied_at,
                    bytes=pre_bytes)
        # Ask the process to park at its next safe point.
        pcb.migration_ticket = ticket
        if pcb.task is not None and pcb.interruptible:
            pcb.task.interrupt(("migrate", target))
        from ..sim import first

        index, _value = yield first(ticket.parked.wait(), pcb.exit_event.wait())
        if index == 1:
            # The process exited before reaching a safe point.
            pcb.migration_ticket = None
            self._refuse(
                record,
                "process exited before freeze",
                f"pid {pcb.pid} exited before it could be migrated",
                root,
            )
        record.freeze_started = self.sim.now
        self._phase(root, "mig.wait_safe_point", precopied_at,
                    record.freeze_started)
        try:
            yield from self._frozen_transfer(
                pcb, target, record, skip_vm=False, root=root
            )
        finally:
            # Whatever happened, the process must not stay frozen: on an
            # abort it resumes right here on the source.
            record.freeze_ended = self.sim.now
            pcb.migration_ticket = None
            ticket.resume.trigger()
            self._phase(root, "mig.freeze", record.freeze_started,
                        record.freeze_ended)
        record.ended = self.sim.now
        self._finish_record(record, root)
        return record

    def migrate_self(
        self, pcb: Pcb, target: int
    ) -> Generator[Effect, None, MigrationRecord]:
        """Migration executed by the process's own task (the migrate
        kernel call): it is already at a safe point, so the whole
        transfer is one freeze."""
        self._check_eligible(pcb, target)
        record = self._new_record(pcb, target, "self")
        root = self._root_span(record)
        yield from self._negotiate(pcb, target, record, root)
        record.freeze_started = self.sim.now
        self._phase(root, "mig.negotiate", record.started,
                    record.freeze_started)
        yield from self._frozen_transfer(
            pcb, target, record, skip_vm=False, root=root
        )
        record.freeze_ended = self.sim.now
        self._phase(root, "mig.freeze", record.freeze_started,
                    record.freeze_ended)
        record.ended = self.sim.now
        self._finish_record(record, root)
        return record

    def migrate_for_exec(
        self, pcb: Pcb, target: int, arg_bytes: int = 2048
    ) -> Generator[Effect, None, MigrationRecord]:
        """Exec-time migration: no VM moves; args/env ride with the state."""
        self._check_eligible(pcb, target)
        record = self._new_record(pcb, target, "exec")
        record.detail["arg_bytes"] = arg_bytes
        root = self._root_span(record)
        yield from self._negotiate(pcb, target, record, root)
        record.freeze_started = self.sim.now
        self._phase(root, "mig.negotiate", record.started,
                    record.freeze_started)
        # Discard the old address space outright (exec replaces it).
        if pcb.vm.backing is not None and pcb.vm.backing.handle_id >= 0:
            yield from pcb.vm.backing.remove()
            pcb.vm.backing = None
        pcb.vm.size = 0
        pcb.vm.evict_resident()
        yield from self._frozen_transfer(
            pcb, target, record, skip_vm=True, extra_bytes=arg_bytes,
            root=root,
        )
        record.freeze_ended = self.sim.now
        self._phase(root, "mig.freeze", record.freeze_started,
                    record.freeze_ended)
        record.ended = self.sim.now
        self._finish_record(record, root)
        return record

    def evict_all_foreign(self, reason: str = "eviction") -> Generator[Effect, None, List[MigrationRecord]]:
        """Send every foreign process home (user reclaimed the host)."""
        victims = self.kernel.foreign_pcbs()
        records = []
        for pcb in victims:
            record = yield from self.migrate(pcb, pcb.home, reason=reason)
            records.append(record)
        return records

    # ------------------------------------------------------------------
    # Protocol steps
    # ------------------------------------------------------------------
    def _check_eligible(self, pcb: Pcb, target: int) -> None:
        if pcb.vm.shared_writable:
            raise MigrationRefused(
                f"pid {pcb.pid} uses shared writable memory (not migratable)"
            )
        if pcb.state != ProcState.RUNNING or pcb.current != self.address:
            raise MigrationRefused(
                f"pid {pcb.pid} is not resident on {self.host.name}"
            )
        if target == self.address:
            raise MigrationRefused("source and target are the same host")

    def _new_record(self, pcb: Pcb, target: int, reason: str) -> MigrationRecord:
        return MigrationRecord(
            pid=pcb.pid,
            name=pcb.name,
            source=self.address,
            target=target,
            reason=reason,
            policy=self.policy.name,
            started=self.sim.now,
        )

    # ------------------------------------------------------------------
    # Span plumbing.  ``root`` is None whenever spans are disabled, so
    # every downstream site is a single ``is not None`` test.
    # ------------------------------------------------------------------
    def _root_span(self, record: MigrationRecord) -> Optional[Span]:
        """Open the ``mig.migrate`` root span for one migration."""
        spans = self.spans
        if not spans.enabled:
            return None
        return spans.start(
            "mig.migrate",
            f"mig:{self.host.name}",
            t=record.started,
            pid=record.pid,
            src=record.source,
            dst=record.target,
            reason=record.reason,
        )

    def _phase(
        self, root: Optional[Span], name: str, start: float, end: float,
        **attrs: Any,
    ) -> None:
        """Record one lifecycle phase as a child of ``root``.

        Phases are emitted with explicit boundaries so consecutive
        phases are contiguous: their durations sum exactly to the
        root's extent (``MigrationRecord.total_time``).
        """
        if root is not None:
            self.spans.record(name, root.source, start, end, parent=root,
                              **attrs)

    def _refuse(
        self,
        record: MigrationRecord,
        why: str,
        message: str,
        root: Optional[Span] = None,
    ) -> None:
        """Finalize a refused migration and raise ``MigrationRefused``."""
        record.refused = True
        record.ended = self.sim.now
        record.detail["refusal"] = why
        self.records.append(record)
        if self.obs is not None:
            self.obs.on_migration(record)
        if root is not None:
            root.annotate(refused=True, why=why).finish(record.ended)
        raise MigrationRefused(message)

    def _negotiate(
        self,
        pcb: Pcb,
        target: int,
        record: MigrationRecord,
        root: Optional[Span] = None,
    ) -> Generator[Effect, None, None]:
        try:
            answer = yield from self.host.rpc.call(
                target,
                "mig.negotiate",
                {
                    "version": self.params.migration_version,
                    "pid": pcb.pid,
                    "name": pcb.name,
                    "uid": pcb.uid,
                    "home": pcb.home,
                    "reason": record.reason,
                },
            )
        except RpcError as err:
            # Unreachable target: abort cleanly, process stays put.
            answer = {"accept": False, "why": f"target unreachable: {err}"}
        if not answer.get("accept"):
            why = answer.get("why", "unspecified")
            self._refuse(
                record,
                why,
                f"host {target} refused pid {pcb.pid}: {answer.get('why')}",
                root,
            )

    def _frozen_transfer(
        self,
        pcb: Pcb,
        target: int,
        record: MigrationRecord,
        skip_vm: bool,
        extra_bytes: int = 0,
        root: Optional[Span] = None,
    ) -> Generator[Effect, None, None]:
        params = self.params
        step_started = self.sim.now
        # -- virtual memory -------------------------------------------------
        if not skip_vm:
            record.vm = yield from self.policy.during_freeze(self, pcb, target)
            if root is not None:
                step_started = self._step(
                    root, "mig.vm_transfer", step_started,
                    bytes=record.vm.bytes_total, policy=record.policy,
                )
        # -- kernel state packaging (per-module encapsulation, §4.5) ---------
        yield from self.host.cpu.consume(params.migration_state_cpu)
        if root is not None:
            step_started = self._step(root, "mig.state_pack", step_started)
        # -- open streams ---------------------------------------------------
        stream_states = []
        for fd in sorted(pcb.streams):
            stream = pcb.streams[fd]
            state = yield from self.host.fs.export_stream(stream, target)
            stream_states.append((fd, state))
        record.streams_moved = len(stream_states)
        record.stream_bytes = len(stream_states) * params.stream_transfer_bytes
        record.state_bytes = params.migration_state_bytes + extra_bytes
        if root is not None:
            step_started = self._step(
                root, "mig.streams", step_started,
                count=record.streams_moved,
            )
        # -- ship the state and install at the target -------------------------
        payload = {
            "pcb": pcb,
            "streams": stream_states,
            "cpu_time": pcb.cpu_time,
        }
        wire_bytes = record.state_bytes + record.stream_bytes
        try:
            yield from self.host.rpc.call(
                target, "mig.install", payload, size=wire_bytes
            )
        except RpcError as err:
            # The target died after accepting (before Sprite's commit
            # point): abort — pull the stream references back and leave
            # the process running here, unharmed.
            yield from self._rollback_streams(pcb, target, stream_states)
            self._refuse(
                record,
                f"install failed: {err}",
                f"target {target} failed during transfer of pid {pcb.pid}: "
                f"{err}",
                root,
            )
        if root is not None:
            step_started = self._step(
                root, "mig.install", step_started, bytes=wire_bytes,
            )
        # -- detach locally; tell the home where the process went -------------
        source = self.address
        self.kernel.detach_pcb(pcb, target)
        if pcb.home not in (source, target):
            yield from self.host.rpc.call(
                pcb.home,
                "mig.update_location",
                {"pid": pcb.pid, "current": target},
            )
            if root is not None:
                self._step(root, "mig.update_home", step_started,
                           home=pcb.home)
        pcb.migrations += 1
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now,
                f"mig:{self.host.name}",
                "migrated",
                pid=pcb.pid,
                target=target,
                reason=record.reason,
                streams=record.streams_moved,
            )

    def _step(
        self, root: Span, name: str, started: float, **attrs: Any
    ) -> float:
        """Record one transfer sub-step span ending now; returns now."""
        now = self.sim.now
        # span-guard: caller (only invoked under ``if root is not None``)
        self.spans.record(name, root.source, started, now, parent=root,
                          **attrs)
        return now

    def _rollback_streams(
        self, pcb: Pcb, target: int, stream_states
    ) -> Generator[Effect, None, None]:
        """Return exported stream references to this host after an abort."""
        from ..fs.protocol import StreamMove

        for fd, _state in stream_states:
            stream = pcb.streams.get(fd)
            if stream is None or stream.is_pdev:
                continue
            try:
                yield from self.host.rpc.call(
                    stream.server,
                    "fs.stream_move",
                    StreamMove(
                        handle_id=stream.handle_id,
                        stream_id=stream.stream_id,
                        from_client=target,
                        to_client=self.address,
                        offset=stream.offset,
                        mode=stream.mode,
                    ),
                )
            except RpcError:
                continue  # server unreachable too; nothing more to do

    def _finish_record(
        self, record: MigrationRecord, root: Optional[Span] = None
    ) -> None:
        self.records.append(record)
        if self.obs is not None:
            self.obs.on_migration(record)
        if root is not None:
            root.finish(record.ended, streams=record.streams_moved)

    # ------------------------------------------------------------------
    # Target-side services
    # ------------------------------------------------------------------
    def _rpc_negotiate(self, args: Dict[str, Any]) -> Generator[Effect, None, Dict[str, Any]]:
        yield from self.host.cpu.consume(self.params.kernel_call_cpu)
        if args["version"] != self.params.migration_version:
            return {
                "accept": False,
                "why": (
                    f"migration version mismatch: theirs {args['version']}, "
                    f"ours {self.params.migration_version}"
                ),
            }
        # A host always accepts its own processes back (eviction must
        # never fail); otherwise the acceptance policy decides.
        if args["home"] != self.address and self.accept_hook is not None:
            if not self.accept_hook(args):
                return {"accept": False, "why": "host not accepting foreign work"}
        return {"accept": True, "version": self.params.migration_version}

    @property
    def pending_arrivals(self) -> int:
        """Accepted migrations still in flight (stale entries pruned)."""
        horizon = self.sim.now - self.pending_accept_ttl
        self._pending_accepts = [t for t in self._pending_accepts if t > horizon]
        return len(self._pending_accepts)

    def note_incoming(self) -> None:
        """Record an acceptance (called by acceptance policies)."""
        self._pending_accepts.append(self.sim.now)

    def _rpc_install(self, payload: Dict[str, Any]) -> Generator[Effect, None, None]:
        pcb: Pcb = payload["pcb"]
        if self._pending_accepts:
            self._pending_accepts.pop(0)
        yield from self.host.cpu.consume(self.params.migration_state_cpu)
        self.kernel.install_pcb(pcb)
        # Streams: install the exported copies under the original fds.
        pcb.streams = {}
        for fd, state in payload["streams"]:
            stream = yield from self.host.fs.import_stream(state)
            pcb.streams[fd] = stream
        # The backing file stays on its server; rebind it to this client.
        if pcb.vm.backing is not None:
            pcb.vm.backing = pcb.vm.backing.handoff(self.host.fs)
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, f"mig:{self.host.name}", "installed", pid=pcb.pid
            )
        return None

    def _rpc_update_location(self, args: Dict[str, Any]) -> Generator[Effect, None, None]:
        yield from self.host.cpu.consume(self.params.kernel_call_cpu)
        shadow = self.kernel.procs.get(args["pid"])
        if shadow is not None and shadow.state == ProcState.MIGRATED:
            shadow.current = args["current"]
        return None

    def _rpc_cor_fetch(self, nbytes: int) -> Generator[Effect, None, Reply]:
        """Serve a copy-on-reference page fetch (residual dependency)."""
        yield from self.host.cpu.consume(
            self.params.page_handling_cpu * self.params.pages(nbytes)
        )
        return Reply(result=nbytes, size=max(1, nbytes))
