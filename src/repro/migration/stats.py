"""Aggregation helpers over migration telemetry."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from .mechanism import MigrationManager, MigrationRecord

__all__ = [
    "collect_records",
    "summarize_records",
    "records_by_reason",
    "refusal_reasons",
    "rollback_stats",
]


def collect_records(managers: Iterable[MigrationManager]) -> List[MigrationRecord]:
    """All records across a cluster, in start-time order."""
    records: List[MigrationRecord] = []
    for manager in managers:
        records.extend(manager.records)
    records.sort(key=lambda r: r.started)
    return records


def records_by_reason(records: Iterable[MigrationRecord]) -> Dict[str, List[MigrationRecord]]:
    grouped: Dict[str, List[MigrationRecord]] = {}
    for record in records:
        grouped.setdefault(record.reason, []).append(record)
    return grouped


def refusal_reasons(records: Iterable[MigrationRecord]) -> Dict[str, int]:
    """How often each refusal reason occurred (``detail['refusal']``).

    Records refused without a recorded reason count under
    ``"unspecified"``; completed migrations are ignored.
    """
    reasons: Dict[str, int] = {}
    for record in records:
        if not record.refused:
            continue
        why = record.detail.get("refusal", "unspecified")
        reasons[why] = reasons.get(why, 0) + 1
    return reasons


def rollback_stats(managers: Iterable[MigrationManager]) -> Dict[str, int]:
    """Cluster-wide undo-log health: transaction counters plus the
    ``rollback_incomplete`` tally (aborts whose inline undo replay
    exhausted its retries and was handed to a background repair task).
    """
    totals = {
        "begun": 0,
        "committed": 0,
        "aborted": 0,
        "recovered": 0,
        "rollback_incomplete": 0,
        "rollback_pending": 0,
        "eviction_failures": 0,
    }
    for manager in managers:
        journal = manager.journal
        totals["begun"] += journal.begun
        totals["committed"] += journal.committed
        totals["aborted"] += journal.aborted
        totals["recovered"] += journal.recovered
        totals["rollback_incomplete"] += manager.rollback_incomplete
        totals["rollback_pending"] += sum(
            1 for txn in journal.txns.values() if txn.rollback_pending
        )
        totals["eviction_failures"] += manager.eviction_failures
    return totals


def summarize_records(records: List[MigrationRecord]) -> Dict[str, float]:
    """Means/percentiles of migration and freeze time (completed only)."""
    done = [r for r in records if not r.refused]
    if not done:
        return {"count": 0, "refused": sum(1 for r in records if r.refused)}
    totals = np.array([r.total_time for r in done])
    freezes = np.array([r.freeze_time for r in done])
    return {
        "count": len(done),
        "refused": sum(1 for r in records if r.refused),
        "mean_total_s": float(totals.mean()),
        "p95_total_s": float(np.percentile(totals, 95)),
        "mean_freeze_s": float(freezes.mean()),
        "p95_freeze_s": float(np.percentile(freezes, 95)),
        "mean_streams": float(np.mean([r.streams_moved for r in done])),
        "vm_bytes_total": float(
            np.sum([r.vm.bytes_total if r.vm else 0 for r in done])
        ),
    }
