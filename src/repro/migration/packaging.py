"""Process-packaging helpers shared by migration and checkpointing.

Packaging a process for the wire and packaging it for a checkpoint
image are the same discipline (thesis §4.5: per-module encapsulation of
process state): walk the open streams in a deterministic order, ship
machine-independent state plus per-stream references, and rebuild the
process on the other side from a zero-argument spawn factory.  This
module is the single home for that discipline — the migration
transaction (:mod:`repro.migration.mechanism`) and the checkpoint
subsystem (:mod:`repro.checkpoint`) both call it, and the
``mig-shared-packaging`` lint rule keeps divergent private copies from
creeping back in.

Every generator here is driven inside a host task and charges costs via
the caller's own FS/RPC calls; nothing in this module touches the
simulator clock directly.
"""

from __future__ import annotations

from functools import partial
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Tuple,
)

from ..fs.errors import FsError
from ..net.errors import RpcError
from ..sim import Effect

__all__ = [
    "PACKAGE_EXCEPTIONS",
    "discard_imports",
    "export_streams",
    "import_streams",
    "install_payload",
    "spawn_factory",
    "state_bytes",
    "stream_bytes",
    "stream_manifest",
]

#: The exception classes a packaging loop must tolerate per stream:
#: server RPC failures and FS-level refusals.  Both callers catch
#: exactly this tuple so their failure envelopes cannot drift apart.
PACKAGE_EXCEPTIONS = (RpcError, FsError)


def stream_manifest(pcb: Any) -> List[Tuple[int, Any]]:
    """The deterministic ``(fd, stream)`` packaging order for a process.

    Sorted by fd so exports, byte accounting, and undo logs are
    byte-identical across runs regardless of dict insertion order.
    """
    return [(fd, pcb.streams[fd]) for fd in sorted(pcb.streams)]


def export_streams(
    fs: Any,
    pcb: Any,
    target: int,
    on_export: Optional[Callable[[int, Any], Any]] = None,
) -> Generator[Effect, Any, List[Tuple[int, Any]]]:
    """Export every open stream of ``pcb`` to ``target``.

    Returns the ``[(fd, state), ...]`` list in manifest order.  When
    ``on_export`` is given it is called *before* each export with
    ``(fd, stream)`` and must return an object with a ``detail`` dict
    (the migration txn passes its intent undo entry); after a
    successful export the state is recorded under ``detail["state"]``
    so a mid-loop failure can roll back exactly the exports that may
    have touched the server.  Per-stream failures propagate — the
    caller owns abort handling.
    """
    stream_states: List[Tuple[int, Any]] = []
    for fd, stream in stream_manifest(pcb):
        entry = on_export(fd, stream) if on_export is not None else None
        state = yield from fs.export_stream(stream, target)
        if entry is not None:
            entry.detail["state"] = state
        stream_states.append((fd, state))
    return stream_states


def import_streams(
    fs: Any, stream_states: List[Tuple[int, Any]]
) -> Generator[Effect, Any, Tuple[Dict[int, Any], Optional[BaseException]]]:
    """Import exported stream states, one fd at a time.

    Returns ``(streams, failure)``: the successfully imported
    ``fd -> stream`` map plus the first :data:`PACKAGE_EXCEPTIONS`
    error (or ``None``).  On failure the loop stops — the caller
    decides whether to :func:`discard_imports` the partial map.
    """
    streams: Dict[int, Any] = {}
    failure: Optional[BaseException] = None
    for fd, state in stream_states:
        try:
            stream = yield from fs.import_stream(state)
        except PACKAGE_EXCEPTIONS as err:
            failure = err
            break
        streams[fd] = stream
    return streams, failure


def discard_imports(fs: Any, streams: Dict[int, Any]) -> None:
    """Drop imported stream references after a failed/abandoned install."""
    for fd in sorted(streams):
        fs.forget_stream(streams[fd])


def state_bytes(params: Any, extra_bytes: int = 0) -> int:
    """Bytes of machine-independent process state in a package."""
    return params.migration_state_bytes + extra_bytes


def stream_bytes(params: Any, count: int) -> int:
    """Bytes of per-stream reference state for ``count`` streams."""
    return count * params.stream_transfer_bytes


def install_payload(
    pcb: Any, ticket_id: int, stream_states: List[Tuple[int, Any]]
) -> Dict[str, Any]:
    """The canonical ship-the-process payload (``mig.install`` wire
    format); checkpoint images persist the same shape."""
    return {
        "pcb": pcb,
        "pid": pcb.pid,
        "ticket": ticket_id,
        "streams": stream_states,
        "cpu_time": pcb.cpu_time,
    }


def _bound_program(program: Any, args: Tuple[Any, ...], proc: Any) -> Any:
    """Module-level trampoline so factories pickle into snapshots."""
    return program(proc, *args)


def spawn_factory(program: Any, *args: Any) -> Any:
    """Bind ``program(*args)`` into a restartable spawn factory.

    The result is itself a program taking only the :class:`UserContext`
    — ``UserContext.start(factory)`` re-runs the original program with
    its original arguments.  Built from :func:`functools.partial` (not
    a closure) so a checkpointed factory pickles whenever ``program``
    does, mirroring how ``UserContext.start`` packages its driver.
    """
    return partial(_bound_program, program, tuple(args))
