"""Eviction: reclaiming a workstation for its returning user (ch. 8).

When input arrives at a host running foreign processes, Sprite evicts
them — migrates every foreign process back to its home — so the owner
never competes with guests for more than a moment.  The home machine
always accepts its own processes, so eviction cannot fail; from home
the load-sharing layer may immediately re-export them elsewhere.

:class:`EvictionDaemon` watches for the input signal; the transfer
mechanics are :meth:`MigrationManager.evict_all_foreign`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional

from ..sim import Effect, Sleep, spawn
from ..obs.spans import EVICT_RECLAIM
from .mechanism import MigrationManager, MigrationRecord

__all__ = ["EvictionDaemon", "EvictionEvent"]


@dataclass
class EvictionEvent:
    """One user-return incident and how long the reclaim took."""

    time: float
    host: int
    victims: int
    #: Seconds from the triggering input until the last foreign process
    #: was gone (the interval the thesis measures for responsiveness).
    reclaim_seconds: float
    records: List[MigrationRecord] = field(default_factory=list)


class EvictionDaemon:
    """Watches a host and evicts foreign processes when its user returns.

    ``on_evicted`` (if set) is called with each batch of migration
    records — the load-sharing layer uses it to re-home or re-export
    the displaced work.
    """

    def __init__(
        self,
        manager: MigrationManager,
        poll_period: Optional[float] = None,
        on_evicted: Optional[Callable[[List[MigrationRecord]], None]] = None,
        start: bool = True,
    ):
        self.manager = manager
        self.host = manager.host
        self.poll_period = (
            poll_period
            if poll_period is not None
            else manager.params.eviction_grace
        )
        self.on_evicted = on_evicted
        self.events: List[EvictionEvent] = []
        self.failed_evictions = 0
        self._last_seen_input = float("-inf")
        if start:
            spawn(
                self.host.sim,
                self._watch,
                name=f"evictiond:{self.host.name}",
                daemon=True,
            )

    # ------------------------------------------------------------------
    def _watch(self) -> Generator[Effect, None, None]:
        while True:
            yield Sleep(self.poll_period)
            if self._user_returned() and self.manager.kernel.foreign_pcbs():
                try:
                    yield from self.evict_now()
                except Exception:  # noqa: BLE001 - keep watching; a home
                    # may be temporarily unreachable, retry next period.
                    self.failed_evictions += 1

    def _user_returned(self) -> bool:
        newer = self.host.last_input > self._last_seen_input
        if newer:
            self._last_seen_input = self.host.last_input
        return self.host.user_present or newer

    # ------------------------------------------------------------------
    def evict_now(self) -> Generator[Effect, None, EvictionEvent]:
        """Evict every foreign process immediately; returns the event."""
        started = self.host.sim.now
        records = yield from self.manager.evict_all_foreign()
        event = EvictionEvent(
            time=started,
            host=self.host.address,
            victims=len(records),
            reclaim_seconds=self.host.sim.now - started,
            records=records,
        )
        self.events.append(event)
        spans = self.manager.spans
        if spans.enabled:
            spans.record(
                EVICT_RECLAIM,
                f"evict:{self.host.name}",
                started,
                self.host.sim.now,
                victims=event.victims,
            )
        if self.manager.obs is not None:
            self.manager.obs.on_eviction(event)
        if self.host.tracer.enabled:
            self.host.tracer.emit(
                self.host.sim.now,
                f"evict:{self.host.name}",
                "evicted",
                victims=event.victims,
                seconds=round(event.reclaim_seconds, 6),
            )
        if self.on_evicted is not None and records:
            self.on_evicted(records)
        return event
