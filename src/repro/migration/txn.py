"""Crash-consistent migration transactions (the Sprite commit point, §4.5).

The thesis promises that a migration either completes or leaves the
process running untouched at the source.  This module makes that
promise explicit: every migration is a :class:`MigrationTxn` driven
through a small state machine,

    NEGOTIATED --> FROZEN --> SHIPPED --> COMMITTED
         \\           \\          \\
          +-----------+----------+------> ABORTED

with a *single commit point* — the source's ``mig.commit`` RPC.  Before
the commit the target holds the process **inactive** under a leased
:class:`~repro.kernel.MigrationTicket` (crash anywhere → the target
reaps the inactive copy when the lease expires, the source resumes or
dies with its own copy; never two runnable copies).  After the commit
the target's copy is the process (crash at the source → its shadow and
home-update duties are reconstructed from the journal on reboot).

Each txn step is idempotent and journaled in the per-host
:class:`MigrationJournal`.  The journal models Sprite writing its
migration metadata through the file system: it survives ``host.crash``
(unlike the kernel's process table) and is replayed by
``MigrationManager.on_reboot`` — in-flight transactions replay their
undo log (stream references pulled back or closed, the target's
inactive copy released), committed-but-unfinished ones re-drive the
post-commit duties (home shadow, ``mig.update_location``, close).

The journal also exposes the per-step hook the crash-matrix harness
(:mod:`repro.faults.crashmatrix`) uses to inject a fault at *every*
step boundary of the protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "TxnState",
    "TXN_STEPS",
    "JournalEntry",
    "UndoEntry",
    "MigrationTxn",
    "MigrationJournal",
]


class TxnState(enum.Enum):
    """Lifecycle of one migration transaction."""

    NEGOTIATED = "negotiated"   # target accepted; lease (ticket) issued
    FROZEN = "frozen"           # process parked at a safe point
    SHIPPED = "shipped"         # inactive copy resident at the target
    COMMITTED = "committed"     # target activated; the copy there is IT
    ABORTED = "aborted"         # undo log replayed (or being replayed)


#: Every journaled step boundary, in protocol order.  The crash matrix
#: iterates exactly this tuple: {source, target, home, FS server} x
#: {crash, partition} x each boundary below.
TXN_STEPS = (
    "negotiated",        # mig.negotiate accepted, ticket issued
    "frozen",            # process parked at its safe point
    "vm_sent",           # VM policy's frozen-phase transfer done
    "state_packed",      # machine-independent kernel state packaged
    "streams_exported",  # every open stream moved to the target's name
    "shipped",           # mig.install acked: inactive copy at target
    "commit_sent",       # commit point crossed from the source's view
    "committed",         # target acked activation
    "detached",          # source dropped its copy / became the shadow
    "home_updated",      # third-party home points at the target
    "closed",            # target dropped its lease record: txn complete
)

_STEP_INDEX = {name: i for i, name in enumerate(TXN_STEPS)}


@dataclass(frozen=True)
class JournalEntry:
    """One journaled step of one transaction."""

    time: float
    txn_id: str
    step: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:12.6f}] txn {self.txn_id} {self.step:<16} {parts}"


@dataclass
class UndoEntry:
    """One compensating action recorded before its forward action.

    ``kind`` is ``"stream"`` (a stream reference moved to the target;
    undone by :meth:`repro.fs.FsClient.undo_export`) or ``"ticket"``
    (a lease issued at the target; undone by ``mig.release``).
    """

    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)
    #: Set once the compensating action has been applied (idempotence).
    undone: bool = False


@dataclass
class MigrationTxn:
    """One migration's transactional state, owned by the source."""

    txn_id: str
    pid: int
    source: int
    target: int
    home: int
    reason: str
    pcb: Any = None
    ticket_id: int = 0
    expires: float = 0.0
    state: TxnState = TxnState.NEGOTIATED
    #: Steps journaled so far, in order (idempotent: logged once).
    steps: List[str] = field(default_factory=list)
    undo: List[UndoEntry] = field(default_factory=list)
    started: float = 0.0
    #: True once nothing remains to do or undo; only then may the
    #: journal forget the transaction ("no leaked journal entries").
    finished: bool = False
    #: An abort exhausted its rollback retries; a background repair
    #: task owns the remaining undo entries.
    rollback_pending: bool = False
    journal: Optional["MigrationJournal"] = None

    # ------------------------------------------------------------------
    def advance(self, state: TxnState) -> None:
        self.state = state

    def step(self, name: str, **detail: Any) -> None:
        """Journal one step boundary (idempotent: re-logging is a no-op)."""
        if name in self.steps:
            return
        if name not in _STEP_INDEX:
            raise ValueError(f"unknown txn step {name!r}")
        self.steps.append(name)
        if self.journal is not None:
            self.journal.log(self, name, detail)

    def did(self, name: str) -> bool:
        return name in self.steps

    def push_undo(self, kind: str, **detail: Any) -> UndoEntry:
        entry = UndoEntry(kind=kind, detail=detail)
        self.undo.append(entry)
        return entry

    def pending_undo(self) -> List[UndoEntry]:
        """Compensating actions not yet applied, newest first."""
        return [e for e in reversed(self.undo) if not e.undone]

    @property
    def in_doubt(self) -> bool:
        """The commit may have been delivered but was never acked."""
        return self.did("commit_sent") and not self.did("committed")

    def finish(self) -> None:
        self.finished = True
        if self.journal is not None:
            self.journal.forget(self)


def _zero_clock() -> float:
    """Default journal clock before a simulator is bound (picklable,
    unlike the ``lambda: 0.0`` it replaced)."""
    return 0.0


class MigrationJournal:
    """Per-host migration write-ahead journal.

    Modeled as *persistent* storage: the object lives on the (never
    reconstructed) :class:`~repro.migration.MigrationManager`, so —
    unlike the kernel's process table — it survives ``host.crash`` and
    is what reboot-time recovery replays.

    ``enabled=False`` is a benchmark-only ablation (no entries, no open
    transactions, no recovery) used to pin the journal's overhead; the
    protocol itself runs identically either way.
    """

    def __init__(self, host_name: str = "?", enabled: bool = True):
        self.host_name = host_name
        self.enabled = enabled
        self.entries: List[JournalEntry] = []
        #: Open (not yet finished) transactions by id.
        self.txns: Dict[str, MigrationTxn] = {}
        self._seq = 0
        #: Crash-matrix hook: called as ``on_step(txn, step)`` right
        #: after each step is journaled, *at that simulated instant*.
        self.on_step: Optional[Callable[[MigrationTxn, str], None]] = None
        #: Monotonic telemetry (never reset; survives crashes).
        self.begun = 0
        self.committed = 0
        self.aborted = 0
        self.recovered = 0
        self._now: Callable[[], float] = _zero_clock

    # ------------------------------------------------------------------
    def bind_clock(self, now: Callable[[], float]) -> None:
        self._now = now

    def begin(
        self, pcb: Any, source: int, target: int, reason: str
    ) -> MigrationTxn:
        self._seq += 1
        txn = MigrationTxn(
            txn_id=f"{source}:{pcb.pid}:{self._seq}",
            pid=pcb.pid,
            source=source,
            target=target,
            home=pcb.home,
            reason=reason,
            pcb=pcb,
            started=self._now(),
            journal=self if self.enabled else None,
        )
        self.begun += 1
        if self.enabled:
            self.txns[txn.txn_id] = txn
        return txn

    def log(self, txn: MigrationTxn, step: str, detail: Dict[str, Any]) -> None:
        if not self.enabled:
            return
        self.entries.append(
            JournalEntry(self._now(), txn.txn_id, step, dict(detail))
        )
        if self.on_step is not None:
            self.on_step(txn, step)

    def forget(self, txn: MigrationTxn) -> None:
        self.txns.pop(txn.txn_id, None)

    def open_txns(self) -> List[MigrationTxn]:
        """Transactions with work left to do or undo (recovery targets)."""
        return [
            self.txns[key] for key in sorted(self.txns)
            if not self.txns[key].finished
        ]
