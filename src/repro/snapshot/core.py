"""Capturing a whole cluster as one immutable byte string.

A :class:`Snapshot` is a deterministic serialization of a fully built
cluster — engine event queue and sequence counters, tasks, channels,
kernels, FS servers and caches, stream tables, migration journals,
lease registries, RNG streams, metrics — everything reachable from the
cluster object.  :meth:`Snapshot.fork` materializes an independent
copy; forks share nothing with each other or with the original, so a
sweep can run one warmed-up base through hundreds of divergent
scenarios.

What can be captured
--------------------
A cluster whose coroutines have not started running.  Simulated tasks
are Python generators, and a *started* generator cannot be serialized;
an **unstarted** one can, because :class:`~repro.sim.tasks.Task`
remembers the zero-argument factory it was spawned from and rebuilds
the generator on materialization (see ``Task.__getstate__``).  In
practice that means: build the cluster, install images, arm fault
plans and injectors — then snapshot, *before* calling ``run()``.
Snapshotting a cluster that has live half-run coroutines raises
:class:`~repro.sim.SnapshotError` naming the offending task.

Determinism
-----------
Capture is pure: the same cluster state always yields the same bytes
(:attr:`Snapshot.digest` is its identity), and every fork of one
snapshot starts from an identical object graph — so a forked cell and
a freshly built cell with the same seed produce byte-identical traces.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any, Dict, Optional

from ..sim import SnapshotError

__all__ = ["Snapshot", "PICKLE_PROTOCOL"]

#: One pinned protocol, so a snapshot's bytes (and digest) don't vary
#: with the interpreter's default.
PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


class Snapshot:
    """An immutable captured cluster; :meth:`fork` materializes copies."""

    __slots__ = ("payload", "meta")

    def __init__(self, payload: bytes, meta: Dict[str, Any]):
        self.payload = payload
        self.meta = meta

    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        cluster: Any,
        extras: Optional[Dict[str, Any]] = None,
    ) -> "Snapshot":
        """Serialize ``cluster`` (plus named companion objects).

        ``extras`` are captured in the *same* pickle, so references they
        share with the cluster stay shared in every fork — e.g. a
        :class:`~repro.loadsharing.LoadSharingService` whose selectors
        point at the cluster's hosts.  Forks expose them as
        ``fork.extras[name]``.
        """
        extras = dict(extras or {})
        try:
            payload = pickle.dumps((cluster, extras), PICKLE_PROTOCOL)
        except SnapshotError:
            raise
        except Exception as exc:  # noqa: BLE001 - translate, keep cause
            raise SnapshotError(
                f"cluster state is not snapshotable: {exc!r}; snapshots "
                "must be taken before the simulation runs (all tasks "
                "unstarted) and every construction-time callback must be "
                "a picklable object, not a closure"
            ) from exc
        meta: Dict[str, Any] = {
            "nbytes": len(payload),
            "extras": sorted(extras),
            "sim_now": getattr(getattr(cluster, "sim", None), "now", None),
        }
        return cls(payload, meta)

    # ------------------------------------------------------------------
    def fork(self) -> Any:
        """Materialize one independent copy of the captured cluster.

        Every call returns a fresh object graph sharing nothing with
        the snapshot, the original cluster, or sibling forks.  Captured
        ``extras`` hang off the returned cluster as ``.extras``.
        """
        cluster, extras = pickle.loads(self.payload)
        try:
            cluster.extras = extras
        except AttributeError:  # slotted/foreign cluster type: skip
            pass
        return cluster

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return len(self.payload)

    @property
    def digest(self) -> str:
        """SHA-256 of the payload — the snapshot's deterministic identity."""
        return hashlib.sha256(self.payload).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debug nicety
        return (
            f"Snapshot(nbytes={self.nbytes}, digest={self.digest[:12]}..., "
            f"extras={self.meta.get('extras', [])})"
        )
