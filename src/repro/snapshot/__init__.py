"""Copy-on-write cluster snapshots and the parallel sweep runner.

* :class:`Snapshot` — capture a fully built (not yet run) cluster as
  one deterministic byte string; :meth:`Snapshot.fork` materializes
  independent copies.  See :mod:`repro.snapshot.core`.
* :class:`SweepRunner` — run many sweep cells from one warmed base,
  each in a forked copy-on-write child, fanned over up to ``workers``
  concurrent processes with a deterministic, index-ordered merge.  See
  :mod:`repro.snapshot.sweep`.

Entry point from a cluster: ``cluster.snapshot()``.  Docs:
``docs/snapshots.md``.
"""

from .core import PICKLE_PROTOCOL, Snapshot
from .sweep import SweepError, SweepRunner, forked_map, forked_map_metrics

__all__ = [
    "PICKLE_PROTOCOL",
    "Snapshot",
    "SweepError",
    "SweepRunner",
    "forked_map",
    "forked_map_metrics",
]
