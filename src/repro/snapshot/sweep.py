"""Fan a parameter sweep out over copy-on-write forks of one base.

The sweeps this repo runs — the 88-cell crash matrix, chaos campaigns,
policy/network parameter grids — all repeat the same expensive prefix:
build a cluster, install images, wire a load-sharing service, arm the
fault layer.  :class:`SweepRunner` pays that prefix **once**: the base
is materialized a single time in the parent process, and every cell
runs in a forked child that shares the parent's pages copy-on-write
(``os.fork``), so per-cell setup cost is a small constant regardless
of how large the base is.  Nothing is pickled per cell except each
cell's (small) result, shipped back over a pipe.

Why ``os.fork`` rather than shipping pickled snapshots to a
``multiprocessing`` pool: materializing a snapshot costs about as much
as building the cluster from scratch (both walk the same object
graph), while a kernel-level fork duplicates nothing up front — the
child *is* the warmed base, instantly.  ``os.fork`` is the same
primitive under ``multiprocessing``'s default ``fork`` start method;
driving it directly lets one pool give every cell a pristine COW copy
of the base (a pool worker that ran a cell in-place would have dirtied
it for the next cell).

Determinism contract
--------------------
Results come back **indexed by cell position** and are merged in input
order, and every child starts from the identical parent image, so the
result list — and any fingerprint derived from it — is byte-identical
for any ``workers`` count, including the sequential fallback path.

Portability: on platforms without ``os.fork`` (or with ``cow=False``)
cells run sequentially in-process, each on a fresh
:meth:`~repro.snapshot.Snapshot.fork` — same results, no parallelism.
"""

from __future__ import annotations

import os
import pickle
import select
import traceback
from typing import Any, Callable, List, Optional, Sequence

from .core import PICKLE_PROTOCOL, Snapshot

__all__ = ["SweepRunner", "SweepError", "forked_map", "forked_map_metrics"]

_CHUNK = 1 << 16


class SweepError(RuntimeError):
    """A sweep cell failed; carries the child's formatted traceback."""


def _has_fork() -> bool:
    return hasattr(os, "fork")


def forked_map(
    job: Callable[[int], Any],
    count: int,
    workers: int = 1,
) -> List[Any]:
    """Run ``job(i)`` for ``i in range(count)``, each in a forked child.

    At most ``workers`` children run at once.  Each child executes one
    job against a copy-on-write image of the parent, pickles the return
    value into a pipe and ``os._exit``\\ s — the parent is never mutated.
    Results are returned in index order (deterministic for any
    ``workers``).  A child that raises surfaces as :class:`SweepError`
    with the child's traceback, after every other child is reaped.
    """
    if not _has_fork():  # pragma: no cover - non-POSIX fallback
        return [job(i) for i in range(count)]
    workers = max(1, workers)
    results: List[Any] = [None] * count
    failures: List[str] = []
    pending = {}  # read-fd -> [index, pid, buffer]
    next_index = 0
    while next_index < count or pending:
        while next_index < count and len(pending) < workers:
            read_fd, write_fd = os.pipe()
            pid = os.fork()
            if pid == 0:
                # Child: run one cell against the inherited COW image,
                # ship the pickled result, and vanish without running
                # any of the parent's exit machinery.
                os.close(read_fd)
                try:
                    try:
                        payload = pickle.dumps(
                            (True, job(next_index)), PICKLE_PROTOCOL
                        )
                    except BaseException:  # noqa: BLE001 - report, don't die
                        payload = pickle.dumps(
                            (False, traceback.format_exc()), PICKLE_PROTOCOL
                        )
                    while payload:
                        written = os.write(write_fd, payload)
                        payload = payload[written:]
                finally:
                    os._exit(0)
            os.close(write_fd)
            pending[read_fd] = [next_index, pid, bytearray()]
            next_index += 1
        ready, _, _ = select.select(list(pending), [], [])
        for fd in ready:
            chunk = os.read(fd, _CHUNK)
            if chunk:
                pending[fd][2] += chunk
                continue
            index, pid, buffer = pending.pop(fd)
            os.close(fd)
            os.waitpid(pid, 0)
            try:
                ok, value = pickle.loads(bytes(buffer))
            except Exception:  # noqa: BLE001 - child died mid-write
                ok, value = False, f"cell {index}: child produced no result"
            if ok:
                results[index] = value
            else:
                failures.append(f"cell {index} failed in child:\n{value}")
    if failures:
        raise SweepError("\n".join(failures))
    return results


def forked_map_metrics(
    job: Callable[[int], Any],
    count: int,
    workers: int = 1,
) -> Any:
    """:func:`forked_map` for jobs that also produce per-cell metrics.

    ``job(i)`` must return ``(value, registry_or_none)`` where the
    second element is a :class:`~repro.obs.metrics.MetricsRegistry` (or
    ``None`` for cells with nothing to report).  Each cell's registry
    crosses the fork boundary through the same result pipe as its
    value; the parent folds them with
    :meth:`MetricsRegistry.merge_from` **in cell-index order**, so the
    merged aggregate — counter totals, histogram buckets, series — is
    fingerprint-stable for any ``workers`` count.

    Returns ``(values, merged_registry)``.
    """
    from ..obs.metrics import MetricsRegistry

    pairs = forked_map(job, count, workers)
    values: List[Any] = []
    merged = MetricsRegistry()
    for index, pair in enumerate(pairs):
        if not (isinstance(pair, tuple) and len(pair) == 2):
            raise SweepError(
                f"cell {index}: forked_map_metrics jobs must return "
                f"(value, MetricsRegistry-or-None), got {type(pair).__name__}"
            )
        value, registry = pair
        values.append(value)
        if registry is not None:
            merged.merge_from(registry)
    return values, merged


class SweepRunner:
    """Run one cell function over many cells from a shared warm base.

    ``base`` is one of:

    * a :class:`Snapshot` — materialized **once** (in the parent);
      every cell's child inherits that image copy-on-write;
    * a live cluster object — used directly as the parent image (the
      caller warms it; children fork from it, the parent copy is never
      touched and stays reusable);
    * a zero-argument builder callable — called **per cell, in the
      child**: the fresh-build baseline the forked paths are measured
      against.

    ``cell_fn(cluster, cell)`` runs entirely inside the child (so it
    may be a closure — nothing about it is ever pickled) and must
    return a picklable value.
    """

    def __init__(
        self,
        base: Any,
        workers: int = 1,
        cow: Optional[bool] = None,
    ):
        self.base = base
        self.workers = max(1, int(workers))
        self.cow = _has_fork() if cow is None else bool(cow)
        if isinstance(base, Snapshot):
            self._mode = "snapshot"
        elif callable(base):
            self._mode = "builder"
        else:
            self._mode = "live"
        self._parent_image: Any = None

    # ------------------------------------------------------------------
    def _parent_cluster(self) -> Any:
        """The warm image children fork from (materialized lazily, once)."""
        if self._parent_image is None:
            if self._mode == "snapshot":
                self._parent_image = self.base.fork()
            else:  # live
                self._parent_image = self.base
        return self._parent_image

    def _fresh(self) -> Any:
        """A brand-new independent cluster (sequential fallback path)."""
        if self._mode == "builder":
            return self.base()
        if self._mode == "snapshot":
            return self.base.fork()
        # Live base without fork isolation: snapshot it once, then
        # materialize per cell, so cells can't see each other.
        if not isinstance(self._parent_image, Snapshot):
            self._parent_image = Snapshot.capture(self.base)
        return self._parent_image.fork()

    # ------------------------------------------------------------------
    def run(
        self,
        cells: Sequence[Any],
        cell_fn: Callable[[Any, Any], Any],
    ) -> List[Any]:
        """Map ``cell_fn`` over ``cells``; results in input order."""
        cells = list(cells)
        if not cells:
            return []
        if self.cow and _has_fork():
            if self._mode == "builder":
                builder = self.base

                def job(index: int) -> Any:
                    return cell_fn(builder(), cells[index])

            else:
                parent = self._parent_cluster()

                def job(index: int) -> Any:
                    return cell_fn(parent, cells[index])

            return forked_map(job, len(cells), self.workers)
        return [cell_fn(self._fresh(), cell) for cell in cells]

    def run_with_metrics(
        self,
        cells: Sequence[Any],
        cell_fn: Callable[[Any, Any], Any],
    ) -> Any:
        """Like :meth:`run`, for cell functions returning
        ``(value, MetricsRegistry-or-None)``.

        Returns ``(values, merged_registry)``; per-cell registries are
        folded in cell order (see :func:`forked_map_metrics`), so the
        aggregate is identical for any worker count and for the
        sequential fallback path.
        """
        from ..obs.metrics import MetricsRegistry

        pairs = self.run(cells, cell_fn)
        values: List[Any] = []
        merged = MetricsRegistry()
        for index, pair in enumerate(pairs):
            if not (isinstance(pair, tuple) and len(pair) == 2):
                raise SweepError(
                    f"cell {index}: run_with_metrics cell functions must "
                    "return (value, MetricsRegistry-or-None), got "
                    f"{type(pair).__name__}"
                )
            value, registry = pair
            values.append(value)
            if registry is not None:
                merged.merge_from(registry)
        return values, merged
