"""Calibration self-checks.

Micro-simulations that measure the model's own primitive costs and
compare them against the calibration targets documented in
:mod:`repro.config`.  Run via the test suite (or directly) after any
parameter change to confirm the model still sits on the Sun-3-class
operating points the paper-shape arguments depend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .config import KB, MB, ClusterParams
from .net import Lan, NetNode, RpcPort
from .sim import Cpu, Simulator, run_until_complete

__all__ = ["CalibrationReport", "measure_calibration"]


@dataclass
class CalibrationReport:
    """Measured primitive costs (model units)."""

    null_rpc_ms: float
    bulk_throughput_kbs: float
    local_call_ms: float
    lookup_ms: float

    def rows(self) -> Dict[str, float]:
        return {
            "null RPC round trip (ms)": round(self.null_rpc_ms, 3),
            "bulk throughput (KB/s)": round(self.bulk_throughput_kbs, 1),
            "local kernel call (ms)": round(self.local_call_ms, 4),
            "server name lookup (ms)": round(self.lookup_ms, 3),
        }


def measure_calibration(params: ClusterParams = None) -> CalibrationReport:
    """Measure primitives on a two-node micro-cluster."""
    params = params or ClusterParams()
    sim = Simulator()
    lan = Lan(sim, params=params)
    a, b = NetNode(sim, "a"), NetNode(sim, "b")
    lan.register(a)
    lan.register(b)
    cpu_a, cpu_b = Cpu(sim, name="a"), Cpu(sim, name="b")
    port_a = RpcPort(sim, lan, a, cpu=cpu_a, params=params)
    port_b = RpcPort(sim, lan, b, cpu=cpu_b, params=params)

    def echo(args):
        return args
        yield  # pragma: no cover

    def bulk(args):
        from .net import Reply

        return Reply(result=args, size=1 * MB)
        yield  # pragma: no cover

    port_b.register("echo", echo)
    port_b.register("bulk", bulk)
    measurements = {}

    def bench():
        rounds = 20
        start = sim.now
        for _ in range(rounds):
            yield from port_a.call(b.address, "echo", 0)
        measurements["null_rpc"] = (sim.now - start) / rounds
        start = sim.now
        yield from port_a.call(
            b.address, "bulk", 0, reply_size=1 * MB, timeout=None
        )
        measurements["bulk_seconds_per_mb"] = sim.now - start
        start = sim.now
        yield from cpu_a.consume(params.kernel_call_cpu)
        measurements["local_call"] = sim.now - start
        start = sim.now
        yield from cpu_b.consume(params.fs_name_lookup_cpu)
        measurements["lookup"] = sim.now - start

    run_until_complete(sim, bench(), name="calibration")
    return CalibrationReport(
        null_rpc_ms=measurements["null_rpc"] * 1e3,
        bulk_throughput_kbs=(1 * MB / KB) / measurements["bulk_seconds_per_mb"],
        local_call_ms=measurements["local_call"] * 1e3,
        lookup_ms=measurements["lookup"] * 1e3,
    )
