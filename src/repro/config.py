"""Cluster-wide calibration parameters.

One :class:`ClusterParams` instance flows to every subsystem so that an
experiment can re-run the whole stack with, say, a faster network or a
larger page size.  Defaults are calibrated to the hardware of the
thesis's evaluation (Sun-3-class workstations on 10 Mb/s Ethernet):

* null kernel-to-kernel RPC round trip ≈ 1.9 ms,
* bulk network throughput ≈ 820 KB/s,
* 8 KB virtual-memory pages, 4 KB file-system blocks,
* local trivial kernel call ≈ 0.1 ms.

Absolute numbers in this reproduction are *model* numbers; what must
match the paper is their relationships (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

KB = 1024
MB = 1024 * 1024
MS = 1e-3
US = 1e-6

__all__ = ["ClusterParams", "KB", "MB", "MS", "US"]


@dataclass
class ClusterParams:
    """Knobs for the simulated Sprite cluster."""

    # --- network ------------------------------------------------------
    #: One-way wire/controller latency per message (seconds).
    net_latency: float = 0.15 * MS
    #: Effective payload bandwidth of the shared Ethernet (bytes/second).
    net_bandwidth: float = 820 * KB
    #: Whether concurrent transfers contend for the shared medium.
    net_shared_medium: bool = True

    # --- RPC ----------------------------------------------------------
    #: CPU consumed on each end per RPC (marshalling, kernel dispatch).
    rpc_cpu_overhead: float = 0.7 * MS
    #: Client-side timeout before an RPC is considered lost.
    rpc_timeout: float = 5.0
    #: Retries before giving up on an unreachable host.
    rpc_retries: int = 2
    #: Retry backoff: the first retry waits ``rpc_backoff_base`` seconds,
    #: doubling per attempt up to ``rpc_backoff_cap``, each delay scaled
    #: by a deterministic jitter factor in [1-j, 1+j] so callers that
    #: lost the same host do not retry in lockstep.
    rpc_backoff_base: float = 0.2
    rpc_backoff_cap: float = 2.0
    rpc_backoff_jitter: float = 0.25
    #: Server-side exactly-once window: completed requests remembered
    #: per port so a duplicate (retry or duplicating link) replays the
    #: recorded reply instead of re-executing the handler.  Sized well
    #: above the number of requests a client can have outstanding
    #: inside one retry window; ``0`` disables dedup entirely.
    rpc_dedup_cache: int = 512
    #: Per-node inbox capacity in packets; ``0`` means unbounded.  A
    #: full inbox is a *counted* drop (the sender discovers it by
    #: timeout and backs off), never an exception.
    net_inbox_capacity: int = 0

    # --- CPU / kernel ---------------------------------------------------
    #: Relative CPU speed of every host (1.0 = Sun-3 class).
    cpu_speed: float = 1.0
    #: Scheduler quantum (seconds).
    cpu_quantum: float = 10 * MS
    #: CPU cost of a trivial local kernel call (e.g. getpid).
    kernel_call_cpu: float = 0.1 * MS
    #: CPU cost of fork bookkeeping (excluding VM copy charges).
    fork_cpu: float = 2.0 * MS
    #: CPU cost of exec bookkeeping (excluding image load).
    exec_cpu: float = 3.0 * MS
    #: Load-average sampling period and decay constant (seconds).
    load_sample_period: float = 1.0
    load_decay: float = 60.0

    # --- memory ---------------------------------------------------------
    #: Virtual-memory page size (bytes).  Sun-3 Sprite used 8 KB pages.
    page_size: int = 8 * KB
    #: CPU cost to prepare/install one page during a transfer.
    page_handling_cpu: float = 0.1 * MS

    # --- file system ----------------------------------------------------
    #: File-system block size (bytes).
    fs_block_size: int = 4 * KB
    #: Server CPU per open/close/lookup RPC beyond the generic RPC cost.
    fs_name_lookup_cpu: float = 1.2 * MS
    #: Server CPU per block read/write it serves.
    fs_block_cpu: float = 0.25 * MS
    #: Client CPU per block moved through its own cache.
    client_block_cpu: float = 0.1 * MS
    #: Server disk throughput (bytes/second) and per-op latency.
    disk_bandwidth: float = 1.0 * MB
    disk_latency: float = 15.0 * MS
    #: Fraction of reads absorbed by the server's own block cache.
    server_cache_hit_rate: float = 0.8
    #: Client cache capacity in blocks and the delayed-write-back period
    #: (Sprite wrote dirty blocks back after 30 seconds).
    client_cache_blocks: int = 4096
    writeback_period: float = 30.0

    # --- migration ------------------------------------------------------
    #: Kernel CPU to package/install the process control block and other
    #: non-VM, non-file state at each end of a migration.
    migration_state_cpu: float = 25.0 * MS
    #: Bytes of machine-independent process state shipped per migration.
    migration_state_bytes: int = 4 * KB
    #: Extra state bytes and CPU per open stream transferred.
    stream_transfer_bytes: int = 512
    stream_transfer_cpu: float = 2.0 * MS
    #: Protocol version advertised by each kernel; mismatched kernels
    #: refuse to migrate (thesis §4.5).
    migration_version: int = 9
    #: Lease on the inactive copy a target installs before the commit
    #: point: if no ``mig.commit`` arrives within this many seconds of
    #: negotiation the target reaps the copy and reclaims its memory.
    migration_ticket_ttl: float = 30.0
    #: Attempts per compensating action when an aborting migration
    #: replays its undo log (each retry backed off with the jittered
    #: RPC schedule); exhausting them hands the remainder to a
    #: background repair task and bumps ``rollback_incomplete``.
    migration_rollback_retries: int = 4
    #: Ablation knob for benchmarks: disable the migration write-ahead
    #: journal (protocol unchanged; recovery and the crash matrix
    #: require it on).
    migration_txn_journal: bool = True

    # --- checkpointing ----------------------------------------------------
    #: Default period between checkpoints of a registered process
    #: (seconds of sim time); policies override it per run.
    checkpoint_interval: float = 60.0
    #: Kernel CPU to package (or re-instantiate) the non-VM process
    #: state for a checkpoint image — the same work migration's
    #: ``migration_state_cpu`` models, charged by the daemon.
    checkpoint_state_cpu: float = 25.0 * MS
    #: Image trailer: digest + header bytes appended to every image so
    #: a torn write is detectable (and so no image write is ever empty).
    checkpoint_digest_bytes: int = 64
    #: Intact image generations kept per process; older ones are
    #: dropped so checkpoint storage is bounded.
    checkpoint_generations: int = 2

    # --- load sharing -----------------------------------------------------
    #: A host counts as idle when its load average is below this and no
    #: user input arrived within ``idle_input_threshold`` seconds.
    idle_load_threshold: float = 0.3
    idle_input_threshold: float = 30.0
    #: How often hosts re-evaluate/announce their availability.
    availability_period: float = 5.0
    #: Pause before a reclaimed host's foreign processes must be gone.
    eviction_grace: float = 1.0

    # --- backpressure -----------------------------------------------------
    #: Target-side cap on concurrent incoming migration leases; beyond
    #: it ``mig.negotiate`` answers :class:`~repro.net.RetryLaterError`
    #: (backpressure, distinct from refusal or death).  ``0`` = no cap.
    migration_max_incoming: int = 0
    #: Source-side cap on concurrently *driving* outbound migrations;
    #: beyond it ``migrate()`` refuses immediately with a counted
    #: "source busy" refusal instead of piling onto the network. ``0``
    #: = no cap.
    migration_max_outgoing: int = 0
    #: migd admission control: selection requests queued beyond this
    #: are answered "busy" without running selection, and the client
    #: degrades to local execution.  ``0`` = no cap.
    migd_max_pending: int = 0

    # --- failure detection (suspicion-based, repro.faults.detector) --------
    #: Heartbeat sampling period of the accrual failure detector.
    heartbeat_period: float = 2.0
    #: Consecutive missed heartbeats before a host is declared dead.
    suspicion_threshold: int = 3
    #: Extra misses required per recent flap (damping), and the cap on
    #: the damped threshold.
    suspicion_flap_penalty: int = 2
    suspicion_max_threshold: int = 8

    # --- faults -----------------------------------------------------------
    #: How long after a host crash the rest of the cluster acts on it
    #: (peer kernels reap dependents, file servers drop client state,
    #: migd marks the host unavailable).  Models the detection lag of
    #: Sprite's recovery machinery; driven by ``repro.faults``.
    crash_detect_delay: float = 10.0
    #: Retry interval for the remote-exit notification to an
    #: unreachable home kernel (Sprite blocks such RPCs until the peer
    #: recovers; we poll at this period instead).
    exit_notify_retry: float = 2.0

    # --- bookkeeping ------------------------------------------------------
    seed: int = 0
    extras: dict = field(default_factory=dict)

    def clone(self, **overrides: Any) -> "ClusterParams":
        """Return a copy with some fields replaced."""
        return replace(self, **overrides)

    def pages(self, nbytes: int) -> int:
        """Number of VM pages covering ``nbytes``."""
        return max(0, -(-int(nbytes) // self.page_size))

    def blocks(self, nbytes: int) -> int:
        """Number of FS blocks covering ``nbytes``."""
        return max(0, -(-int(nbytes) // self.fs_block_size))
