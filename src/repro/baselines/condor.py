"""Condor-style checkpoint/restart [LLM88, SI89] — the other migration.

Condor "migrates" by checkpointing a job's entire memory image to a
file and restarting it elsewhere; work since the last checkpoint is
lost, checkpoints cost a full image write, and jobs are restricted
(single process, batch, no interactive I/O).  Compared with Sprite's
eviction this trades transparency and efficiency for kernel simplicity.

The scheduler here reproduces Condor's behaviour faithfully enough for
the comparison benchmarks: periodic checkpoints to the shared FS,
eviction-by-kill when a host's owner returns, restart from the last
checkpoint on the next idle host.  Image storage and pricing go through
:mod:`repro.checkpoint` — the same digest-sealed
:class:`~repro.checkpoint.CheckpointImage`/:class:`~repro.checkpoint.\
CheckpointStore` primitives the kernel-level checkpoint daemon uses, so
the baseline and the subsystem can never drift apart on image costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from ..checkpoint import CheckpointStore, read_image, write_image
from ..config import MB
from ..cluster import SpriteCluster
from ..kernel import Host
from ..sim import Effect, Sleep, Task, spawn

__all__ = ["CondorJob", "CondorScheduler", "CondorJobResult"]


@dataclass
class CondorJob:
    """A batch job: pure CPU demand plus a memory image to checkpoint."""

    job_id: int
    cpu_seconds: float
    image_bytes: int = 1 * MB

    # Progress bookkeeping (owned by the scheduler).
    completed_cpu: float = 0.0
    checkpointed_cpu: float = 0.0
    restarts: int = 0
    checkpoints: int = 0
    lost_cpu: float = 0.0
    submitted_at: float = 0.0
    finished_at: Optional[float] = None


@dataclass
class CondorJobResult:
    job: CondorJob

    @property
    def turnaround(self) -> float:
        assert self.job.finished_at is not None
        return self.job.finished_at - self.job.submitted_at

    @property
    def overhead_ratio(self) -> float:
        """Turnaround relative to the job's pure CPU demand."""
        return self.turnaround / self.job.cpu_seconds


class CondorScheduler:
    """Central matchmaker: queue jobs, run them on idle hosts.

    ``checkpoint_period`` controls the classic trade-off: frequent
    checkpoints cost image writes; rare ones lose more work at each
    eviction.
    """

    def __init__(
        self,
        cluster: SpriteCluster,
        checkpoint_period: float = 300.0,
        poll_period: float = 5.0,
    ):
        self.cluster = cluster
        self.checkpoint_period = checkpoint_period
        self.poll_period = poll_period
        self.queue: List[CondorJob] = []
        self.results: List[CondorJobResult] = []
        self.evictions = 0
        self._runner_tasks: List[Task] = []
        #: Checkpoint images, keyed by job id (shared primitives with
        #: the kernel-level checkpoint daemon; bounded generations).
        self.store = CheckpointStore(cluster.params, root="/condor")
        self._done_count = 0
        self._submitted = 0

    # ------------------------------------------------------------------
    def submit(self, job: CondorJob) -> None:
        job.submitted_at = self.cluster.sim.now
        self.queue.append(job)
        self._submitted += 1

    def start(self) -> Task:
        """Launch the matchmaking loop; returns its task."""
        return spawn(
            self.cluster.sim, self._matchmaker(), name="condor-matchmaker",
            daemon=True,
        )

    @property
    def all_done(self) -> bool:
        return self._done_count == self._submitted

    # ------------------------------------------------------------------
    def _matchmaker(self) -> Generator[Effect, None, None]:
        busy_hosts: set = set()
        while True:
            while self.queue:
                host = self._find_idle_host(busy_hosts)
                if host is None:
                    break
                job = self.queue.pop(0)
                busy_hosts.add(host.address)
                task = spawn(
                    self.cluster.sim,
                    self._run_job(job, host, busy_hosts),
                    name=f"condor-job{job.job_id}@{host.name}",
                    daemon=True,
                )
                self._runner_tasks.append(task)
            yield Sleep(self.poll_period)

    def _find_idle_host(self, busy_hosts: set) -> Optional[Host]:
        for host in self.cluster.hosts:
            if host.address in busy_hosts:
                continue
            if host.is_available():
                return host
        return None

    # ------------------------------------------------------------------
    def _run_job(
        self, job: CondorJob, host: Host, busy_hosts: set
    ) -> Generator[Effect, None, None]:
        """Execute (a segment of) a job on one host until done/evicted."""
        sim = self.cluster.sim
        try:
            # Restart: fetch the newest intact checkpoint image from
            # the shared FS (none yet = restart from scratch).
            if job.restarts or job.checkpoints:
                image = self.store.latest_intact(job.job_id)
                if image is not None:
                    yield from read_image(host.fs, image)
                    job.completed_cpu = image.progress
                else:
                    job.completed_cpu = 0.0
            next_checkpoint = sim.now + self.checkpoint_period
            while job.completed_cpu < job.cpu_seconds:
                if host.user_present or (
                    host.input_idle_seconds() < host.params.idle_input_threshold
                    and host.last_input > 0
                ):
                    # Owner returned: kill and requeue (Condor eviction).
                    self.evictions += 1
                    job.lost_cpu += job.completed_cpu - job.checkpointed_cpu
                    job.restarts += 1
                    self.queue.append(job)
                    return
                slice_end_cpu = min(
                    job.cpu_seconds,
                    job.completed_cpu + 1.0,
                )
                demand = slice_end_cpu - job.completed_cpu
                yield from host.cpu.consume(demand)
                job.completed_cpu = slice_end_cpu
                if sim.now >= next_checkpoint and job.completed_cpu < job.cpu_seconds:
                    image = self.store.begin(
                        job.job_id, f"condor-{job.job_id}", "full"
                    )
                    image.taken_at = sim.now
                    image.progress = job.completed_cpu
                    image.vm_size = job.image_bytes
                    image.restore_bytes = (
                        job.image_bytes
                        + host.params.checkpoint_digest_bytes
                    )
                    yield from write_image(
                        host.fs, self.store, image, job.image_bytes
                    )
                    job.checkpointed_cpu = job.completed_cpu
                    job.checkpoints += 1
                    next_checkpoint = sim.now + self.checkpoint_period
            job.finished_at = sim.now
            self.results.append(CondorJobResult(job=job))
            self._done_count += 1
        finally:
            busy_hosts.discard(host.address)
