"""Condor-style checkpoint/restart [LLM88, SI89] — the other migration.

Condor "migrates" by checkpointing a job's entire memory image to a
file and restarting it elsewhere; work since the last checkpoint is
lost, checkpoints cost a full image write, and jobs are restricted
(single process, batch, no interactive I/O).  Compared with Sprite's
eviction this trades transparency and efficiency for kernel simplicity.

The scheduler here reproduces Condor's behaviour faithfully enough for
the comparison benchmarks: periodic checkpoints to the shared FS,
eviction-by-kill when a host's owner returns, restart from the last
checkpoint on the next idle host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from ..config import MB
from ..cluster import SpriteCluster
from ..fs import BackingFile
from ..kernel import Host
from ..sim import Effect, Sleep, Task, spawn

__all__ = ["CondorJob", "CondorScheduler", "CondorJobResult"]


@dataclass
class CondorJob:
    """A batch job: pure CPU demand plus a memory image to checkpoint."""

    job_id: int
    cpu_seconds: float
    image_bytes: int = 1 * MB

    # Progress bookkeeping (owned by the scheduler).
    completed_cpu: float = 0.0
    checkpointed_cpu: float = 0.0
    restarts: int = 0
    checkpoints: int = 0
    lost_cpu: float = 0.0
    submitted_at: float = 0.0
    finished_at: Optional[float] = None


@dataclass
class CondorJobResult:
    job: CondorJob

    @property
    def turnaround(self) -> float:
        assert self.job.finished_at is not None
        return self.job.finished_at - self.job.submitted_at

    @property
    def overhead_ratio(self) -> float:
        """Turnaround relative to the job's pure CPU demand."""
        return self.turnaround / self.job.cpu_seconds


class CondorScheduler:
    """Central matchmaker: queue jobs, run them on idle hosts.

    ``checkpoint_period`` controls the classic trade-off: frequent
    checkpoints cost image writes; rare ones lose more work at each
    eviction.
    """

    def __init__(
        self,
        cluster: SpriteCluster,
        checkpoint_period: float = 300.0,
        poll_period: float = 5.0,
    ):
        self.cluster = cluster
        self.checkpoint_period = checkpoint_period
        self.poll_period = poll_period
        self.queue: List[CondorJob] = []
        self.results: List[CondorJobResult] = []
        self.evictions = 0
        self._runner_tasks: List[Task] = []
        self._next_ckpt_path = 0
        self._done_count = 0
        self._submitted = 0

    # ------------------------------------------------------------------
    def submit(self, job: CondorJob) -> None:
        job.submitted_at = self.cluster.sim.now
        self.queue.append(job)
        self._submitted += 1

    def start(self) -> Task:
        """Launch the matchmaking loop; returns its task."""
        return spawn(
            self.cluster.sim, self._matchmaker(), name="condor-matchmaker",
            daemon=True,
        )

    @property
    def all_done(self) -> bool:
        return self._done_count == self._submitted

    # ------------------------------------------------------------------
    def _matchmaker(self) -> Generator[Effect, None, None]:
        busy_hosts: set = set()
        while True:
            while self.queue:
                host = self._find_idle_host(busy_hosts)
                if host is None:
                    break
                job = self.queue.pop(0)
                busy_hosts.add(host.address)
                task = spawn(
                    self.cluster.sim,
                    self._run_job(job, host, busy_hosts),
                    name=f"condor-job{job.job_id}@{host.name}",
                    daemon=True,
                )
                self._runner_tasks.append(task)
            yield Sleep(self.poll_period)

    def _find_idle_host(self, busy_hosts: set) -> Optional[Host]:
        for host in self.cluster.hosts:
            if host.address in busy_hosts:
                continue
            if host.is_available():
                return host
        return None

    # ------------------------------------------------------------------
    def _run_job(
        self, job: CondorJob, host: Host, busy_hosts: set
    ) -> Generator[Effect, None, None]:
        """Execute (a segment of) a job on one host until done/evicted."""
        sim = self.cluster.sim
        try:
            # Restart: fetch the checkpoint image from the shared FS.
            if job.restarts or job.checkpoints:
                yield from self._image_io(host, job.image_bytes, write=False)
                job.completed_cpu = job.checkpointed_cpu
            next_checkpoint = sim.now + self.checkpoint_period
            while job.completed_cpu < job.cpu_seconds:
                if host.user_present or (
                    host.input_idle_seconds() < host.params.idle_input_threshold
                    and host.last_input > 0
                ):
                    # Owner returned: kill and requeue (Condor eviction).
                    self.evictions += 1
                    job.lost_cpu += job.completed_cpu - job.checkpointed_cpu
                    job.restarts += 1
                    self.queue.append(job)
                    return
                slice_end_cpu = min(
                    job.cpu_seconds,
                    job.completed_cpu + 1.0,
                )
                demand = slice_end_cpu - job.completed_cpu
                yield from host.cpu.consume(demand)
                job.completed_cpu = slice_end_cpu
                if sim.now >= next_checkpoint and job.completed_cpu < job.cpu_seconds:
                    yield from self._image_io(host, job.image_bytes, write=True)
                    job.checkpointed_cpu = job.completed_cpu
                    job.checkpoints += 1
                    next_checkpoint = sim.now + self.checkpoint_period
            job.finished_at = sim.now
            self.results.append(CondorJobResult(job=job))
            self._done_count += 1
        finally:
            busy_hosts.discard(host.address)

    def _image_io(
        self, host: Host, nbytes: int, write: bool
    ) -> Generator[Effect, None, None]:
        """Checkpoint image write/read through the shared file system."""
        path = f"/condor/ckpt{self._next_ckpt_path}"
        self._next_ckpt_path += 1
        backing = BackingFile(host.fs, path)
        yield from backing.create()
        if write:
            yield from backing.page_out(nbytes)
        else:
            yield from backing.page_in(nbytes)
