"""rsh-style remote invocation [Com86] — the no-migration baseline.

``rsh`` starts a command on another host and relays its output; the
process is *not* transparent (it belongs to the remote host, appears in
the remote process table, reports the remote hostname) and can never be
moved again — if the remote host's owner returns, the guest squats.

Used as the baseline remote-execution mechanism in the comparisons of
chapters 2 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..config import KB
from ..kernel import Host, Program, UserContext
from ..sim import Effect

__all__ = ["RshResult", "rsh_run"]

#: Connection setup: rsh spawns a remote login-ish session.
RSH_SETUP_BYTES = 4 * KB
RSH_SETUP_CPU = 50e-3  # rshd fork/exec and authentication overhead


@dataclass
class RshResult:
    value: Any
    elapsed: float
    remote_pid: int


def rsh_run(
    proc: UserContext,
    target: Host,
    program: Program,
    *args: Any,
    name: Optional[str] = None,
    output_bytes: int = 4 * KB,
) -> Generator[Effect, None, RshResult]:
    """Run ``program`` on ``target`` the rsh way, from ``proc``'s context.

    Blocks until the remote command completes and its output has been
    relayed back.  The remote process is homed on the *target* — no
    home-node transparency, no eviction, no migration.
    """
    started = proc.now
    kernel = proc.kernel
    # Ship the command line and environment to the remote daemon.
    yield from kernel.lan.transfer(
        kernel.address, target.address, RSH_SETUP_BYTES
    )
    yield from target.cpu.consume(RSH_SETUP_CPU)
    # The command runs as a *native* process of the target host.
    pcb, _ctx = target.spawn_process(
        program, *args, name=name or f"rsh:{getattr(program, '__name__', 'cmd')}"
    )
    value = yield pcb.task.join()
    # Relay the output back to the invoking terminal.
    yield from kernel.lan.transfer(target.address, kernel.address, output_bytes)
    return RshResult(value=value, elapsed=proc.now - started, remote_pid=pcb.pid)
