"""Baselines the thesis compares against.

rsh-style remote invocation (:mod:`.rsh`), Remote UNIX total forwarding
(:mod:`.forwarding`, ablation A2), Condor checkpoint/restart
(:mod:`.condor`), and the placement-only policy scenario
(:mod:`.placement`, experiment E11).
"""

from .condor import CondorJob, CondorJobResult, CondorScheduler
from .forwarding import ForwardingProcess, ForwardingSurrogate, remote_unix_run
from .placement import POLICIES, PlacementOutcome, run_placement_scenario
from .rsh import RshResult, rsh_run

__all__ = [
    "CondorJob",
    "CondorJobResult",
    "CondorScheduler",
    "ForwardingProcess",
    "ForwardingSurrogate",
    "POLICIES",
    "PlacementOutcome",
    "RshResult",
    "remote_unix_run",
    "rsh_run",
    "run_placement_scenario",
]
