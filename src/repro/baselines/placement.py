"""Placement-only vs. migration-with-eviction (experiment E11).

The debate the thesis engages ([ELZ88] vs [KL88]): is migrating
*active* processes worth it beyond good initial placement?  Sprite's
answer centres on workstation autonomy: without eviction, a returning
owner shares their machine with guests for the rest of the guests'
lifetimes.

The scenario: an idle cluster accepts a batch of long jobs from one
submitting host; partway through, the owners of the granted hosts come
back and stay.  Under ``placement`` the guests squat; under ``sprite``
they are evicted home and finish there.  The outcome captures both
sides of the trade: job turnaround AND owner interference (guest-busy
seconds while the owner was present).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List

from ..cluster import SpriteCluster
from ..kernel import UserContext
from ..loadsharing import LoadSharingService
from ..sim import Effect, Sleep, spawn

__all__ = ["PlacementOutcome", "run_placement_scenario", "POLICIES"]

POLICIES = ("placement", "sprite")

_WARMUP = 45.0


@dataclass
class PlacementOutcome:
    policy: str
    turnarounds: List[float] = field(default_factory=list)
    #: Guest-busy seconds accumulated while the host's owner was present.
    owner_interference: float = 0.0
    evictions: int = 0
    migrations: int = 0

    @property
    def mean_turnaround(self) -> float:
        return sum(self.turnarounds) / len(self.turnarounds) if self.turnarounds else 0.0

    @property
    def max_turnaround(self) -> float:
        return max(self.turnarounds) if self.turnarounds else 0.0


def _job(proc: UserContext, cpu: float) -> Generator[Effect, None, int]:
    yield from proc.use_memory(512 * 1024)
    yield from proc.compute(cpu, dirty_bytes_per_second=1024)
    return 0


def run_placement_scenario(
    policy: str,
    hosts: int = 6,
    jobs: int = 5,
    job_cpu: float = 120.0,
    owners_return_after: float = 45.0,
    seed: int = 0,
) -> PlacementOutcome:
    """Run the scenario under one policy and report the outcome.

    ``owners_return_after`` is measured from batch launch (which starts
    after a fixed warm-up during which hosts become available).
    """
    if policy not in POLICIES:
        raise ValueError(f"policy must be one of {POLICIES}")
    cluster = SpriteCluster(workstations=hosts, start_daemons=True, seed=seed)
    service = LoadSharingService(cluster, architecture="centralized")
    cluster.standard_images()
    if policy == "placement":
        # No eviction: the daemons never wake up to reclaim hosts.
        for evictor in cluster.evictors:
            evictor.poll_period = 1e12
    outcome = PlacementOutcome(policy=policy)
    cluster.run(until=_WARMUP)

    submitter = cluster.hosts[0]
    client = service.mig_client(submitter)

    def coordinator(proc):
        job_list = [(_job, (job_cpu,), f"job{i}") for i in range(jobs)]
        finished = yield from client.run_batch(
            proc, job_list, image_path="/bin/sim", keep_one_local=False
        )
        return finished

    pcb, _ = submitter.spawn_process(coordinator, name="submitter")
    owners_return_at = _WARMUP + owners_return_after

    def owners_return():
        yield Sleep(owners_return_at - cluster.sim.now)
        while True:
            for host in cluster.hosts[1:]:
                host.user_input()
            yield Sleep(5.0)

    spawn(cluster.sim, owners_return(), name="owners", daemon=True)

    def interference_sampler():
        period = 1.0
        while True:
            yield Sleep(period)
            if cluster.sim.now < owners_return_at:
                continue
            for host in cluster.hosts[1:]:
                guests = host.kernel.foreign_pcbs()
                if guests:
                    outcome.owner_interference += period * min(1.0, len(guests))

    spawn(cluster.sim, interference_sampler(), name="sampler", daemon=True)

    finished = cluster.run_until_complete(pcb.task)
    outcome.turnarounds = [
        job.turnaround for job in finished if job.turnaround is not None
    ]
    records = [r for r in cluster.migration_records() if not r.refused]
    outcome.migrations = len(records)
    outcome.evictions = len([r for r in records if r.reason == "eviction"])
    return outcome
