"""Remote UNIX-style total forwarding [Lit87] — ablation A2.

Section 4.3 of the thesis considers the design Sprite *didn't* choose:
leave every bit of kernel state on the home machine and forward every
kernel call to a surrogate there.  Remote UNIX works exactly this way
(no kernel changes, a run-time library ships each call to a shadow
process at the submitting host).

The cost model is honest about the consequences: compute happens on the
execution host, but *all* file data makes a double hop (server → home →
execution host, or is read from the home's cache), and every trivial
call pays a full RPC.  Benchmarks compare this against Sprite's
transfer-most/forward-little split.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Tuple

from ..config import KB
from ..fs import OpenMode
from ..kernel import Host, Program
from ..net import Reply
from ..sim import Effect, Task, spawn

__all__ = ["ForwardingSurrogate", "ForwardingProcess", "remote_unix_run"]

SERVICE = "runix.syscall"


class ForwardingSurrogate:
    """The home-side shadow: executes forwarded calls with home state.

    One surrogate per home host serves all of that host's Remote UNIX
    jobs; per-job stream tables live here, because in this design *no*
    state ever leaves home.
    """

    def __init__(self, host: Host):
        self.host = host
        #: (job, fd) -> stream, kept at home.
        self._streams: Dict[Tuple[int, int], Any] = {}
        self._fds: Dict[int, "itertools.count"] = {}
        self.calls_served = 0
        host.rpc.register(SERVICE, self._rpc_syscall)

    def _rpc_syscall(self, args: Dict[str, Any]) -> Generator[Effect, None, Any]:
        self.calls_served += 1
        op = args["op"]
        job = args["job"]
        fs = self.host.fs
        yield from self.host.cpu.consume(self.host.params.kernel_call_cpu)
        if op == "open":
            stream = yield from fs.open(args["path"], args["mode"])
            fd = next(self._fds.setdefault(job, itertools.count(3)))
            self._streams[(job, fd)] = stream
            return fd
        if op == "close":
            stream = self._streams.pop((job, args["fd"]))
            yield from fs.close(stream)
            return None
        if op == "read":
            stream = self._streams[(job, args["fd"])]
            nread = yield from fs.read(stream, args["nbytes"])
            # The data just arrived at *home*; the reply relays it on to
            # the execution host (second hop charged by the RPC reply).
            return Reply(result=nread, size=max(1, nread))
        if op == "write":
            stream = self._streams[(job, args["fd"])]
            nwritten = yield from fs.write(stream, args["nbytes"])
            return nwritten
        if op == "lseek":
            stream = self._streams[(job, args["fd"])]
            return (yield from fs.seek(stream, args["offset"]))
        if op == "gettimeofday":
            return self.host.sim.now
        if op == "gethostname":
            return self.host.name
        raise ValueError(f"unknown forwarded op {op!r}")


@dataclass
class ForwardingProcess:
    """Execution-host context handed to Remote UNIX job programs.

    Mirrors the parts of :class:`UserContext` the workloads use, but
    every kernel call is a forwarded RPC to the home surrogate.
    """

    home: Host
    runner: Host
    job_id: int

    @property
    def now(self) -> float:
        return self.runner.sim.now

    def _forward(
        self, op: str, size: int = 256, reply_size: int = 128, **fields: Any
    ) -> Generator[Effect, None, Any]:
        payload = {"op": op, "job": self.job_id, **fields}
        return (
            yield from self.runner.rpc.call(
                self.home.address, SERVICE, payload,
                size=size, reply_size=reply_size, timeout=None,
            )
        )

    # -- the forwarded subset of the kernel interface ------------------
    def compute(self, demand: float) -> Generator[Effect, None, None]:
        yield from self.runner.cpu.consume(demand)

    def open(self, path: str, mode: int = OpenMode.READ) -> Generator[Effect, None, int]:
        return (yield from self._forward("open", path=path, mode=mode))

    def close(self, fd: int) -> Generator[Effect, None, None]:
        yield from self._forward("close", fd=fd)

    def read(self, fd: int, nbytes: int) -> Generator[Effect, None, int]:
        # Data comes back in the reply: home -> runner hop.
        return (
            yield from self._forward("read", fd=fd, nbytes=nbytes, reply_size=nbytes)
        )

    def write(self, fd: int, nbytes: int) -> Generator[Effect, None, int]:
        # Data travels in the request: runner -> home hop.
        return (
            yield from self._forward("write", fd=fd, nbytes=nbytes, size=nbytes)
        )

    def lseek(self, fd: int, offset: int) -> Generator[Effect, None, int]:
        return (yield from self._forward("lseek", fd=fd, offset=offset))

    def gettimeofday(self) -> Generator[Effect, None, float]:
        return (yield from self._forward("gettimeofday"))

    def gethostname(self) -> Generator[Effect, None, str]:
        return (yield from self._forward("gethostname"))


#: Per-run job-id allocator name in ``sim.state`` (a module-level
#: counter here would drift across clusters built in one process).
_JOB_ID_COUNTER = "baselines.forwarding_job_ids"


def remote_unix_run(
    surrogate: ForwardingSurrogate,
    runner: Host,
    program: Program,
    *args: Any,
    image_bytes: int = 256 * KB,
    name: Optional[str] = None,
) -> Generator[Effect, None, Task]:
    """Start ``program`` on ``runner`` under total forwarding.

    The binary ships over the wire at start (Remote UNIX copies the
    executable); returns the sim task so callers can join it.
    """
    home = surrogate.host
    yield from home.lan.transfer(home.address, runner.address, image_bytes)
    job_ids = home.sim.state.counter(_JOB_ID_COUNTER)
    ctx = ForwardingProcess(home=home, runner=runner, job_id=next(job_ids))
    task = spawn(
        home.sim,
        program(ctx, *args),
        name=name or f"runix:{getattr(program, '__name__', 'job')}",
    )
    return task
