"""Sprite-style kernel-to-kernel remote procedure calls [Wel86, BN84].

Each host owns an :class:`RpcPort` bound to its LAN node.  Services are
registered by name; handlers are generator coroutines executed on the
*server's* simulator tasks, charging the server's CPU.  The caller's
``call`` generator blocks until the reply has crossed the wire back.

Failure model: a down destination or a lost reply surfaces as
:class:`RpcTimeout` after ``params.rpc_retries`` retries.  Exceptions
raised by the remote handler are re-raised at the caller (this mirrors
Sprite, where a forwarded kernel call returns the remote error code).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Optional

from ..config import ClusterParams
from ..obs.spans import RPC_CALL, RPC_SERVE, SpanTracer
from ..sim import (
    TIMED_OUT,
    ChannelClosed,
    Cpu,
    Effect,
    SimEvent,
    Simulator,
    Sleep,
    Tracer,
    spawn,
    with_timeout,
)
from .errors import RpcError, RpcTimeout
from .lan import HostDownError, Lan, NetNode, NetworkPartitionedError, Packet

__all__ = ["RpcPort", "RpcStats", "RpcTimeout", "RpcError", "Reply"]

#: Default request/reply payload sizes in bytes (small control messages).
DEFAULT_REQUEST_SIZE = 256
DEFAULT_REPLY_SIZE = 128


@dataclass
class Reply:
    """Wrap a handler's return value to control the reply's wire size."""

    result: Any
    size: int = DEFAULT_REPLY_SIZE


@dataclass
class _Request:
    service: str
    args: Any
    reply_event: SimEvent
    reply_to: int
    reply_size_hint: int
    #: Span id of the caller's ``rpc.call`` span (None when spans are
    #: off).  The server records it on its ``rpc.serve`` span, giving
    #: the critical-path analysis an explicit cross-host causal edge.
    caller_sid: Optional[int] = None


Handler = Callable[[Any], Generator[Effect, None, Any]]


class RpcStats:
    """Optional per-service call/byte accounting for one port.

    A port carries ``stats=None`` by default; the observability layer
    (``ClusterObservability.install``) attaches an instance, so an
    unobserved run pays only an ``is not None`` test per call.
    """

    __slots__ = ("calls", "call_bytes", "served", "reply_bytes")

    def __init__(self) -> None:
        self.calls: Dict[str, int] = {}
        self.call_bytes: Dict[str, int] = {}
        self.served: Dict[str, int] = {}
        self.reply_bytes: Dict[str, int] = {}

    def on_call(self, service: str, nbytes: int) -> None:
        self.calls[service] = self.calls.get(service, 0) + 1
        self.call_bytes[service] = self.call_bytes.get(service, 0) + nbytes

    def on_serve(self, service: str, nbytes: int) -> None:
        self.served[service] = self.served.get(service, 0) + 1
        self.reply_bytes[service] = self.reply_bytes.get(service, 0) + nbytes


class RpcPort:
    """One host's RPC endpoint: server dispatch plus client calls."""

    def __init__(
        self,
        sim: Simulator,
        lan: Lan,
        node: NetNode,
        cpu: Optional[Cpu] = None,
        params: Optional[ClusterParams] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.lan = lan
        self.node = node
        self.cpu = cpu
        self.params = params or lan.params
        self.tracer = tracer if tracer is not None else lan.tracer
        self._services: Dict[str, Handler] = {}
        #: Receives packets that are not RPC requests (e.g. multicast
        #: host-selection queries); set by higher layers.
        self.fallback: Optional[Callable[[Packet], None]] = None
        #: Metrics.
        self.calls_made = 0
        self.calls_served = 0
        #: Optional per-service accounting; installed by the obs layer.
        self.stats: Optional[RpcStats] = None
        #: Lazily-seeded RNG for retry jitter (deterministic per port).
        self._backoff_rng = None
        #: Cluster-wide span tracer (disabled by default).
        self.spans = SpanTracer.for_tracer(self.tracer)
        self._server_task = spawn(
            sim, self._serve, name=f"rpc-server:{node.name}", daemon=True
        )

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def register(self, service: str, handler: Handler) -> None:
        """Register ``handler`` for ``service`` (replacing any previous)."""
        self._services[service] = handler

    def _serve(self) -> Generator[Effect, None, None]:
        while True:
            try:
                packet = yield self.node.inbox.get()
            except ChannelClosed:
                return
            if packet.kind == "rpc-request" and isinstance(packet.payload, _Request):
                spawn(
                    self.sim,
                    self._handle(packet.payload),
                    name=f"rpc:{packet.payload.service}@{self.node.name}",
                    daemon=True,
                )
            elif self.fallback is not None:
                self.fallback(packet)

    def _handle(self, request: _Request) -> Generator[Effect, None, None]:
        span = None
        if self.spans.enabled:
            span = self.spans.start(
                RPC_SERVE, f"rpc:{self.node.name}", t=self.sim.now,
                service=request.service, client=request.reply_to,
                caller_sid=request.caller_sid,
            )
        handler = self._services.get(request.service)
        outcome: Any
        failure: Optional[BaseException] = None
        if handler is None:
            failure = RpcError(
                f"no service {request.service!r} on {self.node.name}"
            )
            outcome = None
        else:
            if self.cpu is not None:
                yield from self.cpu.consume(self.params.rpc_cpu_overhead)
            try:
                outcome = yield from handler(request.args)
            except RpcError as err:
                failure = err
                outcome = None
            except Exception as err:  # noqa: BLE001 - remote errors cross the wire
                failure = err
                outcome = None
        self.calls_served += 1
        reply_size = request.reply_size_hint
        if isinstance(outcome, Reply):
            reply_size = outcome.size
            outcome = outcome.result
        if self.stats is not None:
            self.stats.on_serve(request.service, max(reply_size, 1))
        # Ship the reply back across the wire, then wake the caller.
        if not self.node.up:
            if span is not None:
                span.finish(self.sim.now, outcome="server-down")
            return  # server crashed mid-call: the caller will time out.
        try:
            yield from self.lan.transfer(
                self.node.address, request.reply_to, max(reply_size, 1)
            )
        except HostDownError:
            if span is not None:
                span.finish(self.sim.now, outcome="caller-down")
            return  # caller went down; nothing to deliver to.
        if span is not None:
            span.finish(
                self.sim.now,
                outcome="error" if failure is not None else "ok",
            )
        if failure is not None:
            request.reply_event.fail(failure)
        else:
            request.reply_event.trigger(outcome)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def _retry_backoff(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (0-based): jittered exponential.

        Base doubles per attempt up to ``params.rpc_backoff_cap``; the
        jitter factor comes from a per-port RNG seeded from
        ``params.seed`` and the node name, so runs are reproducible but
        callers that lost the same host do not retry in lockstep.
        """
        params = self.params
        delay = min(params.rpc_backoff_base * (2.0 ** attempt), params.rpc_backoff_cap)
        jitter = params.rpc_backoff_jitter
        if jitter > 0.0:
            rng = self._backoff_rng
            if rng is None:
                import zlib

                import numpy as np

                rng = np.random.default_rng(
                    (params.seed << 32)
                    ^ zlib.crc32(f"rpc-backoff:{self.node.name}".encode())
                )
                self._backoff_rng = rng
            delay *= 1.0 + jitter * (2.0 * rng.random() - 1.0)
        return delay

    def retry_backoff(self, attempt: int) -> float:
        """Public jittered-backoff schedule for callers running their own
        retry loops (e.g. migration rollback) so every retrier on a host
        shares one deterministic jitter stream."""
        return self._retry_backoff(attempt)

    def call(
        self,
        dst: int,
        service: str,
        args: Any = None,
        size: int = DEFAULT_REQUEST_SIZE,
        reply_size: int = DEFAULT_REPLY_SIZE,
        timeout: Optional[float] = "default",  # type: ignore[assignment]
    ) -> Generator[Effect, None, Any]:
        """Invoke ``service`` on the host at address ``dst``.

        Usage: ``result = yield from port.call(dst, "proc.migrate", args)``.
        Pass ``timeout=None`` for calls that legitimately block without
        bound (e.g. a forwarded ``wait`` for a child that may run for
        hours); such calls never retry.
        """
        if timeout == "default":
            timeout = self.params.rpc_timeout
        attempts = self.params.rpc_retries + 1
        if self.cpu is not None:
            yield from self.cpu.consume(self.params.rpc_cpu_overhead)
        span = None
        if self.spans.enabled:
            span = self.spans.start(
                RPC_CALL, f"rpc:{self.node.name}", t=self.sim.now,
                dst=dst, service=service, bytes=size,
            )
        last_error: Optional[BaseException] = None
        for _attempt in range(attempts):
            reply_event = SimEvent(self.sim, name=f"reply:{service}")
            request = _Request(
                service=service,
                args=args,
                reply_event=reply_event,
                reply_to=self.node.address,
                reply_size_hint=reply_size,
                caller_sid=span.sid if span is not None else None,
            )
            packet = Packet(
                src=self.node.address,
                dst=dst,
                kind="rpc-request",
                payload=request,
                size=size,
            )
            self.calls_made += 1
            if self.stats is not None:
                self.stats.on_call(service, size)
            if self.tracer.enabled:
                self.tracer.emit(
                    self.sim.now, f"rpc:{self.node.name}", "call", dst=dst, service=service
                )
            try:
                yield from self.lan.send(packet)
            except HostDownError as err:
                last_error = err
                if _attempt + 1 < attempts:
                    yield Sleep(self._retry_backoff(_attempt))
                continue
            if timeout is None:
                value = yield reply_event.wait()
                if span is not None:
                    span.finish(self.sim.now, outcome="ok")
                return value
            value = yield from with_timeout(reply_event.wait(), timeout)
            if value is TIMED_OUT:
                last_error = RpcTimeout(
                    f"{service} on host {dst} timed out after {timeout}s"
                )
                if _attempt + 1 < attempts:
                    yield Sleep(self._retry_backoff(_attempt))
                continue
            if span is not None:
                span.finish(self.sim.now, outcome="ok", attempts=_attempt + 1)
            return value
        if span is not None:
            span.finish(self.sim.now, outcome="timeout", attempts=attempts)
        if isinstance(last_error, NetworkPartitionedError):
            # A partition verdict is definitive (the fabric said "no
            # path"), not a silence we timed out on — let callers tell
            # the two apart.
            raise last_error
        raise RpcTimeout(
            f"{service} on host {dst} unreachable after {attempts} attempt(s): "
            f"{last_error}"
        )
