"""Sprite-style kernel-to-kernel remote procedure calls [Wel86, BN84].

Each host owns an :class:`RpcPort` bound to its LAN node.  Services are
registered by name; handlers are generator coroutines executed on the
*server's* simulator tasks, charging the server's CPU.  The caller's
``call`` generator blocks until the reply has crossed the wire back.

Failure model: a down destination or a lost reply surfaces as
:class:`RpcTimeout` after ``params.rpc_retries`` retries.  Exceptions
raised by the remote handler are re-raised at the caller (this mirrors
Sprite, where a forwarded kernel call returns the remote error code).

Delivery model: retries make every call *at-least-once* on the wire,
and an adversarial fabric can duplicate requests outright.  The server
side therefore enforces **exactly-once execution**: every logical call
carries a per-port monotonic request id (shared by its retries), and a
bounded dedup cache replays the recorded reply to duplicates instead
of re-running the handler.  Corrupted requests (fabric payload damage)
fail the checksum check and are counted and dropped — the caller
retries by timeout.  A handler may be registered ``idempotent=True``
to opt out of dedup (read-only services; re-execution is harmless and
the cache is spared), which the ``rpc-idempotency`` lint rule audits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Set, Tuple

from ..config import ClusterParams
from ..obs.spans import RPC_CALL, RPC_SERVE, SpanTracer
from ..sim import (
    TIMED_OUT,
    ChannelClosed,
    Cpu,
    Effect,
    SimEvent,
    Simulator,
    Sleep,
    Tracer,
    spawn,
    with_timeout,
)
from .errors import RetryLaterError, RpcError, RpcTimeout
from .lan import HostDownError, Lan, NetNode, NetworkPartitionedError, Packet

__all__ = ["RpcPort", "RpcStats", "RpcTimeout", "RpcError", "Reply"]

#: Default request/reply payload sizes in bytes (small control messages).
DEFAULT_REQUEST_SIZE = 256
DEFAULT_REPLY_SIZE = 128


@dataclass
class Reply:
    """Wrap a handler's return value to control the reply's wire size."""

    result: Any
    size: int = DEFAULT_REPLY_SIZE


@dataclass
class _Request:
    service: str
    args: Any
    reply_event: SimEvent
    reply_to: int
    reply_size_hint: int
    #: Span id of the caller's ``rpc.call`` span (None when spans are
    #: off).  The server records it on its ``rpc.serve`` span, giving
    #: the critical-path analysis an explicit cross-host causal edge.
    caller_sid: Optional[int] = None
    #: Per-port monotonic id of the *logical* call: every retry of one
    #: ``call()`` reuses it, so the server can recognize duplicates.
    req_id: int = 0


Handler = Callable[[Any], Generator[Effect, None, Any]]


class _DedupEntry:
    """Server-side memory of one executed (or executing) request."""

    __slots__ = ("done", "outcome", "failure", "reply_size", "waiters")

    def __init__(self) -> None:
        self.done = False
        self.outcome: Any = None
        self.failure: Optional[BaseException] = None
        self.reply_size = DEFAULT_REPLY_SIZE
        #: Duplicate requests that arrived while the first execution
        #: was still running; answered when it completes.
        self.waiters: List[_Request] = []


class RpcStats:
    """Optional per-service call/byte accounting for one port.

    A port carries ``stats=None`` by default; the observability layer
    (``ClusterObservability.install``) attaches an instance, so an
    unobserved run pays only an ``is not None`` test per call.
    """

    __slots__ = ("calls", "call_bytes", "served", "reply_bytes")

    def __init__(self) -> None:
        self.calls: Dict[str, int] = {}
        self.call_bytes: Dict[str, int] = {}
        self.served: Dict[str, int] = {}
        self.reply_bytes: Dict[str, int] = {}

    def on_call(self, service: str, nbytes: int) -> None:
        self.calls[service] = self.calls.get(service, 0) + 1
        self.call_bytes[service] = self.call_bytes.get(service, 0) + nbytes

    def on_serve(self, service: str, nbytes: int) -> None:
        self.served[service] = self.served.get(service, 0) + 1
        self.reply_bytes[service] = self.reply_bytes.get(service, 0) + nbytes


class RpcPort:
    """One host's RPC endpoint: server dispatch plus client calls."""

    def __init__(
        self,
        sim: Simulator,
        lan: Lan,
        node: NetNode,
        cpu: Optional[Cpu] = None,
        params: Optional[ClusterParams] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.lan = lan
        self.node = node
        self.cpu = cpu
        self.params = params or lan.params
        self.tracer = tracer if tracer is not None else lan.tracer
        self._services: Dict[str, Handler] = {}
        #: Services registered ``idempotent=True`` (dedup opted out).
        self._idempotent: Set[str] = set()
        #: Receives packets that are not RPC requests (e.g. multicast
        #: host-selection queries); set by higher layers.
        self.fallback: Optional[Callable[[Packet], None]] = None
        #: Metrics.
        self.calls_made = 0
        self.calls_served = 0
        #: Exactly-once machinery: request-id source, the bounded dedup
        #: cache keyed ``(client, req_id)``, and its counters.
        self._req_seq = 0
        self._dedup: Dict[Tuple[int, int], _DedupEntry] = {}
        self.duplicates_suppressed = 0
        self.replays_sent = 0
        self.checksum_failures = 0
        #: Handler executions that ran twice for one logical request —
        #: the exactly-once invariant (`InvariantChecker`) asserts this
        #: stays zero.  Tracked over a bounded recent-key window (a
        #: duplicate can only arrive within the sender's retry window,
        #: so evicted keys can no longer collide).
        self.double_executions = 0
        self._served_keys: Dict[Tuple[int, int], int] = {}
        self._audit_cap = max(4 * (self.params.rpc_dedup_cache or 1), 1024)
        #: Optional per-service accounting; installed by the obs layer.
        self.stats: Optional[RpcStats] = None
        #: Lazily-seeded RNG for retry jitter (deterministic per port).
        self._backoff_rng = None
        #: Cluster-wide span tracer (disabled by default).
        self.spans = SpanTracer.for_tracer(self.tracer)
        self._server_task = spawn(
            sim, self._serve, name=f"rpc-server:{node.name}", daemon=True
        )

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def register(
        self, service: str, handler: Handler, idempotent: bool = False
    ) -> None:
        """Register ``handler`` for ``service`` (replacing any previous).

        ``idempotent=True`` opts the service out of the exactly-once
        dedup cache: safe only for handlers whose re-execution is
        indistinguishable from a single execution (read-only probes,
        pure cost models).  The ``rpc-idempotency`` lint rule flags
        opt-outs whose handlers mutate server state.
        """
        self._services[service] = handler
        if idempotent:
            self._idempotent.add(service)
        else:
            self._idempotent.discard(service)

    def _serve(self) -> Generator[Effect, None, None]:
        while True:
            try:
                packet = yield self.node.inbox.get()
            except ChannelClosed:
                return
            if packet.corrupt:
                # The kernel verifies the payload checksum before
                # dispatch; a damaged packet is counted and discarded
                # (the sender retries by timeout).
                self.checksum_failures += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        self.sim.now, f"rpc:{self.node.name}",
                        "checksum-drop", src=packet.src, msg=packet.kind,
                    )
                continue
            if packet.kind == "rpc-request" and isinstance(packet.payload, _Request):
                spawn(
                    self.sim,
                    self._handle(packet.payload),
                    name=f"rpc:{packet.payload.service}@{self.node.name}",
                    daemon=True,
                )
            elif self.fallback is not None:
                self.fallback(packet)

    def _handle(self, request: _Request) -> Generator[Effect, None, None]:
        # Exactly-once: a duplicate of a known request never reaches the
        # handler — it is absorbed (first execution still running) or
        # answered from the recorded reply.
        entry: Optional[_DedupEntry] = None
        if (
            request.req_id
            and self.params.rpc_dedup_cache > 0
            and request.service not in self._idempotent
        ):
            key = (request.reply_to, request.req_id)
            entry = self._dedup.get(key)
            if entry is not None:
                self.duplicates_suppressed += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        self.sim.now, f"rpc:{self.node.name}", "dup-request",
                        service=request.service, client=request.reply_to,
                        req=request.req_id, done=entry.done,
                    )
                if entry.done:
                    yield from self._ship_reply(
                        request, entry.outcome, entry.failure,
                        entry.reply_size, replay=True,
                    )
                else:
                    entry.waiters.append(request)
                return
            entry = _DedupEntry()
            self._dedup[key] = entry
            if len(self._dedup) > self.params.rpc_dedup_cache:
                self._dedup.pop(next(iter(self._dedup)))
        span = None
        if self.spans.enabled:
            span = self.spans.start(
                RPC_SERVE, f"rpc:{self.node.name}", t=self.sim.now,
                service=request.service, client=request.reply_to,
                caller_sid=request.caller_sid,
            )
        handler = self._services.get(request.service)
        outcome: Any
        failure: Optional[BaseException] = None
        if handler is None:
            failure = RpcError(
                f"no service {request.service!r} on {self.node.name}"
            )
            outcome = None
        else:
            if request.req_id and request.service not in self._idempotent:
                # Exactly-once audit: count executions per logical
                # request over a bounded recent window (duplicates can
                # only arrive within the sender's retry window).
                akey = (request.reply_to, request.req_id)
                count = self._served_keys.get(akey, 0) + 1
                self._served_keys[akey] = count
                if count > 1:
                    self.double_executions += 1
                elif len(self._served_keys) > self._audit_cap:
                    self._served_keys.pop(next(iter(self._served_keys)))
            if self.cpu is not None:
                yield from self.cpu.consume(self.params.rpc_cpu_overhead)
            try:
                outcome = yield from handler(request.args)
            except RpcError as err:
                failure = err
                outcome = None
            except Exception as err:  # noqa: BLE001 - remote errors cross the wire
                failure = err
                outcome = None
        self.calls_served += 1
        reply_size = request.reply_size_hint
        if isinstance(outcome, Reply):
            reply_size = outcome.size
            outcome = outcome.result
        if self.stats is not None:
            self.stats.on_serve(request.service, max(reply_size, 1))
        if entry is not None:
            entry.done = True
            entry.outcome = outcome
            entry.failure = failure
            entry.reply_size = max(reply_size, 1)
            if isinstance(failure, RetryLaterError):
                # Busy refusals are transient and effect-free (admission
                # is checked before any state changes): forget the
                # request so the client's backed-off retry re-attempts
                # admission instead of replaying "busy" forever — and
                # drop the audit key so that legitimate re-execution is
                # not miscounted as a double execution.
                akey = (request.reply_to, request.req_id)
                self._dedup.pop(akey, None)
                self._served_keys.pop(akey, None)
        yield from self._ship_reply(request, outcome, failure, reply_size,
                                    span=span)
        if entry is not None and entry.waiters:
            # Duplicates absorbed mid-execution get the recorded reply.
            waiters, entry.waiters = entry.waiters, []
            for duplicate in waiters:
                yield from self._ship_reply(
                    duplicate, outcome, failure, entry.reply_size,
                    replay=True,
                )

    def _ship_reply(
        self,
        request: _Request,
        outcome: Any,
        failure: Optional[BaseException],
        reply_size: int,
        span: Any = None,
        replay: bool = False,
    ) -> Generator[Effect, None, None]:
        """Ship one reply across the wire, then wake the caller."""
        if request.reply_event.fired:
            return  # fabric duplicate of an already-answered attempt
        if not self.node.up:
            if span is not None:
                span.finish(self.sim.now, outcome="server-down")
            return  # server crashed mid-call: the caller will time out.
        try:
            yield from self.lan.transfer(
                self.node.address, request.reply_to, max(reply_size, 1)
            )
        except HostDownError:
            if span is not None:
                span.finish(self.sim.now, outcome="caller-down")
            return  # caller went down; nothing to deliver to.
        if span is not None:
            span.finish(
                self.sim.now,
                outcome="error" if failure is not None else "ok",
            )
        if replay:
            self.replays_sent += 1
        if request.reply_event.fired:
            return  # answered while this reply was on the wire
        if failure is not None:
            request.reply_event.fail(failure)
        else:
            request.reply_event.trigger(outcome)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def _retry_backoff(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (0-based): jittered exponential.

        Base doubles per attempt up to ``params.rpc_backoff_cap``; the
        jitter factor comes from a per-port RNG seeded from
        ``params.seed`` and the node name, so runs are reproducible but
        callers that lost the same host do not retry in lockstep.
        """
        params = self.params
        delay = min(params.rpc_backoff_base * (2.0 ** attempt), params.rpc_backoff_cap)
        jitter = params.rpc_backoff_jitter
        if jitter > 0.0:
            rng = self._backoff_rng
            if rng is None:
                import zlib

                import numpy as np

                rng = np.random.default_rng(
                    (params.seed << 32)
                    ^ zlib.crc32(f"rpc-backoff:{self.node.name}".encode())
                )
                self._backoff_rng = rng
            delay *= 1.0 + jitter * (2.0 * rng.random() - 1.0)
        return delay

    def retry_backoff(self, attempt: int) -> float:
        """Public jittered-backoff schedule for callers running their own
        retry loops (e.g. migration rollback) so every retrier on a host
        shares one deterministic jitter stream."""
        return self._retry_backoff(attempt)

    def call(
        self,
        dst: int,
        service: str,
        args: Any = None,
        size: int = DEFAULT_REQUEST_SIZE,
        reply_size: int = DEFAULT_REPLY_SIZE,
        timeout: Optional[float] = "default",  # type: ignore[assignment]
    ) -> Generator[Effect, None, Any]:
        """Invoke ``service`` on the host at address ``dst``.

        Usage: ``result = yield from port.call(dst, "proc.migrate", args)``.
        Pass ``timeout=None`` for calls that legitimately block without
        bound (e.g. a forwarded ``wait`` for a child that may run for
        hours); such calls never retry.
        """
        if timeout == "default":
            timeout = self.params.rpc_timeout
        attempts = self.params.rpc_retries + 1
        if self.cpu is not None:
            yield from self.cpu.consume(self.params.rpc_cpu_overhead)
        span = None
        if self.spans.enabled:
            span = self.spans.start(
                RPC_CALL, f"rpc:{self.node.name}", t=self.sim.now,
                dst=dst, service=service, bytes=size,
            )
        # One id per *logical* call: retries reuse it, so the server can
        # dedup them against the first delivered attempt.
        self._req_seq += 1
        req_id = self._req_seq
        last_error: Optional[BaseException] = None
        for _attempt in range(attempts):
            reply_event = SimEvent(self.sim, name=f"reply:{service}")
            request = _Request(
                service=service,
                args=args,
                reply_event=reply_event,
                reply_to=self.node.address,
                reply_size_hint=reply_size,
                caller_sid=span.sid if span is not None else None,
                req_id=req_id,
            )
            packet = Packet(
                src=self.node.address,
                dst=dst,
                kind="rpc-request",
                payload=request,
                size=size,
            )
            self.calls_made += 1
            if self.stats is not None:
                self.stats.on_call(service, size)
            if self.tracer.enabled:
                self.tracer.emit(
                    self.sim.now, f"rpc:{self.node.name}", "call", dst=dst, service=service
                )
            try:
                yield from self.lan.send(packet)
            except HostDownError as err:
                last_error = err
                if _attempt + 1 < attempts:
                    yield Sleep(self._retry_backoff(_attempt))
                continue
            if timeout is None:
                value = yield reply_event.wait()
                if span is not None:
                    span.finish(self.sim.now, outcome="ok")
                return value
            try:
                value = yield from with_timeout(reply_event.wait(), timeout)
            except RetryLaterError as err:
                # Explicit backpressure from the server: back off with
                # the jittered schedule and try again — never surfaced
                # as a timeout or host death unless retries exhaust.
                last_error = err
                if _attempt + 1 < attempts:
                    yield Sleep(self._retry_backoff(_attempt))
                continue
            if value is TIMED_OUT:
                last_error = RpcTimeout(
                    f"{service} on host {dst} timed out after {timeout}s"
                )
                if _attempt + 1 < attempts:
                    yield Sleep(self._retry_backoff(_attempt))
                continue
            if span is not None:
                span.finish(self.sim.now, outcome="ok", attempts=_attempt + 1)
            return value
        if span is not None:
            span.finish(self.sim.now, outcome="timeout", attempts=attempts)
        if isinstance(last_error, (NetworkPartitionedError, RetryLaterError)):
            # A partition verdict is definitive (the fabric said "no
            # path") and a busy verdict means the peer is *alive* —
            # neither is a silence we timed out on; let callers tell
            # the three apart.
            raise last_error
        raise RpcTimeout(
            f"{service} on host {dst} unreachable after {attempts} attempt(s): "
            f"{last_error}"
        )
