"""Network failure hierarchy, shared by the LAN and RPC layers.

One tree, so callers can be exactly as discriminating as they need:

* :class:`RpcError` — any communication failure; catching this is the
  "abort cleanly, stay put" policy the migration protocol uses.
* :class:`RpcTimeout` — silence: retries exhausted with no answer.
* :class:`HostDownError` — the LAN knows the destination is down
  (raised at send time, no timeout needed).
* :class:`NetworkPartitionedError` — the fault fabric has no path
  between the hosts.  A subclass of :class:`HostDownError` on purpose:
  to a sender, a partitioned peer is indistinguishable from a dead one,
  so every existing retry/abort path handles partitions for free.
* :class:`RetryLaterError` — explicit backpressure: the peer is alive
  but refuses to take on more work right now.  Deliberately *not* a
  subclass of :class:`HostDownError`: an overloaded host must never be
  mistaken for a dead one (no shadow reaping, no migd blacklisting) —
  callers back off with their existing jittered schedule and retry.
"""

from __future__ import annotations

__all__ = [
    "RpcError",
    "RpcTimeout",
    "HostDownError",
    "NetworkPartitionedError",
    "RetryLaterError",
]


class RpcError(Exception):
    """Base class for remote-communication failures."""


class RpcTimeout(RpcError):
    """No reply within the timeout, after all retries."""


class HostDownError(RpcError):
    """Raised when sending to a node that is marked down."""


class NetworkPartitionedError(HostDownError):
    """The link fabric has no path between the two hosts."""


class RetryLaterError(RpcError):
    """The peer is up but overloaded; back off and retry later."""
