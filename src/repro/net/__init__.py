"""Network substrate: shared-medium LAN and kernel-to-kernel RPC."""

from .errors import RetryLaterError
from .lan import HostDownError, Lan, NetNode, NetworkPartitionedError, Packet
from .rpc import Reply, RpcError, RpcPort, RpcTimeout

__all__ = [
    "HostDownError",
    "Lan",
    "NetNode",
    "NetworkPartitionedError",
    "Packet",
    "Reply",
    "RetryLaterError",
    "RpcError",
    "RpcPort",
    "RpcTimeout",
]
