"""Shared-medium local-area network model.

The thesis's cluster hangs off one 10 Mb/s Ethernet.  The model captures
the two properties migration cost depends on: a per-message latency and
a shared transmission medium, so concurrent bulk transfers (VM pages,
file flushes) slow each other down.

Nodes are registered with the LAN and receive :class:`Packet` objects in
their inbox channel.  Bulk transfers use :meth:`Lan.transfer`, which
charges transmission time without materializing per-block packets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from ..config import ClusterParams
from ..sim import Channel, Effect, Resource, Simulator, Sleep, Tracer, spawn

from .errors import HostDownError, NetworkPartitionedError

__all__ = ["Packet", "NetNode", "Lan", "HostDownError", "NetworkPartitionedError"]


@dataclass
class Packet:
    """One message on the wire."""

    src: int
    dst: int
    kind: str
    payload: Any
    size: int
    send_time: float = 0.0
    #: Set by the fault fabric: the payload arrived damaged.  Receivers
    #: that verify checksums (:class:`~repro.net.RpcPort`) count and
    #: discard such packets instead of acting on garbage.
    corrupt: bool = False


class NetNode:
    """An addressable endpoint on the LAN."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.address: int = -1  # assigned by Lan.register
        self.inbox = Channel(sim, name=f"{name}.inbox")
        self.up = True
        self.lan: Optional["Lan"] = None

    def __repr__(self) -> str:
        return f"<NetNode {self.name}@{self.address} {'up' if self.up else 'down'}>"


class Lan:
    """The shared network segment."""

    def __init__(
        self,
        sim: Simulator,
        params: Optional[ClusterParams] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.params = params or ClusterParams()
        self.tracer = tracer if tracer is not None else Tracer()
        self.nodes: Dict[int, NetNode] = {}
        self._addresses = itertools.count(1)
        self._medium = Resource(sim, capacity=1, name="ethernet")
        #: Totals for metrics: messages and payload bytes carried.
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Messages lost to a full (bounded) destination inbox — the
        #: counted backpressure path: senders discover the loss by
        #: timeout and back off.
        self.inbox_overflows = 0
        #: Extra copies delivered for fabric duplicate verdicts.
        self.duplicates_delivered = 0
        #: Optional per-kind byte accounting ({packet kind: bytes});
        #: ``None`` until the observability layer installs a dict, so an
        #: unobserved run pays only an ``is not None`` test per message.
        self.kind_bytes: Optional[Dict[str, int]] = None
        #: Optional link-state fabric (partitions, per-link loss/delay);
        #: ``None`` until a fault injector installs one
        #: (:class:`repro.faults.LinkFabric`), so a fault-free run pays
        #: only an ``is not None`` test per message.
        self.fabric: Optional[Any] = None

    # ------------------------------------------------------------------
    def register(self, node: NetNode) -> int:
        node.address = next(self._addresses)
        node.lan = self
        if self.params.net_inbox_capacity > 0:
            node.inbox.capacity = self.params.net_inbox_capacity
        self.nodes[node.address] = node
        return node.address

    def node(self, address: int) -> NetNode:
        return self.nodes[address]

    def transmission_time(self, size: int) -> float:
        return size / self.params.net_bandwidth

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> Generator[Effect, None, None]:
        """Transmit one message; delivers into the destination inbox.

        Holds the shared medium for the transmission time (if medium
        sharing is modelled), then delivers after the propagation
        latency.  Raises :class:`HostDownError` if the destination is
        down at delivery time.
        """
        dst = self.nodes.get(packet.dst)
        if dst is None:
            raise HostDownError(f"no node at address {packet.dst}")
        deliver, extra_delay, verdict = True, 0.0, None
        if self.fabric is not None:
            # Raises NetworkPartitionedError when no path exists;
            # ``None`` is the clean-delivery fast path.
            verdict = self.fabric.unicast_effects(packet.src, packet.dst)
            if verdict is not None:
                deliver, extra_delay = verdict.deliver, verdict.delay
        packet.send_time = self.sim.now
        yield from self._occupy_medium(packet.size)
        yield Sleep(self.params.net_latency + extra_delay)
        self.messages_sent += 1
        self.bytes_sent += packet.size
        if self.kind_bytes is not None:
            self.kind_bytes[packet.kind] = (
                self.kind_bytes.get(packet.kind, 0) + packet.size
            )
        if not deliver:
            # Lost in flight: the wire time was spent but nothing
            # arrives; the caller discovers the loss by timeout.
            if self.tracer.enabled:
                self.tracer.emit(
                    self.sim.now, "lan", "drop",
                    src=packet.src, dst=packet.dst, msg=packet.kind,
                )
            return
        if verdict is not None and verdict.duplicates:
            # A duplicating link delivers a second copy shortly after
            # the original (retransmit storm); the lag was drawn by the
            # fabric, so the schedule stays seed-deterministic.
            spawn(
                self.sim,
                self._deliver_duplicate(
                    packet, verdict.dup_delay, verdict.dup_corrupt
                ),
                name=f"lan-dup:{packet.kind}",
                daemon=True,
            )
        if not dst.up:
            raise HostDownError(f"host {dst.name} is down")
        if verdict is not None and verdict.corrupt:
            packet.corrupt = True
        self._deliver(dst, packet)

    def _deliver(self, dst: NetNode, packet: Packet) -> None:
        """Final hop into the destination inbox; a full bounded inbox is
        a counted drop (backpressure), never an exception."""
        if not dst.inbox.try_put(packet):
            self.inbox_overflows += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    self.sim.now, "lan", "inbox-full",
                    src=packet.src, dst=packet.dst, msg=packet.kind,
                )
            return
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now,
                "lan",
                "deliver",
                src=packet.src,
                dst=packet.dst,
                msg=packet.kind,
                size=packet.size,
            )

    def _deliver_duplicate(
        self, packet: Packet, lag: float, corrupt: bool
    ) -> Generator[Effect, None, None]:
        """Deliver the extra copy of a duplicated message after ``lag``."""
        yield Sleep(lag)
        dst = self.nodes.get(packet.dst)
        if dst is None or not dst.up:
            return
        copy = Packet(packet.src, packet.dst, packet.kind, packet.payload,
                      packet.size, send_time=packet.send_time,
                      corrupt=corrupt or packet.corrupt)
        self.duplicates_delivered += 1
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, "lan", "duplicate",
                src=packet.src, dst=packet.dst, msg=packet.kind,
            )
        self._deliver(dst, copy)

    def transfer(self, src: int, dst: int, nbytes: int) -> Generator[Effect, None, None]:
        """Charge the wire time of a bulk transfer of ``nbytes``.

        Used for data that is modelled by size only (VM pages, file
        blocks); no packet object is delivered.
        """
        if nbytes <= 0:
            return
        dst_node = self.nodes.get(dst)
        if dst_node is not None and not dst_node.up:
            raise HostDownError(f"host {dst_node.name} is down")
        extra_delay = 0.0
        if self.fabric is not None:
            # Bulk data rides a retransmitting transport: loss shows up
            # as added delay, a partition as an unreachable peer.
            extra_delay = self.fabric.bulk(src, dst)
        yield from self._occupy_medium(nbytes)
        yield Sleep(self.params.net_latency + extra_delay)
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if self.kind_bytes is not None:
            self.kind_bytes["bulk"] = self.kind_bytes.get("bulk", 0) + nbytes
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, "lan", "transfer", src=src, dst=dst, size=nbytes
            )

    def broadcast(
        self, packet: Packet, exclude: Optional[List[int]] = None
    ) -> Generator[Effect, None, None]:
        """Deliver one message to every up node (cheap on real Ethernet:
        the medium is held once regardless of receiver count)."""
        skip = set(exclude or ())
        skip.add(packet.src)
        yield from self._occupy_medium(packet.size)
        yield Sleep(self.params.net_latency)
        self.messages_sent += 1
        self.bytes_sent += packet.size
        if self.kind_bytes is not None:
            self.kind_bytes[packet.kind] = (
                self.kind_bytes.get(packet.kind, 0) + packet.size
            )
        packet.send_time = self.sim.now
        # Fan the receiver wakeups out through one bulk scheduling call:
        # the buffer/wakeup bookkeeping stays per-channel and synchronous,
        # so the delivery order matches per-receiver try_put exactly.
        wakeups: List[Any] = []
        fabric = self.fabric
        for address, node in sorted(self.nodes.items()):
            if address in skip or not node.up:
                continue
            if fabric is not None and not fabric.multicast(packet.src, address):
                continue
            copy = Packet(packet.src, address, packet.kind, packet.payload, packet.size)
            copy.send_time = packet.send_time
            node.inbox.try_put_batch(copy, wakeups)
        if wakeups:
            self.sim.schedule_many(0.0, wakeups)
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, "lan", "broadcast", src=packet.src, msg=packet.kind
            )

    # ------------------------------------------------------------------
    def _occupy_medium(self, size: int) -> Generator[Effect, None, None]:
        duration = self.transmission_time(size)
        if self.params.net_shared_medium:
            yield from self._medium.hold(duration)
        else:
            yield Sleep(duration)

    def utilization(self) -> float:
        """Fraction of time the medium has been busy."""
        return self._medium.utilization()
