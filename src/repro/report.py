"""Assemble the reproduction report from archived benchmark artifacts.

``pytest benchmarks/ --benchmark-only`` leaves one rendered table/figure
per experiment under ``benchmarks/results/``; this module stitches them
into a single markdown report so the whole evaluation can be read (or
diffed against a previous run) in one place.

Usage::

    python -m repro report             # writes REPRODUCTION_REPORT.md
"""

from __future__ import annotations

import json
import pathlib
from datetime import datetime, timezone
from typing import List, Optional, Tuple

__all__ = ["collect_report", "render_perf_history", "EXPERIMENT_ORDER"]

#: Presentation order with one-line summaries.
EXPERIMENT_ORDER: List[Tuple[str, str]] = [
    ("E1_migration_breakdown", "Migration cost breakdown (ch. 7)"),
    ("E2_vm_policies", "VM-transfer policies: freeze vs size (§4.2.1)"),
    ("E3_forwarding", "Kernel-call costs local vs remote + A2 forward-all ablation"),
    ("E4_exec_migration", "Exec-time migration vs local exec vs rsh"),
    ("E5_pmake_speedup", "pmake speedup vs parallelism (ch. 7)"),
    ("E6_simfarm", "Simulation-farm effective utilization (ch. 7)"),
    ("E7_host_selection", "Host-selection architectures (ch. 6, Table 6.2)"),
    ("A1_version_guard", "Migration version-number guard (§4.5)"),
    ("E8_eviction", "Eviction / host reclaim times (ch. 8)"),
    ("E9_availability", "Host availability by hour (ch. 8)"),
    ("E10_usage", "Production usage window (ch. 8)"),
    ("E11_placement_vs_migration", "Placement-only vs eviction migration"),
    ("E12_distributed_selection", "Distributed-selection staleness ([SvE89])"),
    ("A3_flood_prevention", "Flood-prevention ablation ([BSW89])"),
    ("B1_condor_comparison", "Sprite vs Condor checkpoint/restart (ch. 2)"),
    ("S1_network_sweep", "Network-speed sensitivity (extension)"),
    ("S2_assignment_caching", "Host-assignment caching (ch. 9 future work)"),
    ("P1_engine", "Engine throughput microbenchmarks (infrastructure)"),
    ("P2_sweep", "Snapshot/fork sweep runner cost model (infrastructure)"),
    ("P3_faults", "Fault-injection overhead + chaos gauntlet (infrastructure)"),
    ("P8_checkpoint", "Migration vs checkpoint/restart tradeoff study"),
]

HEADER = """\
# Reproduction report — Sprite process migration

Generated {stamp} from the artifacts in `benchmarks/results/`.
Regenerate with `pytest benchmarks/ --benchmark-only` followed by
`python -m repro report`.  Paper-vs-measured commentary lives in
`EXPERIMENTS.md`; this file is the raw regenerated evaluation.
"""


def render_perf_history(history_path: pathlib.Path, limit: int = 10) -> str:
    """Markdown section summarizing the ``BENCH_history.json`` ledger.

    Shows the trailing ``limit`` entries' headline throughput
    (``bench_engine`` ``task_resume`` events/s) plus how many metrics
    each entry recorded, so the report carries the perf trajectory —
    not just the latest numbers.  Returns "" when there is no ledger.
    """
    if not history_path.is_file():
        return ""
    try:
        history = json.loads(history_path.read_text())
    except ValueError:
        return ""
    if not isinstance(history, list) or not history:
        return ""
    lines = [
        "## Perf ledger (BENCH_history.json)\n",
        f"{len(history)} recorded entr{'y' if len(history) == 1 else 'ies'}; "
        f"trailing {min(limit, len(history))} shown. Append with "
        "`python -m repro perf`.\n",
        "| stamp | commit | mode | task_resume ev/s | metrics |",
        "|---|---|---|---:|---:|",
    ]
    for entry in history[-limit:]:
        benchmarks = entry.get("benchmarks", {})
        headline = (
            benchmarks.get("bench_engine", {})
            .get("results", {})
            .get("task_resume", {})
            .get("events_per_s")
        )
        count = 0

        def walk(node) -> None:
            nonlocal count
            if isinstance(node, dict):
                for key, value in node.items():
                    if key == "events_per_s" and isinstance(
                        value, (int, float)
                    ):
                        count += 1
                    else:
                        walk(value)

        walk(benchmarks)
        shown = f"{headline:,.0f}" if headline is not None else "n/a"
        lines.append(
            f"| {entry.get('stamp', '?')} "
            f"| {str(entry.get('commit', '?'))[:12]} "
            f"| {entry.get('mode', '?')} | {shown} | {count} |"
        )
    return "\n".join(lines) + "\n"


def collect_report(
    results_dir: pathlib.Path,
    output: Optional[pathlib.Path] = None,
    stamp: Optional[str] = None,
) -> str:
    """Build the report text (and write it when ``output`` is given).

    Missing artifacts are listed rather than silently skipped, so a
    partial benchmark run is visible in the report.
    """
    # lint: disable=determinism-wallclock(report header stamp is offline metadata, never sim-visible)
    stamp = stamp or datetime.now(timezone.utc).strftime("%Y-%m-%d %H:%MZ")
    sections: List[str] = [HEADER.format(stamp=stamp)]
    missing: List[str] = []
    known = {name for name, _ in EXPERIMENT_ORDER}
    for name, summary in EXPERIMENT_ORDER:
        path = results_dir / f"{name}.txt"
        if not path.is_file():
            missing.append(name)
            continue
        sections.append(f"## {name} — {summary}\n")
        sections.append("```")
        sections.append(path.read_text().rstrip())
        sections.append("```\n")
    extras = sorted(
        p.stem for p in results_dir.glob("*.txt") if p.stem not in known
    )
    for name in extras:
        sections.append(f"## {name} (unindexed artifact)\n")
        sections.append("```")
        sections.append((results_dir / f"{name}.txt").read_text().rstrip())
        sections.append("```\n")
    if missing:
        sections.append(
            "## Missing artifacts\n\nNot found (benchmarks not run?): "
            + ", ".join(missing)
            + "\n"
        )
    perf = render_perf_history(results_dir.parent.parent / "BENCH_history.json")
    if perf:
        sections.append(perf)
    text = "\n".join(sections)
    if output is not None:
        output.write_text(text)
    return text
