"""Command-line interface: ``python -m repro <command>``.

Conveniences for exploring the reproduction from a checkout:

* ``python -m repro info`` — calibration parameters and the Appendix-A
  kernel-call histogram.
* ``python -m repro demo <name>`` — run one of the example scenarios.
* ``python -m repro experiment <id>`` — regenerate one paper artifact
  (delegates to the pytest benchmark for that experiment).
* ``python -m repro list`` — what's available.
"""

from __future__ import annotations

import argparse
import pathlib
import runpy
import subprocess
import sys
from dataclasses import fields
from typing import Dict, Optional

__all__ = ["main"]

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

DEMOS: Dict[str, str] = {
    "quickstart": "quickstart.py",
    "pmake": "parallel_make.py",
    "eviction": "eviction_demo.py",
    "selection": "host_selection_tour.py",
    "faults": "fault_tolerance_demo.py",
    "sockets": "socket_migration.py",
    "checkpoint": "checkpoint_restart_demo.py",
}

EXPERIMENTS: Dict[str, str] = {
    "E1": "bench_migration_breakdown.py",
    "E2": "bench_vm_policies.py",
    "E3": "bench_forwarding.py",
    "A2": "bench_forwarding.py",
    "E4": "bench_exec_migration.py",
    "E5": "bench_pmake_speedup.py",
    "E6": "bench_simfarm.py",
    "E7": "bench_host_selection.py",
    "A1": "bench_host_selection.py",
    "E8": "bench_eviction.py",
    "E9": "bench_availability.py",
    "E10": "bench_usage_month.py",
    "E11": "bench_placement_vs_migration.py",
    "E12": "bench_distributed_selection.py",
    "A3": "bench_flood_prevention.py",
    "B1": "bench_condor_comparison.py",
    "S1": "bench_network_sweep.py",
    "S2": "bench_assignment_caching.py",
    "P1": "bench_engine.py",
    "P2": "bench_sweep.py",
    "P3": "bench_faults.py",
    "P8": "bench_checkpoint.py",
}


def _find_dir(name: str) -> Optional[pathlib.Path]:
    candidate = _REPO_ROOT / name
    if candidate.is_dir():
        return candidate
    cwd_candidate = pathlib.Path.cwd() / name
    if cwd_candidate.is_dir():
        return cwd_candidate
    return None


def cmd_info(_args: argparse.Namespace) -> int:
    from . import __version__
    from .config import ClusterParams
    from .kernel import APPENDIX_A, classes_of

    print(f"repro {__version__} — Sprite process migration reproduction")
    print("\ncalibration (ClusterParams defaults):")
    params = ClusterParams()
    for field in fields(params):
        if field.name == "extras":
            continue
        print(f"  {field.name:28} = {getattr(params, field.name)}")
    print(f"\nAppendix A: {len(APPENDIX_A)} kernel calls classified:")
    for klass, count in sorted(classes_of().items()):
        print(f"  {klass:16} {count}")
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    print("demos:        " + " ".join(sorted(DEMOS)))
    print("experiments:  " + " ".join(sorted(EXPERIMENTS)))
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    examples = _find_dir("examples")
    if examples is None:
        print("error: examples/ not found (run from a source checkout)",
              file=sys.stderr)
        return 2
    script = examples / DEMOS[args.name]
    print(f"running {script}\n")
    runpy.run_path(str(script), run_name="__main__")
    return 0


def cmd_report(_args: argparse.Namespace) -> int:
    from .report import collect_report

    benchmarks = _find_dir("benchmarks")
    if benchmarks is None:
        print("error: benchmarks/ not found (run from a source checkout)",
              file=sys.stderr)
        return 2
    results = benchmarks / "results"
    if not results.is_dir():
        print("error: no benchmarks/results — run "
              "`pytest benchmarks/ --benchmark-only` first", file=sys.stderr)
        return 2
    output = benchmarks.parent / "REPRODUCTION_REPORT.md"
    collect_report(results, output=output)
    print(f"wrote {output}")
    return 0


class _CaptureClusters:
    """Context manager that wraps ``SpriteCluster.__init__`` so every
    cluster a traced workload builds comes up with observability
    installed (spans + tracer on, metrics hooks attached)."""

    def __init__(self, sample_period: Optional[float] = None,
                 profile: bool = False):
        self.sample_period = sample_period
        self.profile = profile
        self.captured: list = []

    def __enter__(self) -> "_CaptureClusters":
        from .cluster import SpriteCluster
        from .obs import ClusterObservability, EngineProfiler

        self._original = SpriteCluster.__init__
        original = self._original
        captured = self.captured
        period = self.sample_period
        profile = self.profile

        def patched(cluster, *cargs, **ckwargs):
            original(cluster, *cargs, **ckwargs)
            obs = ClusterObservability.install(
                cluster, spans=True, trace=True, sample_period=period
            )
            if profile:
                EngineProfiler().install(cluster.sim)
            captured.append((cluster, obs))

        SpriteCluster.__init__ = patched
        return self

    def __exit__(self, *exc_info) -> None:
        from .cluster import SpriteCluster

        SpriteCluster.__init__ = self._original


def _trace_builtin_migration() -> None:
    """Fixed scenario: two jobs, two migrations, fully deterministic."""
    from .cluster import SpriteCluster
    from .fs import OpenMode
    from .sim import Sleep, spawn

    cluster = SpriteCluster(workstations=3, start_daemons=False)
    src, dst1, dst2 = cluster.hosts[0], cluster.hosts[1], cluster.hosts[2]

    def job(proc):
        fd = yield from proc.open(
            f"/trace-{proc.pcb.pid}", OpenMode.WRITE | OpenMode.CREATE
        )
        yield from proc.compute(2.0)
        yield from proc.close(fd)
        return proc.pcb.current

    pcb1, _ = src.spawn_process(job, name="job1")
    pcb2, _ = src.spawn_process(job, name="job2")

    def driver():
        yield Sleep(0.5)
        manager = cluster.managers[src.address]
        yield from manager.migrate(pcb1, dst1.address, reason="offload")
        yield from manager.migrate(pcb2, dst2.address, reason="offload")

    spawn(cluster.sim, driver(), name="trace-driver")
    cluster.run_until_complete(pcb1.task)
    cluster.run_until_complete(pcb2.task)


def cmd_trace(args: argparse.Namespace) -> int:
    from .obs import (
        migration_breakdowns,
        render_flame,
        render_span_summary,
        spans_to_chrome_trace,
        trace_to_jsonl,
    )

    out_dir = pathlib.Path(args.out) if args.out else (
        pathlib.Path("traces") / args.target
    )
    capture = _CaptureClusters(sample_period=args.sample)
    with capture:
        if args.target == "migration":
            _trace_builtin_migration()
        elif args.target in DEMOS:
            examples = _find_dir("examples")
            if examples is None:
                print("error: examples/ not found (run from a source "
                      "checkout)", file=sys.stderr)
                return 2
            runpy.run_path(str(examples / DEMOS[args.target]),
                           run_name="__main__")
        else:
            benchmarks = _find_dir("benchmarks")
            if benchmarks is None:
                print("error: benchmarks/ not found (run from a source "
                      "checkout)", file=sys.stderr)
                return 2
            import pytest

            code = pytest.main(
                [str(benchmarks / EXPERIMENTS[args.target]),
                 "--benchmark-only", "-q", "-x"]
            )
            if code != 0:
                print(f"warning: experiment exited with {code}; exporting "
                      "whatever was captured", file=sys.stderr)
    if not capture.captured:
        print("error: the workload never built a SpriteCluster; nothing "
              "to trace", file=sys.stderr)
        return 1

    records = [r for cluster, _obs in capture.captured
               for r in cluster.tracer.records]
    spans = [s for _cluster, obs in capture.captured
             for s in obs.spans.finished]

    # Filters ----------------------------------------------------------
    # A filter that matches nothing is almost always a typo (wrong host
    # name, misspelled span prefix); fail loudly instead of exporting an
    # empty trace that looks like a successful run.
    if args.kinds:
        wanted = {k.strip() for k in args.kinds.split(",") if k.strip()}
        records = [r for r in records if r.kind in wanted]
        if not records:
            print(f"error: --kinds {args.kinds!r} matched no trace records "
                  f"(captured kinds differ); nothing to export",
                  file=sys.stderr)
            return 1
    if args.host:
        records = [r for r in records if args.host in r.source]
        spans = [s for s in spans if args.host in s.source]
        if not records and not spans:
            print(f"error: --host {args.host!r} matched no records or spans "
                  f"(no source contains it); nothing to export",
                  file=sys.stderr)
            return 1
    if args.span:
        prefixes = tuple(p.strip() for p in args.span.split(",") if p.strip())
        spans = [s for s in spans if s.name.startswith(prefixes)]
        if not spans:
            print(f"error: --span {args.span!r} matched no spans "
                  f"(check the prefixes against docs/observability.md); "
                  f"nothing to export", file=sys.stderr)
            return 1

    # Artifacts --------------------------------------------------------
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_to_jsonl(records, out_dir / "trace.jsonl")
    spans_to_chrome_trace(spans, out_dir / "trace_chrome.json")
    snapshots = [obs.snapshot() for _cluster, obs in capture.captured]
    import json

    (out_dir / "metrics.json").write_text(
        json.dumps(snapshots, indent=1, sort_keys=True) + "\n"
    )
    summary = render_span_summary(spans)
    flame = render_flame(spans)
    (out_dir / "summary.txt").write_text(summary + "\n\n" + flame + "\n")

    # Console report ---------------------------------------------------
    print(f"captured {len(capture.captured)} cluster(s), "
          f"{len(records)} trace records, {len(spans)} spans")
    print(f"\n{summary}\n")
    breakdowns = migration_breakdowns(spans)
    if breakdowns:
        print("migrations:")
        for row in breakdowns:
            status = "refused" if row["refused"] else "ok"
            print(f"  pid {row['pid']} {row['source']}→{row['target']} "
                  f"({row['reason']}, {status}): total {row['total']:.4f}s "
                  f"freeze {row['freeze']:.4f}s")
        print()
    print(f"wrote trace.jsonl, trace_chrome.json, metrics.json, summary.txt "
          f"to {out_dir}/")
    return 0


def cmd_critpath(args: argparse.Namespace) -> int:
    """Causal critical-path analysis of a traced workload."""
    from .obs import critpath_report

    capture = _CaptureClusters(profile=args.profile)
    with capture:
        if args.target == "migration":
            _trace_builtin_migration()
        else:
            examples = _find_dir("examples")
            if examples is None:
                print("error: examples/ not found (run from a source "
                      "checkout)", file=sys.stderr)
                return 2
            runpy.run_path(str(examples / DEMOS[args.target]),
                           run_name="__main__")
    if not capture.captured:
        print("error: the workload never built a SpriteCluster; nothing "
              "to analyze", file=sys.stderr)
        return 1
    spans = [s for _cluster, obs in capture.captured
             for s in obs.spans.finished]
    report = critpath_report(spans, limit=args.limit)
    if args.profile:
        from .obs import EngineProfiler

        merged = EngineProfiler()
        for cluster, _obs in capture.captured:
            profiler = cluster.sim.profiler
            if profiler is not None:
                merged.merge_from(profiler)
        report += "\n\n" + merged.render()
    print(report)
    if args.out:
        out_path = pathlib.Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(report + "\n")
        print(f"\nwrote {out_path}", file=sys.stderr)
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    """Longitudinal perf ledger: run benches, append to BENCH_history.json."""
    import importlib.util

    tools = _find_dir("tools")
    if tools is None or not (tools / "perf_ledger.py").is_file():
        print("error: tools/perf_ledger.py not found (run from a source "
              "checkout)", file=sys.stderr)
        return 2
    spec = importlib.util.spec_from_file_location(
        "perf_ledger", tools / "perf_ledger.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    argv = []
    if args.smoke:
        argv.append("--smoke")
    if args.history:
        argv.extend(["--history", args.history])
    if args.slowdown is not None:
        argv.extend(["--slowdown", str(args.slowdown)])
    if args.no_gate:
        argv.append("--no-gate")
    return module.main(argv)


def cmd_chaos(args: argparse.Namespace) -> int:
    """Chaos runs + invariant audit (+ optional determinism check)."""
    import json

    from .faults import build_chaos_base, run_chaos
    from .snapshot import SweepRunner

    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    if args.crash_matrix:
        return _cmd_crash_matrix(args, seeds)
    reports = []
    failed = False
    for seed in seeds:
        # Build-and-warm once per seed; every run is a fork of that
        # base (two forks when verifying determinism), fanned over
        # --workers concurrent child processes.
        base = build_chaos_base(seed=seed, workstations=args.hosts)
        runs = 2 if args.verify_determinism else 1

        def chaos_cell(cluster, _run_index):
            return run_chaos(
                duration=args.duration,
                random_churn=args.churn,
                mtbf=args.mtbf,
                jobs=args.jobs,
                base=cluster,
                policy=args.policy,
                checkpoint_interval=args.checkpoint_interval,
                checkpoint_mode=args.checkpoint_mode,
                job_memory=args.job_memory,
                adversarial=args.adversarial,
            )

        pair = SweepRunner(base, workers=args.workers).run(
            list(range(runs)), chaos_cell
        )
        report = pair[0]
        reports.append(report)
        if args.verify_determinism:
            again = pair[1]
            if again.fingerprint != report.fingerprint:
                failed = True
                print(f"seed {seed}: NONDETERMINISTIC "
                      f"({report.fingerprint[:16]} != {again.fingerprint[:16]})",
                      file=sys.stderr)
        if report.violations:
            failed = True
        if not args.json:
            status = "CLEAN" if report.clean else "VIOLATIONS"
            print(f"seed {seed}: {status} — {report.jobs} jobs "
                  f"({report.jobs_finished} finished, {report.jobs_lost} lost), "
                  f"{report.migrations} migrations, {report.refusals} refusals, "
                  f"{report.faults} faults, fingerprint {report.fingerprint[:16]}")
            if args.adversarial:
                print(f"    adversarial: "
                      f"{report.packets_duplicated} duplicated / "
                      f"{report.packets_reordered} reordered / "
                      f"{report.packets_corrupted} corrupted packets, "
                      f"{report.checksum_drops} checksum drops, "
                      f"{report.duplicates_suppressed} dupes suppressed, "
                      f"{report.dedup_replays} replays, "
                      f"{report.double_executions} double executions")
                print(f"    detector: {report.suspicions_declared} declared, "
                      f"{report.false_suspicions} false, "
                      f"{report.reconciles} reconciled; "
                      f"backpressure {report.backpressure_refusals} refusals, "
                      f"{report.inbox_overflows} inbox overflows")
            if report.policy != "migrate":
                print(f"    policy {report.policy}: "
                      f"{report.checkpoints} checkpoints, "
                      f"{report.restores} restores, "
                      f"{report.torn_images} torn, "
                      f"availability {report.availability:.2f}, "
                      f"goodput {report.goodput:.3f}")
            for event in report.events:
                print(f"    {event}")
            for violation in report.violations:
                print(f"    VIOLATION {violation}")
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=1,
                         sort_keys=True))
    return 1 if failed else 0


def _cmd_crash_matrix(args: argparse.Namespace, seeds: list) -> int:
    """The exhaustive migration-transaction crash matrix."""
    import json

    from .faults import run_matrix

    failed = False
    reports = []
    for seed in seeds:
        report = run_matrix(
            seed=seed, max_cells=args.cells, workers=args.workers
        )
        reports.append(report)
        if args.verify_determinism:
            again = run_matrix(
                seed=seed, max_cells=args.cells, workers=args.workers
            )
            if again.fingerprint != report.fingerprint:
                failed = True
                print(f"seed {seed}: NONDETERMINISTIC "
                      f"({report.fingerprint[:16]} != "
                      f"{again.fingerprint[:16]})", file=sys.stderr)
        if not report.clean:
            failed = True
        if not args.json:
            clean = sum(1 for c in report.cells if c.clean)
            status = "CLEAN" if report.clean else "VIOLATIONS"
            print(f"seed {seed}: {status} — {clean}/{len(report.cells)} "
                  f"cells clean, fingerprint {report.fingerprint[:16]}")
            for cell in report.cells:
                print(f"    {cell}")
                for violation in cell.in_flight_violations:
                    print(f"        IN-FLIGHT VIOLATION {violation}")
                for violation in cell.violations:
                    print(f"        VIOLATION {violation}")
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=1,
                         sort_keys=True))
    return 1 if failed else 0


def cmd_experiment(args: argparse.Namespace) -> int:
    benchmarks = _find_dir("benchmarks")
    if benchmarks is None:
        print("error: benchmarks/ not found (run from a source checkout)",
              file=sys.stderr)
        return 2
    target = benchmarks / EXPERIMENTS[args.id]
    command = [
        sys.executable, "-m", "pytest", str(target),
        "--benchmark-only", "-q", "-s",
    ]
    print(f"running {' '.join(command)}\n")
    return subprocess.call(command, cwd=str(benchmarks.parent))


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.cli import cmd_lint as _cmd_lint

    return _cmd_lint(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Sprite process-migration reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="calibration + Appendix A summary")
    sub.add_parser("list", help="available demos and experiments")
    demo = sub.add_parser("demo", help="run an example scenario")
    demo.add_argument("name", choices=sorted(DEMOS))
    experiment = sub.add_parser("experiment", help="regenerate a paper artifact")
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    sub.add_parser("report", help="stitch benchmark artifacts into one report")
    trace = sub.add_parser(
        "trace",
        help="run a workload with spans+metrics on and export the trace",
    )
    trace.add_argument(
        "target",
        choices=["migration"] + sorted(DEMOS) + sorted(EXPERIMENTS),
        help="'migration' (builtin fixed scenario), a demo, or an experiment",
    )
    trace.add_argument("--out", default=None,
                       help="output directory (default traces/<target>/)")
    trace.add_argument("--kinds", default=None,
                       help="comma-separated record kinds to keep in "
                            "trace.jsonl (e.g. span,migrated,call)")
    trace.add_argument("--host", default=None,
                       help="keep only records/spans whose source contains "
                            "this substring (e.g. ws1)")
    trace.add_argument("--span", default=None,
                       help="comma-separated span-name prefixes to keep "
                            "(e.g. mig.,rpc.)")
    trace.add_argument("--sample", type=float, default=None,
                       help="metrics sampling period in sim seconds "
                            "(off by default: a sampler keeps the event "
                            "queue non-empty)")
    critpath = sub.add_parser(
        "critpath",
        help="causal critical-path analysis: per-migration latency "
             "attribution and the whole-run critical path",
    )
    critpath.add_argument(
        "target",
        choices=["migration"] + sorted(DEMOS),
        help="'migration' (builtin fixed scenario) or a demo",
    )
    critpath.add_argument("--out", default=None,
                          help="also write the report to this file")
    critpath.add_argument("--limit", type=int, default=40,
                          help="max critical-path segments to print")
    critpath.add_argument("--profile", action="store_true",
                          help="attach the engine hot-spot profiler and "
                               "append its per-subsystem event report")
    perf = sub.add_parser(
        "perf",
        help="run benchmarks, append results to the BENCH_history.json "
             "perf ledger, and gate on regressions",
    )
    perf.add_argument("--smoke", action="store_true",
                      help="small workloads (CI mode); entries are "
                           "recorded under mode=smoke")
    perf.add_argument("--history", default=None,
                      help="ledger path (default BENCH_history.json at "
                           "the repo root)")
    perf.add_argument("--slowdown", type=float, default=None,
                      help="regression gate: fail when a throughput "
                           "metric drops below best-known/slowdown "
                           "(default 2.0)")
    perf.add_argument("--no-gate", action="store_true",
                      help="append the entry but skip the regression gate")
    chaos = sub.add_parser(
        "chaos",
        help="fault-injection runs with an invariant audit",
    )
    chaos.add_argument("--seeds", default="0",
                       help="comma-separated seeds, one run each")
    chaos.add_argument("--hosts", type=int, default=5,
                       help="number of workstations")
    chaos.add_argument("--duration", type=float, default=120.0,
                       help="sim seconds of chaos before quiescing")
    chaos.add_argument("--jobs", type=int, default=12,
                       help="background jobs to run under churn")
    chaos.add_argument("--adversarial", action="store_true",
                       help="adversarial network: duplicating/reordering/"
                            "corrupting links, suspicion-based failure "
                            "detector, migration backpressure caps")
    chaos.add_argument("--churn", action="store_true",
                       help="seeded-random host churn instead of the "
                            "scripted gauntlet")
    chaos.add_argument("--mtbf", type=float, default=60.0,
                       help="mean time between host crashes (--churn)")
    chaos.add_argument("--policy", default="migrate",
                       choices=["migrate", "proactive-migrate",
                                "checkpoint", "checkpoint-restart",
                                "hybrid"],
                       help="fault-tolerance policy: proactive "
                            "migration (default, today's behaviour), "
                            "checkpoint/restart, or both")
    chaos.add_argument("--checkpoint-interval", type=float, default=None,
                       help="sim seconds between checkpoints "
                            "(default ClusterParams.checkpoint_interval)")
    chaos.add_argument("--checkpoint-mode", default="full",
                       choices=["full", "incremental"],
                       help="image mode: full, or dirty-page deltas "
                            "chained on the last full image")
    chaos.add_argument("--job-memory", type=int, default=0,
                       help="bytes of address space per chaos job "
                            "(sizes checkpoint images; 0 keeps the "
                            "golden workload)")
    chaos.add_argument("--verify-determinism", action="store_true",
                       help="run each seed twice and require "
                            "byte-identical trace fingerprints")
    chaos.add_argument("--crash-matrix", action="store_true",
                       help="run the migration-transaction crash matrix "
                            "({source,target,home,fs} x {crash,partition} "
                            "x every txn step boundary) instead of the "
                            "workload gauntlet")
    chaos.add_argument("--cells", type=int, default=None,
                       help="with --crash-matrix: bound the run to an "
                            "evenly-spread subset of this many cells "
                            "(default: all 88)")
    chaos.add_argument("--workers", type=int, default=1,
                       help="concurrent copy-on-write forked workers for "
                            "chaos runs and crash-matrix cells; "
                            "fingerprints are identical for any value")
    chaos.add_argument("--json", action="store_true",
                       help="machine-readable report on stdout")
    lint = sub.add_parser(
        "lint",
        help="AST invariant linter (determinism, trace guards, RPC "
             "conformance, txn hygiene, error hierarchies)",
    )
    from .analysis.cli import add_arguments as _add_lint_arguments

    _add_lint_arguments(lint)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": cmd_info,
        "list": cmd_list,
        "demo": cmd_demo,
        "experiment": cmd_experiment,
        "report": cmd_report,
        "trace": cmd_trace,
        "critpath": cmd_critpath,
        "perf": cmd_perf,
        "chaos": cmd_chaos,
        "lint": cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
