"""Command-line interface: ``python -m repro <command>``.

Conveniences for exploring the reproduction from a checkout:

* ``python -m repro info`` — calibration parameters and the Appendix-A
  kernel-call histogram.
* ``python -m repro demo <name>`` — run one of the example scenarios.
* ``python -m repro experiment <id>`` — regenerate one paper artifact
  (delegates to the pytest benchmark for that experiment).
* ``python -m repro list`` — what's available.
"""

from __future__ import annotations

import argparse
import pathlib
import runpy
import subprocess
import sys
from dataclasses import fields
from typing import Dict, Optional

__all__ = ["main"]

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

DEMOS: Dict[str, str] = {
    "quickstart": "quickstart.py",
    "pmake": "parallel_make.py",
    "eviction": "eviction_demo.py",
    "selection": "host_selection_tour.py",
    "faults": "fault_tolerance_demo.py",
    "sockets": "socket_migration.py",
}

EXPERIMENTS: Dict[str, str] = {
    "E1": "bench_migration_breakdown.py",
    "E2": "bench_vm_policies.py",
    "E3": "bench_forwarding.py",
    "A2": "bench_forwarding.py",
    "E4": "bench_exec_migration.py",
    "E5": "bench_pmake_speedup.py",
    "E6": "bench_simfarm.py",
    "E7": "bench_host_selection.py",
    "A1": "bench_host_selection.py",
    "E8": "bench_eviction.py",
    "E9": "bench_availability.py",
    "E10": "bench_usage_month.py",
    "E11": "bench_placement_vs_migration.py",
    "E12": "bench_distributed_selection.py",
    "A3": "bench_flood_prevention.py",
    "B1": "bench_condor_comparison.py",
    "S1": "bench_network_sweep.py",
    "S2": "bench_assignment_caching.py",
    "P1": "bench_engine.py",
}


def _find_dir(name: str) -> Optional[pathlib.Path]:
    candidate = _REPO_ROOT / name
    if candidate.is_dir():
        return candidate
    cwd_candidate = pathlib.Path.cwd() / name
    if cwd_candidate.is_dir():
        return cwd_candidate
    return None


def cmd_info(_args: argparse.Namespace) -> int:
    from . import __version__
    from .config import ClusterParams
    from .kernel import APPENDIX_A, classes_of

    print(f"repro {__version__} — Sprite process migration reproduction")
    print("\ncalibration (ClusterParams defaults):")
    params = ClusterParams()
    for field in fields(params):
        if field.name == "extras":
            continue
        print(f"  {field.name:28} = {getattr(params, field.name)}")
    print(f"\nAppendix A: {len(APPENDIX_A)} kernel calls classified:")
    for klass, count in sorted(classes_of().items()):
        print(f"  {klass:16} {count}")
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    print("demos:        " + " ".join(sorted(DEMOS)))
    print("experiments:  " + " ".join(sorted(EXPERIMENTS)))
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    examples = _find_dir("examples")
    if examples is None:
        print("error: examples/ not found (run from a source checkout)",
              file=sys.stderr)
        return 2
    script = examples / DEMOS[args.name]
    print(f"running {script}\n")
    runpy.run_path(str(script), run_name="__main__")
    return 0


def cmd_report(_args: argparse.Namespace) -> int:
    from .report import collect_report

    benchmarks = _find_dir("benchmarks")
    if benchmarks is None:
        print("error: benchmarks/ not found (run from a source checkout)",
              file=sys.stderr)
        return 2
    results = benchmarks / "results"
    if not results.is_dir():
        print("error: no benchmarks/results — run "
              "`pytest benchmarks/ --benchmark-only` first", file=sys.stderr)
        return 2
    output = benchmarks.parent / "REPRODUCTION_REPORT.md"
    collect_report(results, output=output)
    print(f"wrote {output}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    benchmarks = _find_dir("benchmarks")
    if benchmarks is None:
        print("error: benchmarks/ not found (run from a source checkout)",
              file=sys.stderr)
        return 2
    target = benchmarks / EXPERIMENTS[args.id]
    command = [
        sys.executable, "-m", "pytest", str(target),
        "--benchmark-only", "-q", "-s",
    ]
    print(f"running {' '.join(command)}\n")
    return subprocess.call(command, cwd=str(benchmarks.parent))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Sprite process-migration reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="calibration + Appendix A summary")
    sub.add_parser("list", help="available demos and experiments")
    demo = sub.add_parser("demo", help="run an example scenario")
    demo.add_argument("name", choices=sorted(DEMOS))
    experiment = sub.add_parser("experiment", help="regenerate a paper artifact")
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    sub.add_parser("report", help="stitch benchmark artifacts into one report")
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": cmd_info,
        "list": cmd_list,
        "demo": cmd_demo,
        "experiment": cmd_experiment,
        "report": cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
