"""The Internet protocol server and socket interface [Che87].

Sockets are proxied through a user-level server behind the ``/dev/net``
pseudo-device, so socket IPC is transparent to migration: endpoints can
move hosts mid-conversation and their connections follow.
"""

from .api import Sockets
from .server import NET_PDEV_PATH, InternetServer, SocketError

__all__ = ["InternetServer", "NET_PDEV_PATH", "SocketError", "Sockets"]
