"""Process-side socket interface (the 4.3BSD socket calls).

A thin layer over the ``/dev/net`` pseudo-device: every call is one
pdev request to the Internet server.  Because the pdev stream rides in
the process's file table, sockets survive migration with no special
handling — the very point of [Che87]'s design for the thesis.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from ..fs import OpenMode
from ..kernel import UserContext
from ..sim import Effect
from .server import NET_PDEV_PATH

__all__ = ["Sockets"]


class Sockets:
    """Socket operations for one process (``Sockets(proc)``)."""

    def __init__(self, proc: UserContext):
        self.proc = proc
        self._net_fd: Optional[int] = None

    def _request(
        self, message: Dict, size: int = 128, reply_size: int = 128
    ) -> Generator[Effect, None, object]:
        if self._net_fd is None:
            self._net_fd = yield from self.proc.open(
                NET_PDEV_PATH, OpenMode.READ_WRITE
            )
        return (
            yield from self.proc.pdev_request(
                self._net_fd, message, size=size, reply_size=reply_size
            )
        )

    # ------------------------------------------------------------------
    def socket(self, kind: str = "stream") -> Generator[Effect, None, int]:
        """Create a socket ("stream" ~ TCP, "dgram" ~ UDP)."""
        return (yield from self._request({"op": "socket", "kind": kind}))

    def bind(self, sock: int, port: int) -> Generator[Effect, None, int]:
        return (yield from self._request({"op": "bind", "sock": sock, "port": port}))

    def listen(self, sock: int) -> Generator[Effect, None, None]:
        yield from self._request({"op": "listen", "sock": sock})

    def connect(self, sock: int, port: int) -> Generator[Effect, None, None]:
        yield from self._request({"op": "connect", "sock": sock, "port": port})

    def accept(self, sock: int) -> Generator[Effect, None, int]:
        """Block until a connection arrives; returns its socket id."""
        return (yield from self._request({"op": "accept", "sock": sock}))

    def send(self, sock: int, nbytes: int) -> Generator[Effect, None, int]:
        """Send on a connected stream (data crosses to the IP server)."""
        return (
            yield from self._request(
                {"op": "send", "sock": sock, "nbytes": nbytes}, size=nbytes
            )
        )

    def recv(self, sock: int, nbytes: int) -> Generator[Effect, None, int]:
        """Blocking receive; 0 = peer closed (data comes from the server)."""
        return (
            yield from self._request(
                {"op": "recv", "sock": sock, "nbytes": nbytes},
                reply_size=nbytes,
            )
        )

    def sendto(self, sock: int, port: int, nbytes: int) -> Generator[Effect, None, int]:
        return (
            yield from self._request(
                {"op": "sendto", "sock": sock, "port": port, "nbytes": nbytes},
                size=nbytes,
            )
        )

    def recvfrom(self, sock: int) -> Generator[Effect, None, Tuple[int, int]]:
        """Blocking datagram receive; returns (source_port, nbytes)."""
        reply = yield from self._request(
            {"op": "recvfrom", "sock": sock}, reply_size=4096
        )
        return reply["from"], reply["nbytes"]

    def close(self, sock: int) -> Generator[Effect, None, None]:
        yield from self._request({"op": "close", "sock": sock})
