"""The Sprite Internet protocol server [Che87].

Sprite put the TCP/IP stack in a *user-level* server process reached
through a pseudo-device: processes open ``/dev/net`` and make
socket-style requests; the server keeps all connection state.  The
migration payoff is the thesis's: because only the operating system
(the pdev plumbing) knows where the endpoints are, "Internet socket IPC
does not pose any particular problem for migration" — a process can
move mid-conversation and its connections simply follow.

The model implements the socket surface the workloads use: DGRAM
(UDP-like, unordered delivery to a port) and STREAM (TCP-like,
connection-oriented byte counts with buffering and blocking reads).
Payload contents are modelled by size, like file data.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

from collections import deque

from ..config import KB
from ..fs import PdevMaster
from ..kernel import Host
from ..sim import SimEvent

__all__ = ["InternetServer", "NET_PDEV_PATH", "SocketError"]

NET_PDEV_PATH = "/dev/net"
STREAM_BUFFER = 16 * KB


class SocketError(Exception):
    """Socket-level failures (port in use, not connected, refused)."""


@dataclass
class _Socket:
    sock_id: int
    kind: str                       # "dgram" | "stream"
    port: Optional[int] = None
    #: Datagrams: (src_port, nbytes) queue.  Streams: byte count buffered.
    datagrams: Deque[Tuple[int, int]] = field(default_factory=deque)
    buffered: int = 0
    peer: Optional[int] = None      # connected stream's peer socket id
    listening: bool = False
    pending_accepts: Deque[int] = field(default_factory=deque)
    closed: bool = False
    #: Wakeups for blocked receivers/accepters.
    readable: Optional[SimEvent] = None


class InternetServer:
    """The IP server: a user process serving socket ops over a pdev."""

    def __init__(self, home: Host):
        self.home = home
        self.master = PdevMaster(home.sim, "ipserver")
        home.pdevs.attach(self.master)
        self.sockets: Dict[int, _Socket] = {}
        self.ports: Dict[int, int] = {}      # port -> socket id
        self._ids = itertools.count(1)
        self.pcb = None
        self.requests_handled = 0
        self.bytes_switched = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Register /dev/net and run the server process."""
        def serve(proc):
            yield from proc.kernel.rpc.call(
                proc.kernel.fs.prefixes.route(NET_PDEV_PATH),
                "fs.register_pdev",
                (NET_PDEV_PATH, self.home.address, self.master.pdev_id),
            )
            while True:
                request = yield self.master.next_request()
                self.requests_handled += 1
                try:
                    reply = self._dispatch(request.message)
                except SocketError as err:
                    request.fail(err)
                    continue
                if reply is _BLOCKED:
                    # Blocking op: finish it in its own task so the
                    # server keeps serving other clients.
                    self._finish_blocking(proc, request)
                    continue
                request.respond(reply, size=128)

        self.pcb, _ = self.home.spawn_process(serve, name="ipserver")

    def _finish_blocking(self, proc, request) -> None:
        from ..sim import spawn

        def waiter():
            message = request.message
            sock = self._socket(message["sock"])
            while True:
                reply = self._try_complete(message, sock)
                if reply is not _BLOCKED:
                    request.respond(reply, size=128)
                    return
                if sock.readable is None:
                    sock.readable = SimEvent(self.home.sim, f"sock{sock.sock_id}")
                yield sock.readable.wait()

        spawn(self.home.sim, waiter(), name="ipserver-block", daemon=True)

    # ------------------------------------------------------------------
    # Pure state machine
    # ------------------------------------------------------------------
    def _socket(self, sock_id: int) -> _Socket:
        sock = self.sockets.get(sock_id)
        if sock is None or sock.closed:
            raise SocketError(f"bad socket {sock_id}")
        return sock

    def _wake(self, sock: _Socket) -> None:
        if sock.readable is not None and not sock.readable.fired:
            sock.readable.trigger()
        sock.readable = None

    def _dispatch(self, message: Dict):
        op = message["op"]
        if op == "socket":
            sock_id = next(self._ids)
            self.sockets[sock_id] = _Socket(sock_id=sock_id, kind=message["kind"])
            return sock_id
        if op == "bind":
            sock = self._socket(message["sock"])
            port = message["port"]
            if port in self.ports:
                raise SocketError(f"port {port} in use")
            self.ports[port] = sock.sock_id
            sock.port = port
            return port
        if op == "listen":
            sock = self._socket(message["sock"])
            sock.listening = True
            return None
        if op == "connect":
            sock = self._socket(message["sock"])
            target_id = self.ports.get(message["port"])
            if target_id is None:
                raise SocketError(f"connection refused: port {message['port']}")
            listener = self._socket(target_id)
            if not listener.listening:
                raise SocketError(f"connection refused: port {message['port']}")
            # Create the server-side endpoint of the new connection.
            server_end = _Socket(sock_id=next(self._ids), kind="stream")
            self.sockets[server_end.sock_id] = server_end
            server_end.peer = sock.sock_id
            sock.peer = server_end.sock_id
            listener.pending_accepts.append(server_end.sock_id)
            self._wake(listener)
            return None
        if op == "sendto":
            sock = self._socket(message["sock"])
            target_id = self.ports.get(message["port"])
            if target_id is None:
                raise SocketError(f"no listener on port {message['port']}")
            target = self._socket(target_id)
            target.datagrams.append((sock.port or 0, message["nbytes"]))
            self.bytes_switched += message["nbytes"]
            self._wake(target)
            return message["nbytes"]
        if op == "send":
            sock = self._socket(message["sock"])
            if sock.peer is None:
                raise SocketError(f"socket {sock.sock_id} not connected")
            peer = self._socket(sock.peer)
            peer.buffered += message["nbytes"]
            self.bytes_switched += message["nbytes"]
            self._wake(peer)
            return message["nbytes"]
        if op == "close":
            sock = self.sockets.get(message["sock"])
            if sock is not None:
                sock.closed = True
                if sock.port is not None:
                    self.ports.pop(sock.port, None)
                if sock.peer is not None:
                    peer = self.sockets.get(sock.peer)
                    if peer is not None:
                        peer.peer = None
                        self._wake(peer)   # readers see EOF
                self._wake(sock)
            return None
        if op in ("recv", "recvfrom", "accept"):
            sock = self._socket(message["sock"])
            return self._try_complete(message, sock)
        raise SocketError(f"unknown socket op {op!r}")

    def _try_complete(self, message: Dict, sock: _Socket):
        op = message["op"]
        if op == "accept":
            if sock.pending_accepts:
                return sock.pending_accepts.popleft()
            return _BLOCKED
        if op == "recvfrom":
            if sock.datagrams:
                src_port, nbytes = sock.datagrams.popleft()
                return {"from": src_port, "nbytes": nbytes}
            return _BLOCKED
        if op == "recv":
            if sock.buffered > 0:
                got = min(message["nbytes"], sock.buffered)
                sock.buffered -= got
                return got
            if sock.peer is None:
                return 0     # connection gone: EOF
            return _BLOCKED
        raise SocketError(f"unknown blocking op {op!r}")


#: Sentinel: the operation must wait for data/connections.
_BLOCKED = object()
