"""Coroutine tasks on top of the event queue.

A *task* is a Python generator driven by the simulator.  The generator
yields :class:`Effect` objects describing what it is waiting for —
sleeping, another task finishing, an event triggering — and is resumed
with the effect's result.  Sub-activities compose with ``yield from``.

Example::

    def worker(sim):
        yield Sleep(1.5)            # advance simulated time
        yield event.wait()          # block on a condition
        return "done"

    task = spawn(sim, worker(sim), name="worker")
    sim.run()
    assert task.result == "done"

The scheduling discipline is: every resumption happens as its own event
at the current instant, so tasks never re-enter one another and runs are
deterministic for a fixed seed.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Generator, List, Optional

from .engine import EventHandle, Simulator
from .errors import Interrupted, SimError, SnapshotError, TaskFailed

__all__ = [
    "Effect",
    "all_of",
    "Sleep",
    "SimEvent",
    "Task",
    "spawn",
    "first",
    "run_until_complete",
    "with_timeout",
    "TIMED_OUT",
]

TaskGen = Generator["Effect", Any, Any]


class Effect:
    """Something a task can wait on.

    Subclasses arrange, in :meth:`bind`, for exactly one later call to
    ``waiter._resume(value)`` or ``waiter._throw(exc)``; :meth:`cancel`
    revokes that arrangement (used by interrupts and ``first``).
    """

    __slots__ = ()

    def bind(self, waiter: "_Waiter") -> None:
        raise NotImplementedError

    def cancel(self, waiter: "_Waiter") -> None:
        raise NotImplementedError


class _Waiter:
    """Protocol implemented by :class:`Task` and by ``first`` proxies."""

    __slots__ = ()

    sim: Simulator

    def _resume(self, value: Any) -> None:
        raise NotImplementedError

    def _throw(self, exc: BaseException) -> None:
        raise NotImplementedError


class Sleep(Effect):
    """Suspend the task for ``delay`` simulated seconds."""

    __slots__ = ("delay", "_handle", "_cancelled")

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"negative sleep: {delay}")
        self.delay = delay
        self._handle: Optional[EventHandle] = None
        self._cancelled = False

    def bind(self, waiter: _Waiter) -> None:
        if self.delay == 0.0:
            # ``Sleep(0)`` (yield to the scheduler) is the hottest resume
            # pattern: skip the EventHandle and let the effect's own
            # cancelled flag stand in for handle cancellation.
            waiter.sim.defer(self._fire, waiter)
        else:
            self._handle = waiter.sim.schedule(self.delay, waiter._resume, None)

    def _fire(self, waiter: _Waiter) -> None:
        if not self._cancelled:
            waiter._resume(None)

    def cancel(self, waiter: _Waiter) -> None:
        self._cancelled = True
        if self._handle is not None:
            self._handle.cancel()


class SimEvent:
    """A one-shot condition tasks can wait on.

    ``trigger(value)`` wakes every waiter (and all future waiters
    immediately); ``fail(exc)`` propagates an exception instead.
    """

    __slots__ = ("sim", "_value", "_exc", "_fired", "_waiters", "name")

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._fired = False
        self._waiters: List[_Waiter] = []

    @property
    def fired(self) -> bool:
        return self._fired

    def trigger(self, value: Any = None) -> None:
        if self._fired:
            raise SimError(f"event {self.name!r} triggered twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        if len(waiters) > 1:
            self.sim.schedule_many(
                0.0, [(waiter._resume, (value,)) for waiter in waiters]
            )
        else:
            for waiter in waiters:
                self.sim.defer(waiter._resume, value)

    def fail(self, exc: BaseException) -> None:
        if self._fired:
            raise SimError(f"event {self.name!r} triggered twice")
        self._fired = True
        self._exc = exc
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self.sim.defer(waiter._throw, exc)

    def wait(self) -> "_EventWait":
        return _EventWait(self)


class _EventWait(Effect):
    def __init__(self, event: SimEvent):
        self.event = event

    def bind(self, waiter: _Waiter) -> None:
        if self.event._fired:
            if self.event._exc is not None:
                waiter.sim.defer(waiter._throw, self.event._exc)
            else:
                waiter.sim.defer(waiter._resume, self.event._value)
        else:
            self.event._waiters.append(waiter)

    def cancel(self, waiter: _Waiter) -> None:
        try:
            self.event._waiters.remove(waiter)
        except ValueError:
            pass


class _Join(Effect):
    def __init__(self, task: "Task"):
        self.task = task

    def bind(self, waiter: _Waiter) -> None:
        task = self.task
        if task.done:
            if task.exception is not None:
                waiter.sim.defer(
                    waiter._throw, TaskFailed(task.name, task.exception)
                )
            else:
                waiter.sim.defer(waiter._resume, task.result)
        else:
            task._joiners.append(waiter)

    def cancel(self, waiter: _Waiter) -> None:
        try:
            self.task._joiners.remove(waiter)
        except ValueError:
            pass


class Task(_Waiter):
    """A generator coroutine scheduled on a simulator.

    States: created -> running <-> waiting -> done/failed.  A task is
    ``daemon`` if its failure should be fatal to the whole run even when
    nobody joins it (the default); pass ``daemon=True`` for background
    loops whose interruption at end-of-run is expected.
    """

    __slots__ = (
        "sim", "name", "daemon", "_gen", "_factory", "_pending", "_joiners",
        "done", "result", "exception", "_interrupt_pending",
    )

    def __init__(
        self,
        sim: Simulator,
        gen: TaskGen,
        name: str = "task",
        daemon: bool = False,
        factory: Optional[Callable[[], TaskGen]] = None,
    ):
        if not hasattr(gen, "send"):
            raise TypeError(
                f"Task needs a generator, got {type(gen).__name__}; "
                "did you forget to call the coroutine function?"
            )
        self.sim = sim
        self.name = name
        self.daemon = daemon
        self._gen = gen
        #: Zero-argument callable that recreates ``gen`` from scratch.
        #: A task whose generator has not started yet and that carries a
        #: factory can be serialized by ``repro.snapshot`` — the
        #: generator itself cannot be pickled, but "call the factory
        #: again on restore" is equivalent for an unstarted task.
        self._factory = factory
        self._pending: Optional[Effect] = None
        self._joiners: List[_Waiter] = []
        self.done = False
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._interrupt_pending: Optional[Interrupted] = None
        sim.live_tasks += 1
        sim.defer(self._resume, None)

    def __repr__(self) -> str:
        state = "done" if self.done else ("waiting" if self._pending else "ready")
        return f"<Task {self.name} {state}>"

    # -- snapshot support ------------------------------------------------
    def __getstate__(self) -> dict:
        if not self.done:
            if not inspect.isgenerator(self._gen):
                raise SnapshotError(
                    f"task {self.name!r} wraps a non-generator coroutine "
                    f"({type(self._gen).__name__}); it cannot be snapshot"
                )
            if inspect.getgeneratorstate(self._gen) != "GEN_CREATED":
                raise SnapshotError(
                    f"task {self.name!r} has already started running; only "
                    "unstarted (or finished) tasks can be snapshot — take "
                    "the snapshot before driving the simulator"
                )
            if self._factory is None:
                raise SnapshotError(
                    f"task {self.name!r} was spawned from a bare generator; "
                    "spawn it from a coroutine function (spawn(sim, fn) "
                    "instead of spawn(sim, fn())) so a snapshot can rebuild "
                    "the generator"
                )
        state = {slot: getattr(self, slot) for slot in Task.__slots__}
        # Generators never pickle; the factory stands in for an unstarted
        # one and a finished task's generator is already closed.
        state["_gen"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        if not self.done:
            self._gen = self._factory()

    # -- waiter protocol -------------------------------------------------
    def _resume(self, value: Any) -> None:
        if self.done:
            return
        self._pending = None
        if self._interrupt_pending is not None:
            exc, self._interrupt_pending = self._interrupt_pending, None
            self._step(exc=exc)
        else:
            self._step(value=value)

    def _throw(self, exc: BaseException) -> None:
        if self.done:
            return
        self._pending = None
        self._step(exc=exc)

    def _sleep_fire(self, effect: "Sleep") -> None:
        # Wakeup target for the inline Sleep(0) path in _step: a merged
        # Sleep._fire + Task._resume with one less call per resume.
        if effect._cancelled or self.done:
            return
        self._pending = None
        if self._interrupt_pending is not None:
            exc, self._interrupt_pending = self._interrupt_pending, None
            self._step(exc=exc)
        else:
            self._step(None)

    # -- execution ---------------------------------------------------------
    def _step(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        try:
            if exc is not None:
                effect = self._gen.throw(exc)
            else:
                effect = self._gen.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
        except Interrupted as interrupted:
            # An uncaught interrupt is a normal way to kill a task.
            self._finish(interrupt=interrupted)
        except BaseException as error:  # noqa: BLE001 - must capture task failure
            self._finish(error=error)
        else:
            # Sleep is by far the most-yielded effect; binding it inline
            # (rather than through Effect.bind) keeps the resume loop to
            # a minimum of Python calls.
            if effect.__class__ is Sleep:
                self._pending = effect
                sim = self.sim
                if effect.delay == 0.0:
                    sim._ready.append(
                        (sim.now, next(sim._seq), None, self._sleep_fire, (effect,))
                    )
                else:
                    effect._handle = sim.schedule(
                        effect.delay, self._resume, None
                    )
                return
            if not isinstance(effect, Effect):
                self._finish(
                    error=TypeError(
                        f"task {self.name!r} yielded {effect!r}, not an Effect"
                    )
                )
                return
            self._pending = effect
            effect.bind(self)

    def _finish(
        self,
        result: Any = None,
        error: Optional[BaseException] = None,
        interrupt: Optional[Interrupted] = None,
    ) -> None:
        self.done = True
        self.sim.live_tasks -= 1
        self._gen.close()
        if interrupt is not None:
            # Dying from an interrupt is not a failure; joiners see the
            # interrupt cause as the result.
            self.result = interrupt.cause
            joiners, self._joiners = self._joiners, []
            for joiner in joiners:
                self.sim.defer(joiner._resume, self.result)
            return
        self.exception = error
        self.result = result
        joiners, self._joiners = self._joiners, []
        if error is not None:
            if joiners:
                for joiner in joiners:
                    self.sim.defer(joiner._throw, TaskFailed(self.name, error))
            elif not self.daemon:
                self.sim.failures.append(error)
        else:
            for joiner in joiners:
                self.sim.defer(joiner._resume, result)

    # -- public API ----------------------------------------------------
    def join(self) -> Effect:
        """Effect that waits for this task to finish and yields its result."""
        return _Join(self)

    def interrupt(self, cause: object = None) -> bool:
        """Throw :class:`Interrupted` into the task at the current instant.

        Returns False if the task had already finished.  If the task is
        mid-step (interrupting itself), the interrupt is delivered at its
        next suspension point.
        """
        if self.done:
            return False
        if self._pending is not None:
            pending, self._pending = self._pending, None
            pending.cancel(self)
            self.sim.defer(self._throw, Interrupted(cause))
        else:
            # Task is currently executing or already queued to resume:
            # flag the interrupt for delivery at the next suspension.
            self._interrupt_pending = Interrupted(cause)
        return True

    def kill(self) -> bool:
        """Interrupt with no cause; the task dies unless it catches it."""
        return self.interrupt(cause=None)

    def abort(self, cause: object = None) -> bool:
        """Terminate the task *without resuming it*.

        Unlike :meth:`interrupt`, the generator never runs again: no
        ``except Interrupted`` handler fires, only ``finally`` blocks
        (via generator close).  This models losing power mid-instruction
        — a crashed host's processes must not execute exit bookkeeping.
        Joiners are resumed with ``cause``, as for an uncaught
        interrupt.  Returns False if the task had already finished.
        """
        if self.done:
            return False
        pending, self._pending = self._pending, None
        if pending is not None:
            pending.cancel(self)
        self._interrupt_pending = None
        self._finish(interrupt=Interrupted(cause))
        return True


def spawn(
    sim: Simulator,
    gen: Any,
    name: str = "task",
    daemon: bool = False,
) -> Task:
    """Create and start a task (sugar for the :class:`Task` constructor).

    ``gen`` is either an already-created generator (the classic form) or
    a zero-argument coroutine *function*, which is called here and kept
    as the task's restart factory.  Prefer the function form for daemons
    that exist before the simulator first runs: it is what lets
    ``repro.snapshot`` capture and rebuild them.
    """
    factory = None
    if callable(gen) and not hasattr(gen, "send"):
        factory = gen
        gen = gen()
    return Task(sim, gen, name=name, daemon=daemon, factory=factory)


def run_until_complete(sim: Simulator, gen_or_task: Any, name: str = "main") -> Any:
    """Drive the simulator until the given task finishes; return its result.

    Accepts a generator (spawned here) or an existing :class:`Task`.
    Daemon tasks with periodic timers do not stall this, unlike
    ``run_until_idle``.  Raises the task's exception on failure.
    """
    task = gen_or_task
    if not isinstance(task, Task):
        task = spawn(sim, gen_or_task, name=name)
    while not task.done:
        if not sim.step():
            raise SimError(
                f"event queue drained before task {task.name!r} completed"
            )
    if task.exception is not None:
        raise task.exception
    return task.result


class _FirstProxy(_Waiter):
    """Child waiter used by :func:`first` to multiplex effects."""

    def __init__(self, parent: "_First", index: int):
        self.parent = parent
        self.sim = parent.sim
        self.index = index

    def _resume(self, value: Any) -> None:
        self.parent._child_fired(self.index, value=value)

    def _throw(self, exc: BaseException) -> None:
        self.parent._child_fired(self.index, exc=exc)


class _First(Effect):
    def __init__(self, effects: List[Effect]):
        if not effects:
            raise ValueError("first() needs at least one effect")
        self.effects = effects
        self.sim: Optional[Simulator] = None
        self._waiter: Optional[_Waiter] = None
        self._proxies: List[_FirstProxy] = []
        self._settled = False

    def bind(self, waiter: _Waiter) -> None:
        self.sim = waiter.sim
        self._waiter = waiter
        self._proxies = [_FirstProxy(self, i) for i in range(len(self.effects))]
        for effect, proxy in zip(self.effects, self._proxies):
            effect.bind(proxy)
            if self._settled:
                break

    def cancel(self, waiter: _Waiter) -> None:
        self._settled = True
        for effect, proxy in zip(self.effects, self._proxies):
            effect.cancel(proxy)

    def _child_fired(
        self, index: int, value: Any = None, exc: Optional[BaseException] = None
    ) -> None:
        if self._settled:
            return
        self._settled = True
        for i, (effect, proxy) in enumerate(zip(self.effects, self._proxies)):
            if i != index:
                effect.cancel(proxy)
        assert self._waiter is not None
        if exc is not None:
            self._waiter._throw(exc)
        else:
            self._waiter._resume((index, value))


def first(*effects: Effect) -> Effect:
    """Wait for whichever effect fires first.

    Resumes with ``(index, value)`` of the winner; the losers are
    cancelled.  The race is settled at most once.
    """
    return _First(list(effects))


class _AllOfProxy(_Waiter):
    def __init__(self, parent: "_AllOf", index: int):
        self.parent = parent
        self.sim = parent.sim
        self.index = index

    def _resume(self, value: Any) -> None:
        self.parent._child_done(self.index, value=value)

    def _throw(self, exc: BaseException) -> None:
        self.parent._child_done(self.index, exc=exc)


class _AllOf(Effect):
    def __init__(self, effects: List[Effect]):
        if not effects:
            raise ValueError("all_of() needs at least one effect")
        self.effects = effects
        self.sim: Optional[Simulator] = None
        self._waiter: Optional[_Waiter] = None
        self._results: List[Any] = [None] * len(effects)
        self._remaining = len(effects)
        self._failed = False
        self._proxies: List[_AllOfProxy] = []

    def bind(self, waiter: _Waiter) -> None:
        self.sim = waiter.sim
        self._waiter = waiter
        self._proxies = [_AllOfProxy(self, i) for i in range(len(self.effects))]
        for effect, proxy in zip(self.effects, self._proxies):
            effect.bind(proxy)

    def cancel(self, waiter: _Waiter) -> None:
        self._failed = True
        for effect, proxy in zip(self.effects, self._proxies):
            effect.cancel(proxy)

    def _child_done(
        self, index: int, value: Any = None, exc: Optional[BaseException] = None
    ) -> None:
        if self._failed:
            return
        if exc is not None:
            self._failed = True
            for i, (effect, proxy) in enumerate(zip(self.effects, self._proxies)):
                if i != index:
                    effect.cancel(proxy)
            assert self._waiter is not None
            self._waiter._throw(exc)
            return
        self._results[index] = value
        self._remaining -= 1
        if self._remaining == 0:
            assert self._waiter is not None
            self._waiter._resume(list(self._results))


def all_of(*effects: Effect) -> Effect:
    """Wait for every effect; resumes with their results in order.

    The first failure cancels the rest and propagates (fail-fast
    gather).  Complements :func:`first`.
    """
    return _AllOf(list(effects))


#: Sentinel returned by :func:`with_timeout` when the deadline won.
TIMED_OUT = object()


def with_timeout(effect: Effect, timeout: float) -> TaskGen:
    """``yield from with_timeout(eff, t)`` — result of ``eff`` or TIMED_OUT."""
    index, value = yield first(effect, Sleep(timeout))
    return TIMED_OUT if index == 1 else value
