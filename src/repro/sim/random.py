"""Deterministic random streams.

Every stochastic component draws from a named substream derived from one
root seed, so adding a new component never perturbs the draws seen by
existing ones — runs stay reproducible and comparable across variants.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent, named ``numpy`` generators."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The substream seed mixes the root seed with a CRC of the name,
        so distinct names give independent streams and the same name
        always gives the same stream.
        """
        gen = self._streams.get(name)
        if gen is None:
            sub_seed = (self.seed << 32) ^ zlib.crc32(name.encode("utf-8"))
            gen = np.random.default_rng(sub_seed)
            self._streams[name] = gen
        return gen

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
