"""Contended resources: counting semaphores and processor-sharing CPUs."""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, Optional

from .engine import Simulator
from .tasks import Effect, Sleep, _Waiter

__all__ = ["Resource", "Cpu"]


class Resource:
    """A counting semaphore with FIFO queueing.

    ``yield resource.acquire()`` blocks until a unit is free; pair it
    with ``resource.release()`` in a ``try/finally``.  For the common
    hold-for-a-duration pattern use :meth:`hold`.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._queue: Deque[_Waiter] = deque()
        #: Cumulative (units x seconds) of busy time, for utilization metrics.
        self.busy_time = 0.0
        self._last_change = 0.0
        # _Acquire keeps no per-wait state (the waiter itself is the
        # queue entry), so one shared instance serves every acquire.
        self._acquire = _Acquire(self)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def acquire(self) -> Effect:
        return self._acquire

    def release(self) -> None:
        self._account()
        if self._queue:
            waiter = self._queue.popleft()
            self.sim.defer(waiter._resume, None)
        else:
            if self.in_use <= 0:
                # double-release is a bug in simulation code, and this
                # path is reachable from RPC handlers (exception-flow):
                # use a programmer-error builtin that crashes loudly
                # rather than punching past `except RpcError`.
                raise ValueError(f"resource {self.name!r} released when free")
            self.in_use -= 1

    def hold(self, duration: float) -> Generator[Effect, None, None]:
        """``yield from resource.hold(dt)`` — acquire, sleep, release."""
        yield self.acquire()
        try:
            yield Sleep(duration)
        finally:
            self.release()

    def utilization(self, now: Optional[float] = None) -> float:
        """Mean fraction of capacity busy since the start of the run."""
        now = self.sim.now if now is None else now
        busy = self.busy_time + self.in_use * (now - self._last_change)
        return busy / (self.capacity * now) if now > 0 else 0.0

    def _account(self) -> None:
        now = self.sim.now
        self.busy_time += self.in_use * (now - self._last_change)
        self._last_change = now


class _Acquire(Effect):
    def __init__(self, resource: Resource):
        self.resource = resource

    def bind(self, waiter: _Waiter) -> None:
        res = self.resource
        if res.in_use < res.capacity and not res._queue:
            res._account()
            res.in_use += 1
            waiter.sim.defer(waiter._resume, None)
        else:
            res._queue.append(waiter)

    def cancel(self, waiter: _Waiter) -> None:
        try:
            self.resource._queue.remove(waiter)
        except ValueError:
            pass


class Cpu:
    """A round-robin scheduled processor.

    ``yield from cpu.consume(t)`` charges ``t`` seconds of CPU demand;
    with *n* runnable consumers each gets roughly a ``1/n`` share, as on
    a timeslicing uniprocessor.  The quantum bounds both fairness
    granularity and event overhead.
    """

    def __init__(
        self,
        sim: Simulator,
        quantum: float = 0.01,
        speed: float = 1.0,
        name: str = "cpu",
    ):
        if speed <= 0:
            raise ValueError("cpu speed must be positive")
        self.sim = sim
        self.quantum = quantum
        #: Relative speed: demand is divided by this, so a speed-2 CPU
        #: finishes the same work in half the simulated time.
        self.speed = speed
        self.name = name
        #: The single core; public so schedulers with their own slicing
        #: discipline (e.g. interruptible process compute loops) can
        #: contend on it directly.
        self.core = Resource(sim, capacity=1, name=name)
        #: Number of consumers currently inside consume(); the model
        #: kernel samples this for its load average.
        self.runnable = 0
        self.total_demand = 0.0

    def consume(self, demand: float) -> Generator[Effect, None, None]:
        """Charge ``demand`` CPU-seconds, sharing the core fairly."""
        if demand < 0:
            raise ValueError(f"negative CPU demand: {demand}")
        self.total_demand += demand
        remaining = demand / self.speed
        self.runnable += 1
        try:
            while remaining > 1e-12:
                slice_len = min(self.quantum, remaining)
                yield self.core.acquire()
                try:
                    yield Sleep(slice_len)
                finally:
                    self.core.release()
                remaining -= slice_len
        finally:
            self.runnable -= 1

    def utilization(self) -> float:
        return self.core.utilization()
