"""Per-run mutable state registry.

Every piece of mutable state that belongs to *one simulated run* — id
allocators, sequence counters, scratch cells — must live on the run's
:class:`StateRegistry` (reachable as ``sim.state``) rather than at
module level.  Module-level state leaks across clusters built in the
same process (PR 4 had to reset the stream-id counter by hand to keep
crash-matrix traces byte-identical) and is invisible to
:mod:`repro.snapshot`, which can only capture what hangs off the
cluster object graph.  The ``module-state`` lint rule
(:mod:`repro.analysis.rules_state`) enforces this discipline
statically.

Usage::

    ids = sim.state.counter("fs.stream_ids")   # get-or-create
    stream_id = next(ids)

Registry entries are keyed by dotted names namespaced per subsystem
(``fs.*``, ``baselines.*``, ...); asking twice for the same name
returns the same object, so independent components share one allocator
simply by naming it.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["Cell", "Counter", "StateRegistry"]


class Counter:
    """A picklable, restartable integer allocator (replaces
    ``itertools.count`` for id allocation: same protocol, but its value
    is inspectable and survives snapshot/fork)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, start: int = 1):
        self.name = name
        self.value = start

    def __iter__(self) -> "Counter":
        return self

    def __next__(self) -> int:
        value = self.value
        self.value += 1
        return value

    def peek(self) -> int:
        """The id the next ``next()`` will hand out."""
        return self.value

    def __repr__(self) -> str:
        return f"<Counter {self.name} next={self.value}>"


class Cell:
    """A named box around one mutable value (scalar or container)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Any = None):
        self.name = name
        self.value = value

    def __repr__(self) -> str:
        return f"<Cell {self.name} value={self.value!r}>"


class StateRegistry:
    """All run-scoped mutable state, by name; one per :class:`Simulator`.

    The registry is deliberately dumb — a dict of named
    :class:`Counter`/:class:`Cell` entries — so that pickling the
    simulator captures every registered piece of state with no
    per-subsystem special cases.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[str, Any] = {}

    def counter(self, name: str, start: int = 1) -> Counter:
        """Get-or-create the named counter (``start`` applies on create)."""
        entry = self._entries.get(name)
        if entry is None:
            entry = Counter(name, start=start)
            self._entries[name] = entry
        elif not isinstance(entry, Counter):
            raise TypeError(
                f"state entry {name!r} is {type(entry).__name__}, not Counter"
            )
        return entry

    def cell(self, name: str, value: Any = None) -> Cell:
        """Get-or-create the named cell (``value`` applies on create)."""
        entry = self._entries.get(name)
        if entry is None:
            entry = Cell(name, value=value)
            self._entries[name] = entry
        elif not isinstance(entry, Cell):
            raise TypeError(
                f"state entry {name!r} is {type(entry).__name__}, not Cell"
            )
        return entry

    def get(self, name: str) -> Any:
        return self._entries[name]

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"<StateRegistry {self.names()}>"
