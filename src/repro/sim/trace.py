"""Structured event tracing.

Components emit ``(time, source, kind, detail)`` records to a shared
:class:`Tracer`.  Tests assert on traces; benchmarks aggregate them; the
examples print them.  Tracing is off by default and costs one predicate
check per emit when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:12.6f}] {self.source:<20} {self.kind:<24} {parts}"


class Tracer:
    """Collects trace records, optionally filtered by kind."""

    def __init__(self, enabled: bool = False, kinds: Optional[List[str]] = None):
        self.enabled = enabled
        self.kinds = set(kinds) if kinds else None
        self.records: List[TraceRecord] = []
        #: Optional sink called with each record as it is emitted
        #: (e.g. ``print`` for live example output).
        self.sink: Optional[Callable[[TraceRecord], None]] = None

    def emit(self, time: float, source: str, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        record = TraceRecord(time, source, kind, detail)
        self.records.append(record)
        if self.sink is not None:
            self.sink(record)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def between(self, start: float, end: float) -> Iterator[TraceRecord]:
        return (r for r in self.records if start <= r.time <= end)

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
