"""Structured event tracing.

Components emit ``(time, source, kind, detail)`` records to a shared
:class:`Tracer`.  Tests assert on traces; benchmarks aggregate them; the
examples print them.  Tracing is off by default and costs one predicate
check per emit when disabled.

Higher-level observability (sim-time spans, metric registries, Chrome
trace export) lives in :mod:`repro.obs`, layered on this flat record
stream; the tracer itself stays allocation-free when disabled.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Any, Callable, Dict, List, Optional

__all__ = ["TraceRecord", "Tracer"]

_TIME_OF = attrgetter("time")


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:12.6f}] {self.source:<20} {self.kind:<24} {parts}"


class Tracer:
    """Collects trace records, optionally filtered by kind.

    Filter semantics
    ----------------
    When ``kinds`` is set, the filter is applied **at emit time**: a
    record whose kind is not in the set is dropped before it is stored
    *and* before the ``sink`` sees it — attaching a sink mid-run does
    not bypass the filter.  Consequently every query helper
    (:meth:`of_kind`, :meth:`between`, ``len``) operates on the
    *retained* records only; ask :meth:`accepts` to distinguish "no
    such events happened" from "that kind is filtered out".
    """

    def __init__(self, enabled: bool = False, kinds: Optional[List[str]] = None):
        self.enabled = enabled
        self.kinds = set(kinds) if kinds else None
        self.records: List[TraceRecord] = []
        #: Optional sink called with each *retained* record as it is
        #: emitted (e.g. ``print`` for live example output).  Records
        #: dropped by the ``kinds`` filter never reach the sink.
        self.sink: Optional[Callable[[TraceRecord], None]] = None

    def accepts(self, kind: str) -> bool:
        """Would a record of ``kind`` be retained by this tracer?"""
        return self.kinds is None or kind in self.kinds

    def emit(self, time: float, source: str, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        record = TraceRecord(time, source, kind, detail)
        self.records.append(record)
        if self.sink is not None:
            self.sink(record)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """Retained records of ``kind`` (always empty for filtered kinds)."""
        return [r for r in self.records if r.kind == kind]

    def between(self, start: float, end: float) -> List[TraceRecord]:
        """Retained records with ``start <= time <= end`` (inclusive).

        Emit order is monotone in simulated time (components always
        stamp records with the simulator's current clock), so
        ``records`` is time-sorted and this is a binary search plus a
        slice rather than a full scan.
        """
        records = self.records
        lo = bisect_left(records, start, key=_TIME_OF)
        hi = bisect_right(records, end, key=_TIME_OF)
        return records[lo:hi]

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
