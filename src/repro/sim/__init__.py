"""Deterministic discrete-event simulation kernel.

This package is the substrate for the whole reproduction: a clock and
event queue (:mod:`.engine`), generator-coroutine tasks and effects
(:mod:`.tasks`), channels (:mod:`.channels`), contended resources and a
round-robin CPU model (:mod:`.resources`), named random substreams
(:mod:`.random`), and structured tracing (:mod:`.trace`).
"""

from .channels import Channel
from .engine import EventHandle, SimClock, Simulator
from .errors import (
    ChannelClosed,
    Interrupted,
    SimError,
    SimulationDeadlock,
    SnapshotError,
    TaskFailed,
)
from .random import RandomStreams
from .resources import Cpu, Resource
from .state import Cell, Counter, StateRegistry
from .tasks import (
    TIMED_OUT,
    Effect,
    all_of,
    SimEvent,
    Sleep,
    Task,
    first,
    run_until_complete,
    spawn,
    with_timeout,
)
from .trace import TraceRecord, Tracer

__all__ = [
    "Cell",
    "Channel",
    "ChannelClosed",
    "Counter",
    "Cpu",
    "Effect",
    "EventHandle",
    "Interrupted",
    "RandomStreams",
    "Resource",
    "SimClock",
    "SimError",
    "SimEvent",
    "SimulationDeadlock",
    "Simulator",
    "Sleep",
    "SnapshotError",
    "StateRegistry",
    "Task",
    "TaskFailed",
    "TIMED_OUT",
    "TraceRecord",
    "Tracer",
    "all_of",
    "first",
    "run_until_complete",
    "spawn",
    "with_timeout",
]
