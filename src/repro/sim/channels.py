"""Bounded FIFO channels for task-to-task message passing."""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Tuple

from .engine import Simulator
from .errors import ChannelClosed
from .tasks import Effect, _Waiter

__all__ = ["Channel"]


class Channel:
    """A FIFO queue with blocking ``get`` and (optionally) ``put``.

    * ``capacity`` bounds the number of buffered items; ``put`` blocks
      when full.  The default is unbounded.
    * ``close()`` wakes blocked getters with :class:`ChannelClosed` once
      the buffer drains, and makes further ``put`` raise immediately.
    """

    def __init__(self, sim: Simulator, capacity: float = math.inf, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[_Waiter] = deque()
        self._putters: Deque[Tuple[_Waiter, Any]] = deque()
        self._closed = False
        # _Get keeps no per-wait state (the waiter itself is the queue
        # entry), so one shared instance serves every get.
        self._get = _Get(self)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    def put(self, item: Any) -> Effect:
        """Effect that enqueues ``item``, blocking while the buffer is full."""
        return _Put(self, item)

    def get(self) -> Effect:
        """Effect that dequeues the next item, blocking while empty."""
        return self._get

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when full instead of blocking."""
        if self._closed:
            raise ChannelClosed(f"channel {self.name!r} is closed")
        if self._getters:
            getter = self._getters.popleft()
            self.sim.defer(getter._resume, item)
            return True
        if len(self._items) < self.capacity:
            self._items.append(item)
            return True
        return False

    def try_put_batch(self, item: Any, wakeups: list) -> bool:
        """Like :meth:`try_put`, but collect the getter wakeup into ``wakeups``.

        Bulk senders (LAN broadcast) deliver to many channels at one
        instant: each call appends at most one ``(fn, args)`` pair, and
        the caller flushes them with a single
        ``sim.schedule_many(0.0, wakeups)``.  As long as nothing else is
        scheduled between the first call and the flush, the wakeup order
        is identical to per-channel :meth:`try_put`.
        """
        if self._closed:
            raise ChannelClosed(f"channel {self.name!r} is closed")
        if self._getters:
            getter = self._getters.popleft()
            wakeups.append((getter._resume, (item,)))
            return True
        if len(self._items) < self.capacity:
            self._items.append(item)
            return True
        return False

    def try_get(self) -> Tuple[bool, Any]:
        """Non-blocking get; returns ``(ok, item)``."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def close(self) -> None:
        self._closed = True
        for waiter, _item in self._putters:
            self.sim.defer(
                waiter._throw, ChannelClosed(f"channel {self.name!r} is closed")
            )
        self._putters.clear()
        if not self._items:
            self._drain_getters()

    # ------------------------------------------------------------------
    def _admit_putter(self) -> None:
        if self._putters and len(self._items) < self.capacity:
            waiter, item = self._putters.popleft()
            self._items.append(item)
            self.sim.defer(waiter._resume, None)
        if self._closed and not self._items:
            self._drain_getters()

    def _drain_getters(self) -> None:
        if self._getters:
            error = ChannelClosed(f"channel {self.name!r} is closed")
            self.sim.schedule_many(
                0.0, [(getter._throw, (error,)) for getter in self._getters]
            )
            self._getters.clear()


class _Put(Effect):
    def __init__(self, channel: Channel, item: Any):
        self.channel = channel
        self.item = item

    def bind(self, waiter: _Waiter) -> None:
        ch = self.channel
        if ch._closed:
            waiter.sim.defer(
                waiter._throw, ChannelClosed(f"channel {ch.name!r} is closed")
            )
            return
        if ch._getters:
            getter = ch._getters.popleft()
            waiter.sim.defer(getter._resume, self.item)
            waiter.sim.defer(waiter._resume, None)
        elif len(ch._items) < ch.capacity:
            ch._items.append(self.item)
            waiter.sim.defer(waiter._resume, None)
        else:
            ch._putters.append((waiter, self.item))

    def cancel(self, waiter: _Waiter) -> None:
        ch = self.channel
        ch._putters = deque(
            (w, item) for (w, item) in ch._putters if w is not waiter
        )


class _Get(Effect):
    def __init__(self, channel: Channel):
        self.channel = channel

    def bind(self, waiter: _Waiter) -> None:
        ch = self.channel
        if ch._items:
            item = ch._items.popleft()
            ch._admit_putter()
            waiter.sim.defer(waiter._resume, item)
        elif ch._closed:
            waiter.sim.defer(
                waiter._throw, ChannelClosed(f"channel {ch.name!r} is closed")
            )
        else:
            ch._getters.append(waiter)

    def cancel(self, waiter: _Waiter) -> None:
        ch = self.channel
        try:
            ch._getters.remove(waiter)
        except ValueError:
            pass
