"""Exception types raised by the discrete-event simulation kernel."""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulation-level errors."""


class SimulationDeadlock(SimError):
    """Raised by :meth:`Simulator.run` when tasks remain but no events do.

    A deadlock means at least one task is blocked on an effect (channel
    get, resource acquire, event wait) that can never fire because the
    event queue has drained.  This is almost always a modelling bug, so
    it is surfaced loudly instead of silently ending the run.
    """


class Interrupted(SimError):
    """Raised inside a task that another task interrupted.

    The interrupting party may attach an arbitrary ``cause`` describing
    why (e.g. a signal, an eviction notice).  Tasks that expect to be
    interrupted catch this and inspect ``cause``.
    """

    def __init__(self, cause: object = None):
        super().__init__(f"task interrupted (cause={cause!r})")
        self.cause = cause


class TaskFailed(SimError):
    """Raised when joining a task that terminated with an exception."""

    def __init__(self, task_name: str, original: BaseException):
        super().__init__(f"task {task_name!r} failed: {original!r}")
        self.original = original


class ChannelClosed(SimError):
    """Raised on ``put`` to, or ``get`` from, a closed and drained channel."""


class SnapshotError(SimError):
    """Raised when run state cannot be captured by ``repro.snapshot``.

    The message names the offending object (typically a task whose
    generator has already started, or one spawned from a bare generator
    with no restart factory) and how to make it snapshotable.
    """
