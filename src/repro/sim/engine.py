"""Discrete-event simulation core: the clock and the event queue.

The :class:`Simulator` owns simulated time.  Everything else in the
library — network transfers, kernel scheduling, file-system delays — is
expressed as callbacks scheduled at future instants on one simulator.

Design notes
------------

* Time is a ``float`` in simulated seconds starting at 0.0.
* Events scheduled for the same instant fire in FIFO order (a strictly
  increasing sequence number breaks ties), which keeps runs
  deterministic for a fixed seed.
* Cancellation is O(1): a cancelled handle stays in the heap but is
  skipped when popped.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from .errors import SimulationDeadlock

__all__ = ["Simulator", "EventHandle"]


class EventHandle:
    """A cancellable reference to one scheduled callback."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable[..., None], args: Tuple[Any, ...]):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self.cancelled = True
        # Drop references eagerly so cancelled closures don't pin objects
        # for the rest of the run.
        self.fn = _noop
        self.args = ()


def _noop(*_args: Any) -> None:
    pass


class Simulator:
    """An event-driven clock.

    Typical use goes through :class:`repro.sim.tasks.Task` coroutines
    rather than raw callbacks, but the callback layer is public for the
    rare component (e.g. the load-average sampler) that wants it.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._running = False
        #: Exceptions raised by detached tasks; populated by tasks.py and
        #: re-raised by :meth:`run` so failures never pass silently.
        self.failures: List[BaseException] = []
        #: Number of live (unfinished) tasks; maintained by tasks.py so
        #: that :meth:`run` can detect deadlock.
        self.live_tasks: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        handle = EventHandle(self.now + delay, fn, args)
        heapq.heappush(self._heap, (handle.time, next(self._seq), handle))
        return handle

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute simulated ``time``."""
        return self.schedule(time - self.now, fn, *args)

    def call_soon(self, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at the current instant, after pending events."""
        return self.schedule(0.0, fn, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        while self._heap:
            time, _seq, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = time
            handle.fn(*handle.args)
            self._check_failures()
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue, optionally stopping at time ``until``.

        Returns the simulated time at which the run stopped.  Raises
        :class:`SimulationDeadlock` if live tasks remain when the queue
        drains before ``until`` (or drains entirely when no ``until``
        was given and tasks are still blocked).
        """
        if self._running:
            raise RuntimeError("Simulator.run is not reentrant")
        self._running = True
        try:
            while self._heap:
                peek_time = self._next_event_time()
                if until is not None and peek_time is not None and peek_time > until:
                    self.now = until
                    return self.now
                if not self.step():
                    break
            if until is not None:
                self.now = max(self.now, until)
            elif self.live_tasks > 0:
                raise SimulationDeadlock(
                    f"event queue drained with {self.live_tasks} task(s) still blocked"
                )
            return self.now
        finally:
            self._running = False

    def run_until_idle(self) -> float:
        """Drain the queue without treating blocked tasks as an error.

        Useful for driving open-ended server simulations where daemons
        legitimately block forever waiting for requests.
        """
        while self.step():
            pass
        return self.now

    def _next_event_time(self) -> Optional[float]:
        while self._heap:
            time, _seq, handle = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            return time
        return None

    def _check_failures(self) -> None:
        if self.failures:
            failure = self.failures[0]
            self.failures = []
            raise failure

    @property
    def pending_events(self) -> int:
        """Number of uncancelled events still queued (O(n); for tests)."""
        return sum(1 for _t, _s, h in self._heap if not h.cancelled)
