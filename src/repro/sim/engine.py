"""Discrete-event simulation core: the clock and the event queue.

The :class:`Simulator` owns simulated time.  Everything else in the
library — network transfers, kernel scheduling, file-system delays — is
expressed as callbacks scheduled at future instants on one simulator.

Design notes
------------

* Time is a ``float`` in simulated seconds starting at 0.0.
* Events scheduled for the same instant fire in FIFO order (a strictly
  increasing sequence number breaks ties), which keeps runs
  deterministic for a fixed seed.
* Same-instant events (``delay == 0``: task resumptions, channel
  wakeups) bypass the heap entirely and travel through a FIFO *ready
  queue*.  Dispatch merges the two sources by ``(time, seq)``, so the
  global FIFO tie-break is byte-identical to an all-heap engine.
* Cancellation is O(1): a cancelled handle stays in its queue but is
  skipped when popped.  Cancelled-event counters keep
  :attr:`Simulator.pending_events` O(1) with no per-dispatch
  bookkeeping, and when more than half the heap is cancelled corpses
  the heap is compacted in place (same ``(time, seq)`` keys, so
  ordering is unaffected) — long runs with heavy timeout churn stay
  bounded in memory.
* :meth:`Simulator.defer` is the allocation-free fast path for wakeups
  that are never cancelled; :meth:`Simulator.schedule_many` amortizes
  bulk fan-out (broadcast delivery, batched periodic ticks).

Invariants a future C-accelerated queue must keep are documented in
``docs/architecture.md`` ("Event-loop fast paths").
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Deque, Iterable, List, Optional, Tuple

from .errors import SimulationDeadlock
from .state import StateRegistry

__all__ = ["SimClock", "Simulator", "EventHandle"]

#: Compaction is pointless below this heap size; above it, a heap more
#: than half full of cancelled corpses is rebuilt.
_COMPACT_MIN = 64


def _noop(*_args: Any) -> None:
    pass


class EventHandle:
    """A cancellable reference to one scheduled callback.

    ``sim`` doubles as the liveness marker: it is dropped when the event
    fires or is cancelled, so a late :meth:`cancel` after the callback
    ran never corrupts the simulator's event accounting.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "sim")

    def __init__(
        self,
        time: float,
        fn: Callable[..., None],
        args: Tuple[Any, ...],
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references eagerly so cancelled closures don't pin objects
        # for the rest of the run.
        self.fn = _noop
        self.args = ()
        sim = self.sim
        if sim is not None:
            self.sim = None
            sim._heap_handle_cancelled()


class _ReadyHandle(EventHandle):
    """Handle for a same-instant event parked on the ready queue."""

    __slots__ = ()

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        self.fn = _noop
        self.args = ()
        sim = self.sim
        if sim is not None:
            self.sim = None
            sim._ready_cancelled += 1


class SimClock:
    """A picklable callable reading one simulator's current time.

    Components that need a clock handle (e.g. the migration journal)
    hold one of these instead of a ``lambda: sim.now`` closure, which
    a snapshot could not serialize.
    """

    __slots__ = ("sim",)

    def __init__(self, sim: "Simulator"):
        self.sim = sim

    def __call__(self) -> float:
        return self.sim.now


class Simulator:
    """An event-driven clock.

    Typical use goes through :class:`repro.sim.tasks.Task` coroutines
    rather than raw callbacks, but the callback layer is public for the
    rare component (e.g. the load-average sampler) that wants it.
    """

    __slots__ = (
        "now",
        "_heap",
        "_ready",
        "_seq",
        "_running",
        "_heap_cancelled",
        "_ready_cancelled",
        "events_fired",
        "heap_compactions",
        "failures",
        "live_tasks",
        "state",
        "profiler",
    )

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, EventHandle]] = []
        #: Same-instant FIFO: entries are ``(time, seq, handle, fn, args)``
        #: with ``handle is None`` for the uncancellable ``defer`` path.
        self._ready: Deque[Tuple[float, int, Optional[EventHandle],
                                 Callable[..., None], Tuple[Any, ...]]] = deque()
        self._seq = itertools.count()
        self._running = False
        #: Cancelled-but-unpopped corpses per queue; queue length minus
        #: corpses is the live-event count (so scheduling and dispatch
        #: never touch a counter — only cancellation does).
        self._heap_cancelled = 0
        self._ready_cancelled = 0
        #: Total events dispatched; the benchmark harness reads this.
        self.events_fired = 0
        #: Times the heap was rebuilt to shed cancelled corpses.
        self.heap_compactions = 0
        #: Exceptions raised by detached tasks; populated by tasks.py and
        #: re-raised by :meth:`run` so failures never pass silently.
        #: Mutated in place (never rebound) so dispatch loops can alias it.
        self.failures: List[BaseException] = []
        #: Number of live (unfinished) tasks; maintained by tasks.py so
        #: that :meth:`run` can detect deadlock.
        self.live_tasks: int = 0
        #: Run-scoped mutable state (id allocators etc.); see
        #: :mod:`repro.sim.state`.  Snapshots capture it with the rest
        #: of the simulator.
        self.state = StateRegistry()
        #: Optional hot-spot profiler (:class:`repro.obs.profile.
        #: EngineProfiler`).  ``None`` by default; the dispatch loops
        #: test it once per entry (``run``) or per event (``step``), so
        #: an unprofiled run pays one load and one branch — the same
        #: cost model as the trace/span guards.
        self.profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        if delay == 0.0:
            now = self.now
            handle = _ReadyHandle(now, fn, args, self)
            self._ready.append((now, next(self._seq), handle, fn, args))
            return handle
        time = self.now + delay
        handle = EventHandle(time, fn, args, self)
        heapq.heappush(self._heap, (time, next(self._seq), handle))
        return handle

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute simulated ``time``."""
        return self.schedule(time - self.now, fn, *args)

    def call_soon(self, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at the current instant, after pending events."""
        now = self.now
        handle = _ReadyHandle(now, fn, args, self)
        self._ready.append((now, next(self._seq), handle, fn, args))
        return handle

    def defer(self, fn: Callable[..., None], *args: Any) -> None:
        """Like :meth:`call_soon` but with no handle: not cancellable.

        The hot path for task resumptions and channel/resource wakeups,
        which are guarded by their own state machines (``Task.done``,
        settled flags) and never cancel the scheduled callback itself.
        """
        self._ready.append((self.now, next(self._seq), None, fn, args))

    def schedule_many(
        self,
        delay: float,
        calls: Iterable[Tuple[Callable[..., None], Tuple[Any, ...]]],
    ) -> int:
        """Bulk-schedule ``(fn, args)`` pairs after ``delay`` seconds.

        Fire-and-forget (no handles are returned): broadcast fan-out and
        batched periodic ticks use this to amortize per-event costs.
        FIFO order of ``calls`` is preserved exactly as if each had been
        scheduled individually, so determinism is unaffected.  Returns
        the number of events scheduled.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        count = 0
        if delay == 0.0:
            now = self.now
            append = self._ready.append
            for fn, args in calls:
                append((now, next(seq), None, fn, args))
                count += 1
        else:
            time = self.now + delay
            heap = self._heap
            push = heapq.heappush
            for fn, args in calls:
                push(heap, (time, next(seq), EventHandle(time, fn, args, self)))
                count += 1
        return count

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        if self.profiler is not None:
            return self._step_profiled()
        ready = self._ready
        heap = self._heap
        while ready or heap:
            if ready:
                r = ready[0]
                if heap:
                    h = heap[0]
                    if h[0] < r[0] or (h[0] == r[0] and h[1] < r[1]):
                        heapq.heappop(heap)
                        handle = h[2]
                        if handle.cancelled:
                            self._heap_cancelled -= 1
                            continue
                        handle.sim = None
                        self.now = h[0]
                        self.events_fired += 1
                        handle.fn(*handle.args)
                        if self.failures:
                            self._raise_failure()
                        return True
                ready.popleft()
                handle = r[2]
                if handle is not None:
                    if handle.cancelled:
                        self._ready_cancelled -= 1
                        continue
                    handle.sim = None
                self.now = r[0]
                self.events_fired += 1
                r[3](*r[4])
                if self.failures:
                    self._raise_failure()
                return True
            h = heapq.heappop(heap)
            handle = h[2]
            if handle.cancelled:
                self._heap_cancelled -= 1
                continue
            handle.sim = None
            self.now = h[0]
            self.events_fired += 1
            handle.fn(*handle.args)
            if self.failures:
                self._raise_failure()
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue, optionally stopping at time ``until``.

        Returns the simulated time at which the run stopped.  Raises
        :class:`SimulationDeadlock` if live tasks remain when the queue
        drains before ``until`` (or drains entirely when no ``until``
        was given and tasks are still blocked).

        Each live event is popped exactly once per dispatch; cancelled
        heap corpses are discarded as they surface.
        """
        if self._running:
            raise RuntimeError("Simulator.run is not reentrant")
        if self.profiler is not None:
            return self._run_profiled(until)
        self._running = True
        fired = 0
        try:
            ready = self._ready
            heap = self._heap
            heappop = heapq.heappop
            failures = self.failures
            bounded = until is not None
            while True:
                if ready:
                    r = ready[0]
                    if heap:
                        h = heap[0]
                        if h[0] < r[0] or (h[0] == r[0] and h[1] < r[1]):
                            # A heap entry (or corpse) precedes the ready
                            # head; fall through to the heap branch.
                            handle = h[2]
                            if handle.cancelled:
                                heappop(heap)
                                self._heap_cancelled -= 1
                                continue
                            if bounded and h[0] > until:
                                break
                            heappop(heap)
                            handle.sim = None
                            self.now = h[0]
                            fired += 1
                            handle.fn(*handle.args)
                            if failures:
                                self._raise_failure()
                            continue
                    if bounded and r[0] > until:
                        break
                    ready.popleft()
                    handle = r[2]
                    if handle is not None:
                        if handle.cancelled:
                            self._ready_cancelled -= 1
                            continue
                        handle.sim = None
                    self.now = r[0]
                    fired += 1
                    r[3](*r[4])
                    if failures:
                        self._raise_failure()
                elif heap:
                    h = heap[0]
                    handle = h[2]
                    if handle.cancelled:
                        heappop(heap)
                        self._heap_cancelled -= 1
                        continue
                    if bounded and h[0] > until:
                        break
                    heappop(heap)
                    handle.sim = None
                    self.now = h[0]
                    fired += 1
                    handle.fn(*handle.args)
                    if failures:
                        self._raise_failure()
                else:
                    break
            if bounded:
                self.now = max(self.now, until)
            elif self.live_tasks > 0:
                raise SimulationDeadlock(
                    f"event queue drained with {self.live_tasks} task(s) still blocked"
                )
            return self.now
        finally:
            self.events_fired += fired
            self._running = False

    def run_until_idle(self) -> float:
        """Drain the queue without treating blocked tasks as an error.

        Useful for driving open-ended server simulations where daemons
        legitimately block forever waiting for requests.
        """
        while self.step():
            pass
        return self.now

    # ------------------------------------------------------------------
    # Profiled dispatch (cold twins of step()/run(); the hot loops above
    # stay branch-free apart from the single entry check)
    # ------------------------------------------------------------------
    def _peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when the queue is empty.

        Discards cancelled corpses from both queue heads as a side
        effect (exactly what dispatch would have done lazily).
        """
        ready = self._ready
        heap = self._heap
        while True:
            if ready:
                r = ready[0]
                handle = r[2]
                if handle is not None and handle.cancelled:
                    ready.popleft()
                    self._ready_cancelled -= 1
                    continue
                if heap:
                    h = heap[0]
                    if h[2].cancelled:
                        heapq.heappop(heap)
                        self._heap_cancelled -= 1
                        continue
                    if h[0] < r[0] or (h[0] == r[0] and h[1] < r[1]):
                        return h[0]
                return r[0]
            if heap:
                h = heap[0]
                if h[2].cancelled:
                    heapq.heappop(heap)
                    self._heap_cancelled -= 1
                    continue
                return h[0]
            return None

    def _dispatch_profiled(self) -> None:
        """Pop and fire the next event through :attr:`profiler`.

        Callers must have established via :meth:`_peek_time` that a live
        event exists (both queue heads are corpse-free).
        """
        ready = self._ready
        heap = self._heap
        use_heap = bool(heap)
        if ready:
            use_heap = False
            if heap:
                h = heap[0]
                r = ready[0]
                if h[0] < r[0] or (h[0] == r[0] and h[1] < r[1]):
                    use_heap = True
        if use_heap:
            h = heapq.heappop(heap)
            handle = h[2]
            handle.sim = None
            self.now = h[0]
            fn, args = handle.fn, handle.args
        else:
            r = ready.popleft()
            handle = r[2]
            if handle is not None:
                handle.sim = None
            self.now = r[0]
            fn, args = r[3], r[4]
        self.events_fired += 1
        self.profiler.dispatch(fn, args)
        if self.failures:
            self._raise_failure()

    def _step_profiled(self) -> bool:
        if self._peek_time() is None:
            return False
        self._dispatch_profiled()
        return True

    def _run_profiled(self, until: Optional[float]) -> float:
        """:meth:`run` with every dispatch routed through the profiler."""
        self._running = True
        try:
            bounded = until is not None
            while True:
                t = self._peek_time()
                if t is None:
                    break
                if bounded and t > until:
                    break
                self._dispatch_profiled()
            if bounded:
                self.now = max(self.now, until)
            elif self.live_tasks > 0:
                raise SimulationDeadlock(
                    f"event queue drained with {self.live_tasks} task(s) still blocked"
                )
            return self.now
        finally:
            self._running = False

    def _raise_failure(self) -> None:
        failure = self.failures[0]
        del self.failures[:]
        raise failure

    # Back-compat alias; tasks.py historically called this.
    def _check_failures(self) -> None:
        if self.failures:
            self._raise_failure()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _heap_handle_cancelled(self) -> None:
        """Heap-handle cancel hook: count the corpse, compact when mostly dead."""
        self._heap_cancelled += 1
        heap = self._heap
        if len(heap) >= _COMPACT_MIN and self._heap_cancelled * 2 > len(heap):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled corpses.

        The surviving entries keep their ``(time, seq)`` keys, so the
        dispatch order is exactly what it would have been lazily.  The
        list is mutated in place — dispatch loops hold aliases to it.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._heap_cancelled = 0
        self.heap_compactions += 1

    @property
    def pending_events(self) -> int:
        """Number of uncancelled events still queued (O(1))."""
        return (len(self._heap) - self._heap_cancelled
                + len(self._ready) - self._ready_cancelled)

    def _pending_events_slow(self) -> int:
        """O(n) recount of :attr:`pending_events`; tests assert they agree."""
        heap_live = sum(1 for _t, _s, h in self._heap if not h.cancelled)
        ready_live = sum(
            1 for entry in self._ready
            if entry[2] is None or not entry[2].cancelled
        )
        return heap_live + ready_live
