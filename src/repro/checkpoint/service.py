"""Fault-tolerance policies and the cluster checkpoint service.

:class:`FaultPolicy` names the three strategies the tradeoff study
compares (thesis §1.3 motivates migration partly *as* a fault-tolerance
mechanism; checkpoint/restart is the classic alternative, cf. Condor):

* ``migrate``    — proactive migration only (today's chaos behaviour:
  the orchestrator moves processes off hosts; a crash loses whatever
  was resident).
* ``checkpoint`` — periodic checkpoint/restart only: no proactive
  moves, crashed processes restart from their last intact image.
* ``hybrid``     — both: migration for load/eviction, checkpoints as
  the crash backstop.

:class:`CheckpointService` is the one-call wiring: it owns the image
store, one lazy :class:`~repro.checkpoint.daemon.CheckpointDaemon` per
host, and the :class:`~repro.checkpoint.restart.RestartManager`, and
hooks the latter into the fault injector's crash detection.  It also
publishes itself as ``cluster.checkpoints`` so the invariant checker
can count checkpointed-but-not-restarted images as accounted state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Set

from ..kernel import Pcb
from ..migration.packaging import spawn_factory
from .daemon import CheckpointDaemon, Registration
from .image import CheckpointStore
from .restart import RestartManager

__all__ = ["CheckpointService", "FaultPolicy", "POLICIES", "policy_named"]


@dataclass(frozen=True)
class FaultPolicy:
    """What the cluster does about failures."""

    name: str
    proactive_migration: bool
    checkpointing: bool


#: The named policies of the migration-vs-checkpoint tradeoff study.
POLICIES: Dict[str, FaultPolicy] = {
    "migrate": FaultPolicy("migrate", True, False),
    "checkpoint": FaultPolicy("checkpoint", False, True),
    "hybrid": FaultPolicy("hybrid", True, True),
}

#: Long-form spellings accepted by the CLI.
_ALIASES = {
    "proactive-migrate": "migrate",
    "checkpoint-restart": "checkpoint",
}


def policy_named(name: str) -> FaultPolicy:
    """Resolve a policy by name or alias (raises ``KeyError``)."""
    key = _ALIASES.get(name, name)
    if key not in POLICIES:
        raise KeyError(
            f"unknown fault policy {name!r} "
            f"(choose from {sorted(POLICIES) + sorted(_ALIASES)})"
        )
    return POLICIES[key]


class CheckpointService:
    """Cluster-wide checkpoint/restart, zero-cost until used.

    Instantiating the service schedules nothing; the per-host daemons
    spawn on the first :meth:`register` call.  ``interval`` defaults to
    ``ClusterParams.checkpoint_interval``; ``mode`` is ``"full"`` or
    ``"incremental"`` (dirty-page deltas chained on the last full
    image).
    """

    def __init__(
        self,
        cluster: Any,
        injector: Optional[Any] = None,
        interval: Optional[float] = None,
        mode: str = "full",
        root: str = "/ckpt",
    ):
        if mode not in ("full", "incremental"):
            raise ValueError(f"unknown checkpoint mode {mode!r}")
        self.cluster = cluster
        self.params = cluster.params
        self.interval = (
            interval if interval is not None
            else cluster.params.checkpoint_interval
        )
        self.mode = mode
        self.store = CheckpointStore(cluster.params, root=root)
        self.registry: Dict[int, Registration] = {}
        self.daemons: Dict[int, CheckpointDaemon] = {
            host.address: CheckpointDaemon(self, host)
            for host in cluster.hosts
        }
        self.restart = RestartManager(self)
        cluster.checkpoints = self
        if injector is not None:
            injector.restart = self.restart

    # ------------------------------------------------------------------
    def register(self, pcb: Pcb, program: Any, *args: Any) -> Registration:
        """Put ``pcb`` under checkpoint protection.

        ``program``/``args`` must recreate the process's work when
        re-spawned — the same zero-arg-factory discipline migration uses
        for remote exec (``packaging.spawn_factory``).  Restart-aware
        programs consult ``pcb.cpu_time``/``pcb.restored_progress`` to
        skip work their image already banked.
        """
        registration = Registration(
            pcb=pcb, factory=spawn_factory(program, *args)
        )
        self.registry[pcb.pid] = registration
        for address in sorted(self.daemons):
            self.daemons[address].ensure_running()
        return registration

    def unregister(self, pid: int) -> None:
        """Drop protection and every stored image (clean exit)."""
        self.registry.pop(pid, None)
        self.store.drop(pid)

    # ------------------------------------------------------------------
    # Invariant-checker integration
    # ------------------------------------------------------------------
    def accounted_pids(self) -> Set[int]:
        """Registered pids whose state survives in an intact image —
        accounted for even while no kernel holds a runnable copy."""
        return {
            pid for pid in self.registry
            if self.store.latest_intact(pid) is not None
        }

    # ------------------------------------------------------------------
    # Statistics (aggregated across daemons + restart manager)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        daemons = list(self.daemons.values())
        return {
            "checkpoints": sum(d.checkpoints for d in daemons),
            "incrementals": sum(d.incrementals for d in daemons),
            "skipped_migrating": sum(d.skipped_migrating for d in daemons),
            "torn_writes": sum(d.torn_writes for d in daemons),
            "bytes_written": sum(d.bytes_written for d in daemons),
            "restores": self.restart.restores,
            "torn_skipped": self.restart.torn_skipped,
            "unrecoverable": self.restart.unrecoverable,
            "failed_restores": self.restart.failed_restores,
        }
