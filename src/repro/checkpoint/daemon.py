"""The per-host checkpoint daemon.

One :class:`CheckpointDaemon` per host, owned by the cluster's
:class:`~repro.checkpoint.service.CheckpointService`.  The daemon task
is spawned lazily on the first process registration, so a cluster that
never checkpoints schedules zero extra events (the zero-cost-when-off
discipline every repro subsystem follows).

Each sweep the daemon checkpoints every registered process currently
*resident* on its host: it banks the process's CPU progress and open
streams into a :class:`~repro.checkpoint.image.CheckpointImage`, charges
the same state-packaging CPU migration pays, and pages the image bytes
out to an FS backing file.  ``mode="incremental"`` writes only the
pages dirtied since the last *full* image (differential deltas), so a
restore reads exactly the base plus the newest intact delta.

Mutual exclusion with migration is two-sided: the daemon skips a
process holding a migration ticket, and ``MigrationMechanism.
_check_eligible`` refuses a process whose ``checkpoint_lock`` is set.

A host crash mid-write surfaces as an ``RpcError`` from the backing
file; the daemon drops the attempt, leaving a *torn* (unsealed) image
the restart path detects by digest and skips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..kernel import Pcb, ProcState
from ..migration.packaging import PACKAGE_EXCEPTIONS
from ..obs import CKPT_CHECKPOINT, CKPT_WRITE, SpanTracer
from ..sim import Effect, Sleep, spawn
from .image import CheckpointImage, image_payload, write_image

__all__ = ["CheckpointDaemon", "Registration"]


@dataclass
class Registration:
    """One process under checkpoint protection."""

    pcb: Pcb
    #: Zero-arg spawn factory (``packaging.spawn_factory``) that re-runs
    #: the program under a fresh task on restore.
    factory: Any
    #: Last full image this process's incremental chain hangs off.
    base: Optional[CheckpointImage] = None
    #: ``vm.dirty`` high-water mark at the last *full* image; deltas
    #: carry everything dirtied past it.
    dirty_mark: int = 0
    #: Set by the restart manager once the process died with no intact
    #: image to restore from — it is permanently lost (counted once).
    abandoned: bool = False


class CheckpointDaemon:
    """Periodically images this host's registered residents."""

    def __init__(self, service: Any, host: Any):
        self.service = service
        self.host = host
        self.sim = host.sim
        self.params = host.params
        self.tracer = host.tracer
        self.spans = SpanTracer.for_tracer(host.tracer)
        #: Statistics, aggregated by the service for reports.
        self.checkpoints = 0
        self.incrementals = 0
        self.skipped_migrating = 0
        self.torn_writes = 0
        self.bytes_written = 0
        self._task = None

    # ------------------------------------------------------------------
    def ensure_running(self) -> None:
        """Spawn the sweep loop on first registration (idempotent)."""
        if self._task is None:
            self._task = spawn(
                self.sim, self._loop,
                name=f"ckptd:{self.host.name}", daemon=True,
            )

    def _loop(self) -> Generator[Effect, None, None]:
        while True:
            yield Sleep(self.service.interval)
            if not self.host.node.up:
                # The daemon survives its host's crash (idle, like the
                # load-average sampler); it just skips sweeps until the
                # reboot brings the node back.
                continue
            yield from self.sweep()

    # ------------------------------------------------------------------
    def sweep(self) -> Generator[Effect, None, int]:
        """Checkpoint every registered process resident here now."""
        taken = 0
        for pid in sorted(self.service.registry):
            registration = self.service.registry[pid]
            pcb = registration.pcb
            if pcb.state is not ProcState.RUNNING:
                continue
            if pcb.current != self.host.address:
                continue
            if self.host.kernel.procs.get(pid) is not pcb:
                continue
            if pcb.task is None or pcb.task.done:
                continue
            if pcb.migration_ticket is not None:
                # Migration owns the process state under its txn lease;
                # the next sweep catches the process on its new host.
                self.skipped_migrating += 1
                continue
            yield from self.checkpoint_one(registration)
            taken += 1
        return taken

    def checkpoint_one(
        self, registration: Registration
    ) -> Generator[Effect, None, Optional[CheckpointImage]]:
        """Write one image for one process; ``None`` if the write tore."""
        pcb = registration.pcb
        store = self.service.store
        params = self.params
        started = self.sim.now

        incremental = (
            self.service.mode == "incremental"
            and registration.base is not None
            and registration.base.intact
        )
        payload, stream_refs = image_payload(params, pcb)
        if incremental:
            vm_bytes = max(0, pcb.vm.dirty - registration.dirty_mark)
        else:
            vm_bytes = pcb.vm.size

        image = store.begin(
            pcb.pid, pcb.name, "incremental" if incremental else "full"
        )
        image.taken_at = started
        image.progress = pcb.cpu_time
        image.vm_size = pcb.vm.size
        image.factory = registration.factory
        image.stream_refs = stream_refs
        if incremental:
            image.base_seq = registration.base.seq
            image.restore_bytes = (
                registration.base.restore_bytes
                + payload + vm_bytes + params.checkpoint_digest_bytes
            )
        else:
            image.restore_bytes = (
                payload + vm_bytes + params.checkpoint_digest_bytes
            )

        pcb.checkpoint_lock = True
        try:
            yield from self.host.cpu.consume(params.checkpoint_state_cpu)
            yield from write_image(
                self.host.fs, store, image, payload + vm_bytes
            )
        except PACKAGE_EXCEPTIONS:
            # Crash or FS failure mid-write: the image stays unsealed
            # (torn) and the previous generation remains authoritative.
            self.torn_writes += 1
            return None
        finally:
            pcb.checkpoint_lock = False

        if not incremental:
            # Deltas are differential: each carries *all* pages dirtied
            # since the base full image, so a restore needs only the
            # base plus the newest delta (never a chain of deltas).
            registration.base = image
            registration.dirty_mark = pcb.vm.dirty
        # Bound storage: drop generations beyond the configured keep
        # count (trimmed only after the new image sealed, so an intact
        # fallback always survives) and reclaim their backing files.
        for dropped in store.trim(pcb.pid):
            try:
                yield from self.host.fs.remove(dropped.path)
            except PACKAGE_EXCEPTIONS:
                pass  # lost-space only; the image metadata is gone
        self.checkpoints += 1
        self.incrementals += int(incremental)
        self.bytes_written += image.image_bytes

        now = self.sim.now
        source = f"ckptd:{self.host.name}"
        if self.spans.enabled:
            root = self.spans.record(
                CKPT_CHECKPOINT, source, started, now,
                pid=pcb.pid, seq=image.seq, mode=image.mode,
            )
            self.spans.record(
                CKPT_WRITE, source, started, now, parent=root,
                bytes=image.image_bytes,
            )
        if self.tracer.enabled:
            self.tracer.emit(
                now, source, "checkpoint",
                pid=pcb.pid, seq=image.seq, mode=image.mode,
                bytes=image.image_bytes, progress=round(image.progress, 9),
            )
        return image
