"""Crash-triggered restart from the latest intact checkpoint image.

The fault injector's crash-detection daemon calls
:meth:`RestartManager.host_lost` (via ``injector.restart``) right after
peer kernels have reaped the crashed host's orphans and shadows.  The
manager scans the checkpoint registry for *victims* — registered
processes whose task was aborted rather than exiting with a code — and
spawns one restore task per crash to bring each victim back on a
surviving host from its newest intact image.

Restores pay for what they read: the restart host re-instantiates the
process state (``checkpoint_state_cpu``), pages the image's restore
bytes back in from the FS backing file, and reopens the image's stream
references before the restored process runs again.  Restoration reuses
the *same* :class:`~repro.kernel.pcb.Pcb` object (identity matters:
parents hold its shared ``exit_event``), banks the image's CPU progress
in ``pcb.cpu_time``/``pcb.restored_progress``, and starts a fresh task
from the image's spawn factory.  Torn images — digest mismatch from a
write the crash interrupted — are counted and skipped; with no intact
image at all the process stays lost (exactly a process that was never
checkpointed).

A double crash (restart host dies too) needs no special machinery: the
next ``host_lost`` sweep sees the restored task aborted again and
restores again from the same image chain.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..kernel import Pcb, UserContext, Vm
from ..migration.packaging import PACKAGE_EXCEPTIONS
from ..obs import CKPT_RESTORE, SpanTracer
from ..sim import Effect, spawn
from .image import read_image

__all__ = ["RestartManager"]


class RestartManager:
    """Restores checkpointed victims of host crashes."""

    def __init__(self, service: Any):
        self.service = service
        self.cluster = service.cluster
        self.sim = service.cluster.sim
        self.tracer = service.cluster.tracer
        self.spans = SpanTracer.for_tracer(self.tracer)
        #: Statistics for reports and tests.
        self.restores = 0
        self.torn_skipped = 0
        self.unrecoverable = 0
        self.failed_restores = 0

    # ------------------------------------------------------------------
    # Crash-detection hook (synchronous; called by the fault injector)
    # ------------------------------------------------------------------
    def host_lost(self, address: int) -> int:
        """React to a detected crash: restore every victim.

        Returns the victim count; spawns nothing when there are no
        victims, so a crash that hurt no checkpointed process costs the
        fingerprint nothing.
        """
        victims = [
            pid
            for pid in sorted(self.service.registry)
            if not self.service.registry[pid].abandoned
            and self._is_victim(self.service.registry[pid].pcb)
        ]
        if victims:
            spawn(
                self.sim,
                self._restore_all(victims),
                name=f"ckpt-restart:{address}",
                daemon=True,
            )
        return len(victims)

    @staticmethod
    def _is_victim(pcb: Pcb) -> bool:
        """Died by crash: the task ended without producing an exit code
        (host-crash aborts carry a reason tuple, normal exits an int).
        Self-correcting across double crashes — a restore gives the pcb
        a fresh, not-done task, so it stops matching until it dies again.
        """
        task = pcb.task
        if task is None or not task.done:
            return False
        return not isinstance(task.result, int)

    # ------------------------------------------------------------------
    def _restore_all(self, victims: List[int]) -> Generator[Effect, None, None]:
        for pid in victims:
            yield from self.restore(pid)

    def restore(self, pid: int) -> Generator[Effect, None, Optional[Pcb]]:
        """Restore one victim from its newest intact image."""
        registration = self.service.registry[pid]
        pcb = registration.pcb
        if pcb.task is not None and not pcb.task.done:
            return None  # already restored (racing crash detections)

        image = self.service.store.latest_intact(pid)
        if image is None:
            # Never successfully imaged (or every image tore): the
            # process is as lost as an unprotected one.
            registration.abandoned = True
            self.unrecoverable += 1
            self._emit("restore_lost", pid=pid)
            return None
        self.torn_skipped += self.service.store.torn_after(image)

        host = self._pick_host(pcb)
        if host is None:
            self.failed_restores += 1
            self._emit("restore_failed", pid=pid, reason="no-host")
            return None

        started = self.sim.now
        streams = {}
        try:
            yield from host.cpu.consume(self.service.params.checkpoint_state_cpu)
            yield from read_image(host.fs, image)
            for fd, path, mode in image.stream_refs:
                streams[fd] = yield from host.fs.open(path, mode)
        except PACKAGE_EXCEPTIONS:
            # Restart host failed mid-restore; release whatever streams
            # made it and leave the victim for the next crash sweep.
            self.failed_restores += 1
            for fd in sorted(streams):
                host.fs.forget_stream(streams[fd])
            self._emit("restore_failed", pid=pid, reason="io")
            return None
        if not host.node.up or (pcb.task is not None and not pcb.task.done):
            self.failed_restores += 1
            for fd in sorted(streams):
                host.fs.forget_stream(streams[fd])
            self._emit("restore_failed", pid=pid, reason="raced")
            return None

        # Activation is yield-free: between here and task start no other
        # task can observe a half-restored pcb.
        pcb.vm = Vm(size=image.vm_size, resident=image.vm_size)
        pcb.streams = streams
        pcb.next_fd = max(streams, default=2) + 1
        pcb.pending_signals.clear()
        pcb.in_syscall = 0
        pcb.interruptible = False
        pcb.migration_ticket = None
        pcb.checkpoint_lock = False
        pcb.cpu_time = image.progress
        pcb.restored_progress = image.progress
        host.kernel.install_pcb(pcb)
        UserContext(pcb, self.cluster.kernels).start(image.factory)
        # The old base's backing file died with its host: the first
        # post-restore checkpoint must be a fresh full image.
        registration.base = None
        registration.dirty_mark = 0

        self.restores += 1
        now = self.sim.now
        if self.spans.enabled:
            self.spans.record(
                CKPT_RESTORE, f"ckpt-restart:{host.name}", started, now,
                pid=pid, seq=image.seq, host=host.address,
                bytes=image.restore_bytes,
            )
        self._emit(
            "restore", pid=pid, seq=image.seq, host=host.address,
            progress=round(image.progress, 9),
        )
        return pcb

    # ------------------------------------------------------------------
    def _pick_host(self, pcb: Pcb) -> Optional[Any]:
        """Home host if it survived, else the lowest-address live host."""
        for host in self.cluster.hosts:
            if host.address == pcb.home and host.node.up:
                return host
        for host in sorted(self.cluster.hosts, key=lambda h: h.address):
            if host.node.up:
                return host
        return None

    def _emit(self, kind: str, **detail: Any) -> None:
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, "ckpt-restart", kind, **detail)
