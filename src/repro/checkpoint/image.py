"""Checkpoint images and the per-cluster image store.

A :class:`CheckpointImage` is the migration install payload, made
durable: the same machine-independent state bytes, per-stream
references, and zero-arg spawn factory the migration transaction ships
over the wire (:mod:`repro.migration.packaging`), written to an FS
backing file instead of a peer kernel.  Because backing files live on
file servers, an image survives the crash of the host that wrote it —
that is the entire point.

Atomicity is by *digest*, not by locking: an image is ``begin()``-ed
unsealed, its bytes are paged out, and only a completed write is
``seal()``-ed with a digest over the image's metadata.  A crash between
``begin`` and ``seal`` leaves a torn image whose digest check fails;
:meth:`CheckpointStore.latest_intact` skips it and falls back to the
previous generation.  ``repro.checkpoint`` never restores from an
unsealed or mismatched image.

The store is keyed by an integer (pid for the daemon, job id for the
Condor baseline) and bounds storage to
``ClusterParams.checkpoint_generations`` images per key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from ..fs import BackingFile
from ..migration.packaging import state_bytes, stream_bytes, stream_manifest
from ..sim import Effect

__all__ = [
    "CheckpointImage",
    "CheckpointStore",
    "image_payload",
    "read_image",
    "write_image",
]


@dataclass
class CheckpointImage:
    """One generation of one process's durable state."""

    key: int                    #: store key (pid, or Condor job id)
    name: str                   #: process/job name, for reports
    seq: int                    #: generation number, monotonic per key
    path: str                   #: backing-file path on the FS server
    mode: str                   #: "full" | "incremental"
    taken_at: float = 0.0       #: sim time the image was begun
    progress: float = 0.0       #: CPU seconds banked by this image
    image_bytes: int = 0        #: bytes this image's write shipped
    restore_bytes: int = 0      #: bytes a restore must read (base chain
                                #: plus this image's delta)
    vm_size: int = 0            #: address-space size at checkpoint time
    factory: Any = None         #: zero-arg spawn factory (packaging)
    #: ``(fd, path, mode)`` per open stream, reopened on restore.
    stream_refs: Tuple[Tuple[int, str, int], ...] = ()
    base_seq: int = -1          #: full image this delta chains from
    digest: str = ""            #: "" until sealed

    def fingerprint(self) -> str:
        """Digest over everything a restore depends on."""
        payload = (
            self.key, self.name, self.seq, self.path, self.mode,
            round(self.taken_at, 9), round(self.progress, 9),
            self.image_bytes, self.restore_bytes, self.vm_size,
            self.stream_refs, self.base_seq,
        )
        return hashlib.sha256(repr(payload).encode()).hexdigest()

    def seal(self) -> "CheckpointImage":
        self.digest = self.fingerprint()
        return self

    @property
    def intact(self) -> bool:
        """Sealed and undamaged — safe to restore from."""
        return bool(self.digest) and self.digest == self.fingerprint()


class CheckpointStore:
    """Every checkpoint image in the cluster, newest last per key."""

    def __init__(self, params: Any, root: str = "/ckpt"):
        self.params = params
        self.root = root
        self.images: Dict[int, List[CheckpointImage]] = {}

    # ------------------------------------------------------------------
    def begin(self, key: int, name: str, mode: str) -> CheckpointImage:
        """Open a new (unsealed) generation for ``key``.

        The image is visible in the store immediately so a crash during
        the write leaves a detectable torn generation behind.
        """
        generations = self.images.setdefault(key, [])
        seq = generations[-1].seq + 1 if generations else 0
        image = CheckpointImage(
            key=key, name=name, seq=seq,
            path=f"{self.root}/{key}-{seq}", mode=mode,
        )
        generations.append(image)
        return image

    def latest_intact(self, key: int) -> Optional[CheckpointImage]:
        """Newest restorable image, skipping torn/unsealed generations."""
        for image in reversed(self.images.get(key, [])):
            if image.intact:
                return image
        return None

    def torn_after(self, image: CheckpointImage) -> int:
        """Generations newer than ``image`` that failed the digest —
        the torn writes a restore had to skip to reach it."""
        return sum(
            1
            for candidate in self.images.get(image.key, [])
            if candidate.seq > image.seq and not candidate.intact
        )

    def trim(self, key: int) -> List[CheckpointImage]:
        """Drop generations beyond the configured bound; returns the
        dropped images so the caller can remove their backing files."""
        generations = self.images.get(key, [])
        keep = max(1, self.params.checkpoint_generations)
        if len(generations) <= keep:
            return []
        kept = generations[len(generations) - keep:]
        # Never drop a full image some kept delta still chains on —
        # reclaiming the base would make the delta unrestorable.
        needed = {im.base_seq for im in kept if im.base_seq >= 0}
        older = generations[: len(generations) - keep]
        bases = [im for im in older if im.seq in needed]
        dropped = [im for im in older if im.seq not in needed]
        self.images[key] = bases + kept
        return dropped

    def drop(self, key: int) -> None:
        """Forget every image for ``key`` (process exited cleanly)."""
        self.images.pop(key, None)

    def accounted_keys(self) -> Set[int]:
        """Keys with at least one intact image — state the invariant
        checker counts as accounted even with no runnable copy."""
        return {
            key
            for key, generations in self.images.items()
            if any(image.intact for image in generations)
        }


def image_payload(params: Any, pcb: Any) -> Tuple[int, Tuple[Tuple[int, str, int], ...]]:
    """Non-VM payload of a checkpoint of ``pcb``: the byte count and the
    stream references, priced exactly as migration prices the same state
    (shared packaging discipline — one module, two callers)."""
    manifest = stream_manifest(pcb)
    nbytes = state_bytes(params) + stream_bytes(params, len(manifest))
    refs = tuple((fd, stream.path, stream.mode) for fd, stream in manifest)
    return nbytes, refs


# ----------------------------------------------------------------------
# Image I/O (generators, driven inside host tasks)
# ----------------------------------------------------------------------
def write_image(
    fs: Any,
    store: CheckpointStore,
    image: CheckpointImage,
    payload_bytes: int,
) -> Generator[Effect, None, BackingFile]:
    """Write ``payload_bytes`` (+ digest trailer) to the image's backing
    file and seal it.  The digest trailer guarantees the write is never
    zero bytes, so even an empty process costs one real FS write — and a
    crash mid-write leaves the image unsealed (torn).
    """
    backing = BackingFile(fs, image.path)
    yield from backing.create()
    nbytes = payload_bytes + store.params.checkpoint_digest_bytes
    yield from backing.page_out(nbytes)
    image.image_bytes = nbytes
    image.seal()
    return backing


def read_image(
    fs: Any, image: CheckpointImage
) -> Generator[Effect, None, int]:
    """Page the image's restore bytes in from its backing file."""
    backing = BackingFile(fs, image.path)
    yield from backing.create()
    nbytes = max(image.restore_bytes, 1)
    yield from backing.page_in(nbytes)
    return nbytes
