"""Checkpoint/restart: the fault-tolerance alternative to migration.

Sprite migrates processes to *avoid* losing them (evict before the
owner returns, drain before a planned shutdown) — but an unplanned
crash still loses whatever was resident.  This package adds the classic
alternative: periodically write each protected process's state to a
durable image on a file server, and after a crash restart it from the
newest intact image on a surviving host.

The image format deliberately reuses the migration transaction's
process-packaging discipline (:mod:`repro.migration.packaging`): the
same machine-independent state bytes, the same per-stream references,
the same zero-arg spawn factory — a checkpoint is "a migration whose
target is a file".

Components:

* :mod:`.image`   — :class:`CheckpointImage` (digest-sealed, torn-write
  detectable) and the generation-bounded :class:`CheckpointStore`.
* :mod:`.daemon`  — per-host :class:`CheckpointDaemon`, full and
  incremental (dirty-page) modes, lazily spawned.
* :mod:`.restart` — :class:`RestartManager`, driven by the fault
  injector's crash detection.
* :mod:`.service` — :class:`CheckpointService` wiring plus the
  :class:`FaultPolicy` triple (``migrate`` / ``checkpoint`` /
  ``hybrid``) the tradeoff study compares.

Zero-cost when off: constructing nothing schedules nothing, and every
hook this package installs elsewhere (``injector.restart``,
``cluster.checkpoints``, ``pcb.checkpoint_lock``) sits behind an
``is not None`` / falsy test on the default path, so checkpoint-off
runs are byte-identical to a build without this package.
"""

from .daemon import CheckpointDaemon, Registration
from .image import CheckpointImage, CheckpointStore, read_image, write_image
from .restart import RestartManager
from .service import CheckpointService, FaultPolicy, POLICIES, policy_named

__all__ = [
    "CheckpointDaemon",
    "CheckpointImage",
    "CheckpointService",
    "CheckpointStore",
    "FaultPolicy",
    "POLICIES",
    "Registration",
    "RestartManager",
    "policy_named",
    "read_image",
    "write_image",
]
