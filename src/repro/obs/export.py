"""Trace export and analysis: JSONL, Chrome trace events, text views.

Three consumers, three formats:

* **JSONL** — one :class:`~repro.sim.trace.TraceRecord` per line; the
  grep/jq-friendly archive format.
* **Chrome trace events** — the ``chrome://tracing`` / Perfetto JSON
  format.  Every finished span becomes one complete (``"ph": "X"``)
  event with microsecond ``ts``/``dur``; each distinct span source
  (``mig:ws0``, ``rpc:ws1``, ...) becomes a process row, named via
  ``"M"`` metadata events.  Load the file in a trace viewer and the
  migration lifecycle reads as a flame chart.
* **Text** — an aggregate summary table (count/total/mean/p95 per span
  name) and an indented flame view of the slowest roots, for terminals
  and CI logs.

Plus :func:`migration_breakdowns`, which reconstructs per-migration
phase timings purely from spans — the check that ``MigrationRecord``'s
hand-maintained fields and the span stream agree.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..metrics.histogram import LatencyHistogram
from ..sim.trace import TraceRecord
from .spans import Span

__all__ = [
    "trace_to_jsonl",
    "spans_to_chrome_trace",
    "render_span_summary",
    "render_flame",
    "migration_breakdowns",
]

Pathish = Union[str, pathlib.Path]

#: Seconds -> microseconds (the trace-event format's clock unit).
_US = 1e6


def trace_to_jsonl(
    records: Iterable[TraceRecord], path: Optional[Pathish] = None
) -> str:
    """Serialize records as JSON lines; write to ``path`` if given."""
    lines = []
    for record in records:
        lines.append(json.dumps(
            {
                "time": record.time,
                "source": record.source,
                "kind": record.kind,
                "detail": {k: _jsonable(v) for k, v in record.detail.items()},
            },
            sort_keys=True,
        ))
    text = "\n".join(lines) + ("\n" if lines else "")
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def spans_to_chrome_trace(
    spans: Sequence[Span], path: Optional[Pathish] = None
) -> Dict[str, Any]:
    """Spans as a Chrome trace-event document (``traceEvents`` list).

    One pid per distinct span source, announced with ``process_name``
    metadata; spans nest on a source's row by their time extents.
    """
    pids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for span in spans:
        if not span.finished:
            continue
        pid = pids.get(span.source)
        if pid is None:
            pid = pids[span.source] = len(pids) + 1
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": span.source},
            })
        args = {k: _jsonable(v) for k, v in span.attrs.items()}
        args["sid"] = span.sid
        if span.parent_sid is not None:
            args["parent"] = span.parent_sid
        events.append({
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "ts": round(span.start * _US, 3),
            "dur": round(span.duration * _US, 3),
            "pid": pid,
            "tid": 0,
            "args": args,
        })
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    if path is not None:
        pathlib.Path(path).write_text(json.dumps(document, indent=1) + "\n")
    return document


# ----------------------------------------------------------------------
# Text views
# ----------------------------------------------------------------------
def render_span_summary(spans: Sequence[Span]) -> str:
    """Aggregate table: per span name, count / total / mean / p95 / max."""
    groups: Dict[str, LatencyHistogram] = {}
    for span in spans:
        if not span.finished:
            continue
        histogram = groups.get(span.name)
        if histogram is None:
            histogram = groups[span.name] = LatencyHistogram()
        histogram.add(span.duration)
    lines = [
        f"{'span':<24} {'count':>6} {'total_s':>10} {'mean_ms':>9} "
        f"{'p95_ms':>9} {'max_ms':>9}"
    ]
    for name in sorted(groups, key=lambda n: -groups[n].total):
        h = groups[name]
        lines.append(
            f"{name:<24} {h.count:>6} {h.total:>10.3f} {h.mean * 1e3:>9.2f} "
            f"{h.percentile(95) * 1e3:>9.2f} {h.max_value * 1e3:>9.2f}"
        )
    if len(lines) == 1:
        lines.append("(no finished spans)")
    return "\n".join(lines)


def render_flame(spans: Sequence[Span], limit: int = 10) -> str:
    """Indented tree of the ``limit`` longest root spans."""
    finished = [s for s in spans if s.finished]
    children: Dict[int, List[Span]] = {}
    for span in finished:
        if span.parent_sid is not None:
            children.setdefault(span.parent_sid, []).append(span)
    roots = sorted(
        (s for s in finished if s.parent_sid is None),
        key=lambda s: -s.duration,
    )[:limit]
    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        indent = "  " * depth
        attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
        lines.append(
            f"{indent}{span.name:<{max(1, 30 - 2 * depth)}} "
            f"{span.duration * 1e3:>9.2f} ms  [{span.source}] {attrs}".rstrip()
        )
        for kid in sorted(children.get(span.sid, ()), key=lambda s: s.start):
            walk(kid, depth + 1)

    for root in roots:
        walk(root, 0)
    if not lines:
        lines.append("(no finished spans)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Span-derived migration breakdowns
# ----------------------------------------------------------------------
#: Phase spans that partition a ``mig.migrate`` root contiguously.
MIGRATION_PHASES = ("mig.negotiate", "mig.vm_pre", "mig.wait_safe_point",
                    "mig.freeze", "mig.commit")


def migration_breakdowns(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    """Per-migration phase timings reconstructed purely from spans.

    Each ``mig.migrate`` root yields one row with the phase durations
    (zero for phases the variant skips — exec migration has no VM
    phase), ``total`` (the root's extent) and ``phase_sum`` (the sum of
    its phase children).  For completed migrations the phases are
    contiguous by construction, so ``phase_sum == total`` and ``total``
    equals the corresponding ``MigrationRecord.total_time``; the test
    suite holds the mechanism to that.
    """
    rows: List[Dict[str, Any]] = []
    by_parent: Dict[int, List[Span]] = {}
    for span in spans:
        if span.parent_sid is not None and span.finished:
            by_parent.setdefault(span.parent_sid, []).append(span)
    for root in spans:
        if root.name != "mig.migrate" or not root.finished:
            continue
        row: Dict[str, Any] = {
            "pid": root.attrs.get("pid"),
            "source": root.attrs.get("src"),
            "target": root.attrs.get("dst"),
            "reason": root.attrs.get("reason"),
            "refused": bool(root.attrs.get("refused", False)),
            "started": root.start,
            "ended": root.end,
            "total": root.duration,
        }
        phase_sum = 0.0
        phases = {s.name: s for s in by_parent.get(root.sid, ())}
        for name in MIGRATION_PHASES:
            phase = phases.get(name)
            duration = phase.duration if phase is not None else 0.0
            row[name.split(".", 1)[1]] = duration
            phase_sum += duration
        row["phase_sum"] = phase_sum
        rows.append(row)
    rows.sort(key=lambda r: r["started"])
    return rows
