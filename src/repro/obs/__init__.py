"""Cluster-wide observability: spans, metrics, trace export.

Layered on :mod:`repro.sim.trace`'s flat record stream:

* :mod:`.spans`   — sim-time :class:`Span`/:class:`SpanTracer` with
  parent links, instrumented through the migration lifecycle, host
  selection, eviction, and RPC.
* :mod:`.metrics` — per-host/cluster counters, gauges, and
  histogram-backed timers with a sim-time sampler.
* :mod:`.export`  — JSONL and Chrome trace-event exporters, text
  summary/flame views, and span-derived migration breakdowns.
* :mod:`.install` — :class:`ClusterObservability`, the one-call wiring
  for a :class:`~repro.cluster.SpriteCluster` (also reachable as
  ``cluster.observability()``).

Everything is opt-in and zero-cost when off: instrumentation sites are
guarded by ``enabled`` flags or ``is not None`` hooks, statically
checked by ``tools/check_trace_guards.py``.  See
``docs/observability.md`` for the span taxonomy and metric names.
"""

from .export import (
    migration_breakdowns,
    render_flame,
    render_span_summary,
    spans_to_chrome_trace,
    trace_to_jsonl,
)
from .install import ClusterObservability
from .metrics import Counter, Gauge, MetricsRegistry, MetricsSampler, Timer
from .spans import SPAN_KIND, Span, SpanTracer

__all__ = [
    "SPAN_KIND",
    "ClusterObservability",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "MetricsSampler",
    "Span",
    "SpanTracer",
    "Timer",
    "migration_breakdowns",
    "render_flame",
    "render_span_summary",
    "spans_to_chrome_trace",
    "trace_to_jsonl",
]
