"""Cluster-wide observability: spans, metrics, trace export.

Layered on :mod:`repro.sim.trace`'s flat record stream:

* :mod:`.spans`   — sim-time :class:`Span`/:class:`SpanTracer` with
  parent links, instrumented through the migration lifecycle, host
  selection, eviction, and RPC.
* :mod:`.metrics` — per-host/cluster counters, gauges, and
  histogram-backed timers with a sim-time sampler.
* :mod:`.export`  — JSONL and Chrome trace-event exporters, text
  summary/flame views, and span-derived migration breakdowns.
* :mod:`.install` — :class:`ClusterObservability`, the one-call wiring
  for a :class:`~repro.cluster.SpriteCluster` (also reachable as
  ``cluster.observability()``).
* :mod:`.critpath` — causal critical-path analysis: per-migration
  latency attribution tables and whole-run critical-path profiles.
* :mod:`.profile` — engine hot-spot profiler attributing dispatched
  events per task source / subsystem (opt-in ``Simulator.profiler``).

Everything is opt-in and zero-cost when off: instrumentation sites are
guarded by ``enabled`` flags or ``is not None`` hooks, statically
checked by ``tools/check_trace_guards.py``.  See
``docs/observability.md`` for the span taxonomy and metric names.
"""

from .critpath import (
    critpath_report,
    migration_critical_paths,
    render_attribution_table,
    render_run_path,
    run_critical_path,
)
from .export import (
    migration_breakdowns,
    render_flame,
    render_span_summary,
    spans_to_chrome_trace,
    trace_to_jsonl,
)
from .install import ClusterObservability
from .metrics import Counter, Gauge, MetricsRegistry, MetricsSampler, Timer
from .profile import EngineProfiler
from .spans import (
    CKPT_CHECKPOINT,
    CKPT_RESTORE,
    CKPT_WRITE,
    EVICT_RECLAIM,
    FAULT_OUTAGE,
    FAULT_SUSPECT,
    KERNEL_FORWARD,
    MIG_COMMIT,
    MIG_COMMIT_RPC,
    MIG_FREEZE,
    MIG_INSTALL,
    MIG_MIGRATE,
    MIG_NEGOTIATE,
    MIG_STATE_PACK,
    MIG_STREAMS,
    MIG_UPDATE_HOME,
    MIG_VM_PRE,
    MIG_VM_TRANSFER,
    MIG_WAIT_SAFE_POINT,
    RPC_CALL,
    RPC_SERVE,
    SELECT_REQUEST,
    SPAN_CATALOGUE,
    SPAN_KIND,
    Span,
    SpanTracer,
)

__all__ = [
    "CKPT_CHECKPOINT",
    "CKPT_RESTORE",
    "CKPT_WRITE",
    "EVICT_RECLAIM",
    "FAULT_OUTAGE",
    "FAULT_SUSPECT",
    "KERNEL_FORWARD",
    "MIG_COMMIT",
    "MIG_COMMIT_RPC",
    "MIG_FREEZE",
    "MIG_INSTALL",
    "MIG_MIGRATE",
    "MIG_NEGOTIATE",
    "MIG_STATE_PACK",
    "MIG_STREAMS",
    "MIG_UPDATE_HOME",
    "MIG_VM_PRE",
    "MIG_VM_TRANSFER",
    "MIG_WAIT_SAFE_POINT",
    "RPC_CALL",
    "RPC_SERVE",
    "SELECT_REQUEST",
    "SPAN_CATALOGUE",
    "SPAN_KIND",
    "ClusterObservability",
    "Counter",
    "EngineProfiler",
    "Gauge",
    "MetricsRegistry",
    "MetricsSampler",
    "Span",
    "SpanTracer",
    "Timer",
    "critpath_report",
    "migration_breakdowns",
    "migration_critical_paths",
    "render_attribution_table",
    "render_flame",
    "render_run_path",
    "render_span_summary",
    "run_critical_path",
    "spans_to_chrome_trace",
    "trace_to_jsonl",
]
