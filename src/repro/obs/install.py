"""One-call observability wiring for a :class:`SpriteCluster`.

:meth:`ClusterObservability.install` flips the span switch, hands every
migration manager a metrics hook, attaches per-service RPC accounting
and per-kind LAN byte accounting, and (optionally) starts a sim-time
sampler feeding per-host load/forwarding/traffic time series.  All of
it is opt-in: an uninstalled cluster carries only ``None`` attributes
and disabled flags, so the PR-1 zero-cost property holds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from .metrics import MetricsRegistry, MetricsSampler
from .spans import SpanTracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster import SpriteCluster
    from ..migration.eviction import EvictionEvent
    from ..migration.mechanism import MigrationRecord

__all__ = ["ClusterObservability"]


class ClusterObservability:
    """Spans + metrics + samplers for one cluster, bundled."""

    def __init__(self, cluster: "SpriteCluster"):
        self.cluster = cluster
        self.spans = SpanTracer.for_tracer(cluster.tracer)
        self.registry = MetricsRegistry()
        self.sampler: Optional[MetricsSampler] = None

    # ------------------------------------------------------------------
    @classmethod
    def install(
        cls,
        cluster: "SpriteCluster",
        spans: bool = True,
        trace: bool = False,
        sample_period: Optional[float] = None,
    ) -> "ClusterObservability":
        """Wire a cluster for observation.

        ``spans``        — enable span collection (cluster-wide switch).
        ``trace``        — also enable the flat tracer, so spans and the
                           existing event records are mirrored into
                           ``cluster.tracer.records``.
        ``sample_period``— if set, start a :class:`MetricsSampler` on
                           that sim-time interval (per-host load,
                           forwarded calls, RPC and LAN traffic).  Like
                           the load-average daemons, a running sampler
                           keeps the event queue non-empty: drive the
                           sim with ``run(until=...)`` or
                           ``run_until_complete``.
        """
        # Imported here, not at module top: net.rpc itself imports
        # obs.spans, and a top-level import back into net would make the
        # package import order matter.
        from ..net.rpc import RpcStats

        obs = cls(cluster)
        if trace:
            cluster.tracer.enabled = True
        if spans:
            obs.spans.enabled = True
        obs.spans.clock = lambda: cluster.sim.now
        for manager in cluster.managers.values():
            manager.obs = obs
        for host in cluster.hosts:
            host.rpc.stats = RpcStats()
        for server_host in cluster.server_hosts:
            server_host.rpc.stats = RpcStats()
        cluster.lan.kind_bytes = {}
        if sample_period is not None:
            obs.sampler = sampler = MetricsSampler(
                cluster.sim, obs.registry, period=sample_period
            )
            for host in cluster.hosts:
                address = host.address
                sampler.add_probe("host.load", address,
                                  lambda h=host: h.loadavg.effective)
                sampler.add_probe("host.runnable", address,
                                  lambda h=host: h.cpu.runnable)
                sampler.add_probe("host.foreign", address,
                                  lambda h=host: len(h.kernel.foreign_pcbs()))
                sampler.add_probe("rpc.calls", address,
                                  lambda h=host: h.rpc.calls_made)
                sampler.add_probe("kernel.forwarded", address,
                                  lambda h=host: h.kernel.calls_forwarded_home)
            sampler.add_probe("lan.bytes", None, lambda: cluster.lan.bytes_sent)
            sampler.add_probe("lan.messages", None,
                              lambda: cluster.lan.messages_sent)
            sampler.start()
        return obs

    # ------------------------------------------------------------------
    # Event hooks (called by the instrumented layers when installed)
    # ------------------------------------------------------------------
    def on_migration(self, record: "MigrationRecord") -> None:
        registry = self.registry
        host = record.source
        registry.counter("mig.started", host).inc()
        if record.refused:
            registry.counter("mig.refused", host).inc()
            return
        registry.counter("mig.completed", host).inc()
        registry.timer("mig.total", host).observe(record.total_time)
        registry.timer("mig.freeze", host).observe(record.freeze_time)
        registry.counter("mig.state_bytes", host).inc(
            record.state_bytes + record.stream_bytes
        )
        if record.vm is not None:
            registry.counter("mig.vm_bytes", host).inc(record.vm.bytes_total)

    def on_eviction(self, event: "EvictionEvent") -> None:
        registry = self.registry
        registry.counter("evict.events", event.host).inc()
        registry.counter("evict.victims", event.host).inc(event.victims)
        registry.timer("evict.reclaim", event.host).observe(
            event.reclaim_seconds
        )

    # ------------------------------------------------------------------
    # Cluster-wide rollups
    # ------------------------------------------------------------------
    def rpc_by_service(self) -> Dict[str, Dict[str, int]]:
        """Calls/bytes per RPC service, merged over every port."""
        merged: Dict[str, Dict[str, int]] = {}
        ports = [h.rpc for h in self.cluster.hosts]
        ports += [s.rpc for s in self.cluster.server_hosts]
        for port in ports:
            stats = port.stats
            if stats is None:
                continue
            for service, count in stats.calls.items():
                row = merged.setdefault(
                    service,
                    {"calls": 0, "call_bytes": 0, "served": 0, "reply_bytes": 0},
                )
                row["calls"] += count
                row["call_bytes"] += stats.call_bytes.get(service, 0)
            for service, count in stats.served.items():
                row = merged.setdefault(
                    service,
                    {"calls": 0, "call_bytes": 0, "served": 0, "reply_bytes": 0},
                )
                row["served"] += count
                row["reply_bytes"] += stats.reply_bytes.get(service, 0)
        return merged

    def lan_by_kind(self) -> Dict[str, int]:
        return dict(self.cluster.lan.kind_bytes or {})

    def snapshot(self) -> Dict[str, Any]:
        """Everything, JSON-able: registry + RPC/LAN rollups + spans."""
        return {
            "registry": self.registry.snapshot(),
            "rpc_by_service": self.rpc_by_service(),
            "lan_by_kind": self.lan_by_kind(),
            "spans": len(self.spans.finished),
            "samples": self.sampler.samples_taken if self.sampler else 0,
        }

    def migration_records(self) -> List["MigrationRecord"]:
        return self.cluster.migration_records()
