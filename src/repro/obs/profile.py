"""Engine hot-spot profiler: who is consuming the event loop?

ROADMAP item 1 (sharding the cluster across engine partitions) needs an
answer to "which subsystem caps event throughput?" before any
partitioning makes sense.  :class:`EngineProfiler` hooks the
:class:`~repro.sim.engine.Simulator` dispatch loop (opt-in via
``sim.profiler``; an unprofiled run pays one ``is not None`` test) and
attributes every dispatched event three ways:

* **event kind** — the callback's qualified name (``Task._resume``,
  ``Channel._deliver``, …): what the engine is mechanically doing;
* **task source** — the ``name`` of the bound object the callback
  belongs to, when it has one (``rpc-server:ws3``, ``kernel:ws0``):
  which component asked for it;
* **subsystem** — the source's prefix before ``:`` (``rpc-server``,
  ``kernel``, ``mig``): the shard-granularity rollup.

Counts are deterministic for a fixed seed, so the default report is
byte-identical across reruns.  Wall-clock timing is *optional*
(``timing=True``) and is deliberately excluded from
:meth:`EngineProfiler.render` unless asked for, keeping the
deterministic report free of host noise.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["EngineProfiler"]

_DIGITS = "0123456789"


def _subsystem(source: str) -> str:
    """``rpc-server:ws3`` -> ``rpc-server``; ``worker12`` -> ``worker``."""
    head = source.split(":", 1)[0]
    return head.rstrip(_DIGITS) or head


class EngineProfiler:
    """Per-dispatch attribution of engine events.

    Install with :meth:`install` (or assign ``sim.profiler``); the
    engine then routes every dispatch through :meth:`dispatch`.  With
    ``timing=True`` each bucket also accumulates host wall-clock
    seconds — useful interactively, never part of the deterministic
    report unless explicitly requested.
    """

    __slots__ = ("timing", "events", "by_kind", "by_source", "by_subsystem",
                 "wall_by_kind", "wall_by_subsystem")

    def __init__(self, timing: bool = False):
        self.timing = timing
        self.events = 0
        self.by_kind: Dict[str, int] = {}
        self.by_source: Dict[str, int] = {}
        self.by_subsystem: Dict[str, int] = {}
        self.wall_by_kind: Dict[str, float] = {}
        self.wall_by_subsystem: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def install(self, sim: Any) -> "EngineProfiler":
        sim.profiler = self
        return self

    @staticmethod
    def uninstall(sim: Any) -> None:
        sim.profiler = None

    # ------------------------------------------------------------------
    def dispatch(self, fn: Callable[..., None], args: Tuple[Any, ...]) -> None:
        """Run ``fn(*args)`` and attribute the event.

        Called by the engine's profiled dispatch loop; the engine has
        already popped the event and advanced the clock.
        """
        if self.timing:
            start = time.perf_counter()  # lint: disable=determinism-wallclock(profiler wall time is offline metadata, never sim-visible)
            fn(*args)
            wall = time.perf_counter() - start  # lint: disable=determinism-wallclock(profiler wall time is offline metadata, never sim-visible)
        else:
            fn(*args)
            wall = 0.0
        self.events += 1
        kind = getattr(fn, "__qualname__", None)
        if kind is None:
            kind = type(fn).__name__
        owner = getattr(fn, "__self__", None)
        source = getattr(owner, "name", None) if owner is not None else None
        if not isinstance(source, str) or not source:
            source = "(callback)"
        subsystem = _subsystem(source)
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        self.by_source[source] = self.by_source.get(source, 0) + 1
        self.by_subsystem[subsystem] = self.by_subsystem.get(subsystem, 0) + 1
        if self.timing:
            self.wall_by_kind[kind] = self.wall_by_kind.get(kind, 0.0) + wall
            self.wall_by_subsystem[subsystem] = (
                self.wall_by_subsystem.get(subsystem, 0.0) + wall
            )

    # ------------------------------------------------------------------
    def merge_from(self, other: "EngineProfiler") -> "EngineProfiler":
        """Fold another profiler's buckets into this one (sweep merges)."""
        self.events += other.events
        for mine, theirs in (
            (self.by_kind, other.by_kind),
            (self.by_source, other.by_source),
            (self.by_subsystem, other.by_subsystem),
        ):
            for key, count in theirs.items():
                mine[key] = mine.get(key, 0) + count
        for mine_w, theirs_w in (
            (self.wall_by_kind, other.wall_by_kind),
            (self.wall_by_subsystem, other.wall_by_subsystem),
        ):
            for key, wall in theirs_w.items():
                mine_w[key] = mine_w.get(key, 0.0) + wall
        return self

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able state (counts always; wall only when timed)."""
        payload: Dict[str, Any] = {
            "events": self.events,
            "by_kind": dict(sorted(self.by_kind.items())),
            "by_source": dict(sorted(self.by_source.items())),
            "by_subsystem": dict(sorted(self.by_subsystem.items())),
        }
        if self.timing:
            payload["wall_by_kind"] = dict(sorted(self.wall_by_kind.items()))
            payload["wall_by_subsystem"] = dict(
                sorted(self.wall_by_subsystem.items())
            )
        return payload

    # ------------------------------------------------------------------
    def _render_counts(
        self, title: str, counts: Dict[str, int],
        walls: Optional[Dict[str, float]], limit: int,
    ) -> List[str]:
        total = self.events or 1
        lines = [f"{title}:"]
        header = f"  {'name':<32} {'events':>10} {'%':>6}"
        if walls is not None:
            header += f" {'wall_s':>10}"
        lines.append(header)
        rows = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        for name, count in rows[:limit]:
            line = f"  {name:<32} {count:>10} {100.0 * count / total:>6.1f}"
            if walls is not None:
                line += f" {walls.get(name, 0.0):>10.4f}"
            lines.append(line)
        dropped = max(0, len(rows) - limit)
        if dropped:
            lines.append(f"  ... {dropped} more row(s) not shown")
        return lines

    def render(self, limit: int = 20, include_wall: bool = False) -> str:
        """The "what to shard" report.

        Counts only by default — byte-identical across fixed-seed
        reruns.  ``include_wall=True`` (requires ``timing=True``) adds
        host wall-clock columns for interactive use.
        """
        wall_kind = self.wall_by_kind if include_wall and self.timing else None
        wall_sub = (
            self.wall_by_subsystem if include_wall and self.timing else None
        )
        sections = [
            f"engine profile: {self.events} events dispatched",
            "",
        ]
        sections.extend(self._render_counts(
            "by subsystem (shard candidates)", self.by_subsystem,
            wall_sub, limit,
        ))
        sections.append("")
        sections.extend(self._render_counts(
            "by event kind", self.by_kind, wall_kind, limit,
        ))
        sections.append("")
        sections.extend(self._render_counts(
            "by task source", self.by_source, None, limit,
        ))
        return "\n".join(sections)
