"""Sim-time spans: durations with parents, layered on the flat tracer.

A :class:`Span` is a named interval of simulated time with an optional
parent link and free-form attributes — the unit the thesis's evaluation
is built from (per-phase migration breakdowns, the 56 ms host-selection
time, RPC round trips).  A :class:`SpanTracer` allocates span ids,
keeps every finished span, and mirrors each finished span into the
underlying :class:`~repro.sim.trace.Tracer` as a ``"span"`` record so
span data rides the same stream tests and exporters already consume.

Cost model (the PR-1 invariant): spans are **disabled by default** and
every instrumentation site in the library is guarded by
``if spans.enabled:`` — a disabled run pays one attribute load and one
branch per site, nothing else.  ``tools/check_trace_guards.py`` enforces
the guard statically.  Enabling the tracer alone does *not* enable
spans (so PR 1's golden fixed-seed trace is unchanged); span emission
is switched on explicitly, normally via
:meth:`repro.obs.ClusterObservability.install` or the ``repro trace``
CLI.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

from ..sim.trace import Tracer

__all__ = [
    "Span",
    "SpanTracer",
    "SPAN_KIND",
    "SPAN_CATALOGUE",
    "MIG_MIGRATE",
    "MIG_NEGOTIATE",
    "MIG_VM_PRE",
    "MIG_WAIT_SAFE_POINT",
    "MIG_FREEZE",
    "MIG_COMMIT",
    "MIG_VM_TRANSFER",
    "MIG_STATE_PACK",
    "MIG_STREAMS",
    "MIG_INSTALL",
    "MIG_COMMIT_RPC",
    "MIG_UPDATE_HOME",
    "EVICT_RECLAIM",
    "SELECT_REQUEST",
    "KERNEL_FORWARD",
    "RPC_CALL",
    "RPC_SERVE",
    "FAULT_OUTAGE",
    "FAULT_SUSPECT",
    "CKPT_CHECKPOINT",
    "CKPT_WRITE",
    "CKPT_RESTORE",
]

#: Trace-record kind under which finished spans are mirrored.
SPAN_KIND = "span"

# ----------------------------------------------------------------------
# Span-name catalogue
# ----------------------------------------------------------------------
# Every span the library emits is named here, once.  Downstream
# analysis — the critical-path attribution in :mod:`.critpath`, the
# migration breakdowns in :mod:`.export` — keys on these strings, so a
# silently drifting phase name would corrupt attribution without
# failing any single-layer test.  The ``obs-span-catalogue`` lint rule
# (``python -m repro lint``) requires span names at ``SpanTracer.start``
# / ``SpanTracer.record`` call sites to resolve to a member of
# :data:`SPAN_CATALOGUE`.

#: Migration lifecycle root and its contiguous phase children.
MIG_MIGRATE = "mig.migrate"
MIG_NEGOTIATE = "mig.negotiate"
MIG_VM_PRE = "mig.vm_pre"
MIG_WAIT_SAFE_POINT = "mig.wait_safe_point"
MIG_FREEZE = "mig.freeze"
MIG_COMMIT = "mig.commit"

#: Transfer sub-steps (siblings of the phases, parented on the root).
MIG_VM_TRANSFER = "mig.vm_transfer"
MIG_STATE_PACK = "mig.state_pack"
MIG_STREAMS = "mig.streams"
MIG_INSTALL = "mig.install"
MIG_COMMIT_RPC = "mig.commit_rpc"
MIG_UPDATE_HOME = "mig.update_home"

#: Other instrumented subsystems.
EVICT_RECLAIM = "evict.reclaim"
SELECT_REQUEST = "select.request"
KERNEL_FORWARD = "kernel.forward"
RPC_CALL = "rpc.call"
RPC_SERVE = "rpc.serve"
FAULT_OUTAGE = "fault.outage"
#: Suspicion interval of the accrual failure detector: opens when a
#: host is declared dead, closes when the host reconciles (reappears).
FAULT_SUSPECT = "fault.suspect"

#: Checkpoint/restart lifecycle (``repro.checkpoint``): one checkpoint
#: of one process (root), the backing-file image write inside it, and
#: a crash-triggered restore on a surviving host.
CKPT_CHECKPOINT = "ckpt.checkpoint"
CKPT_WRITE = "ckpt.write"
CKPT_RESTORE = "ckpt.restore"

#: The registered span names; membership is lint-enforced at emit sites.
SPAN_CATALOGUE = frozenset({
    MIG_MIGRATE,
    MIG_NEGOTIATE,
    MIG_VM_PRE,
    MIG_WAIT_SAFE_POINT,
    MIG_FREEZE,
    MIG_COMMIT,
    MIG_VM_TRANSFER,
    MIG_STATE_PACK,
    MIG_STREAMS,
    MIG_INSTALL,
    MIG_COMMIT_RPC,
    MIG_UPDATE_HOME,
    EVICT_RECLAIM,
    SELECT_REQUEST,
    KERNEL_FORWARD,
    RPC_CALL,
    RPC_SERVE,
    FAULT_OUTAGE,
    FAULT_SUSPECT,
    CKPT_CHECKPOINT,
    CKPT_WRITE,
    CKPT_RESTORE,
})


class Span:
    """One named interval of simulated time."""

    __slots__ = ("tracer", "name", "source", "sid", "parent_sid", "start",
                 "end", "attrs")

    def __init__(
        self,
        tracer: "SpanTracer",
        name: str,
        source: str,
        sid: int,
        parent_sid: Optional[int],
        start: float,
        attrs: Dict[str, Any],
    ):
        self.tracer = tracer
        self.name = name
        self.source = source
        self.sid = sid
        self.parent_sid = parent_sid
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Seconds of simulated time covered (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def finished(self) -> bool:
        return self.end is not None

    def annotate(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def child(self, name: str, t: Optional[float] = None, **attrs: Any) -> "Span":
        """Open a child span (same source)."""
        return self.tracer.start(name, self.source, parent=self, t=t, **attrs)

    def finish(self, t: Optional[float] = None, **attrs: Any) -> "Span":
        """Close the span at time ``t`` (idempotent)."""
        if self.end is None:
            if attrs:
                self.attrs.update(attrs)
            self.tracer._finish(self, t)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "source": self.source,
            "sid": self.sid,
            "parent": self.parent_sid,
            "start": self.start,
            "end": self.end,
            "dur": self.duration,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        state = f"{self.duration:.6f}s" if self.finished else "open"
        return f"<Span {self.name} #{self.sid} {state}>"


class SpanTracer:
    """Span factory and store; one per :class:`Tracer` (cluster-wide)."""

    def __init__(self, tracer: Tracer):
        self.tracer = tracer
        #: Master switch.  Off by default; instrumentation sites guard
        #: on this, so a disabled run never allocates a span.
        self.enabled = False
        #: Optional sim-clock callable used when ``t`` is omitted.
        self.clock: Optional[Callable[[], float]] = None
        self._seq = itertools.count(1)
        self.open: Dict[int, Span] = {}
        self.finished: List[Span] = []

    # ------------------------------------------------------------------
    @classmethod
    def for_tracer(cls, tracer: Tracer) -> "SpanTracer":
        """The (single) span tracer bound to ``tracer``, creating it on
        first use.  Every component holding the cluster's tracer gets
        the same instance, so span ids and parent links are global."""
        spans = getattr(tracer, "_span_tracer", None)
        if spans is None:
            spans = cls(tracer)
            tracer._span_tracer = spans  # type: ignore[attr-defined]
        return spans

    # ------------------------------------------------------------------
    def _now(self, t: Optional[float]) -> float:
        if t is not None:
            return t
        if self.clock is not None:
            return self.clock()
        raise ValueError("span time required: pass t= or set SpanTracer.clock")

    def start(
        self,
        name: str,
        source: str,
        parent: Optional[Span] = None,
        t: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span starting at ``t`` (or the clock's now)."""
        span = Span(
            self, name, source, next(self._seq),
            parent.sid if parent is not None else None,
            self._now(t), attrs,
        )
        self.open[span.sid] = span
        return span

    def record(
        self,
        name: str,
        source: str,
        start: float,
        end: float,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-completed span (explicit boundaries).

        The shape the migration mechanism uses: phase boundaries are
        known sim times, so the span is born finished and no open-span
        bookkeeping is needed on exception paths.
        """
        span = Span(
            self, name, source, next(self._seq),
            parent.sid if parent is not None else None,
            start, attrs,
        )
        span.end = end
        self._store(span)
        return span

    def _finish(self, span: Span, t: Optional[float]) -> None:
        span.end = self._now(t)
        if span.end < span.start:
            raise ValueError(
                f"span {span.name!r} finished before it started "
                f"({span.end} < {span.start})"
            )
        self.open.pop(span.sid, None)
        self._store(span)

    def _store(self, span: Span) -> None:
        self.finished.append(span)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                span.end,
                span.source,
                SPAN_KIND,
                name=span.name,
                sid=span.sid,
                parent=span.parent_sid,
                start=span.start,
                dur=span.end - span.start,
                **span.attrs,
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def named(self, name: str) -> List[Span]:
        return [s for s in self.finished if s.name == name]

    def roots(self) -> List[Span]:
        return [s for s in self.finished if s.parent_sid is None]

    def children_of(self, span: Span) -> List[Span]:
        sid = span.sid
        return [s for s in self.finished if s.parent_sid == sid]

    def clear(self) -> None:
        self.open.clear()
        self.finished.clear()

    def __len__(self) -> int:
        return len(self.finished)
