"""Causal critical-path analysis over finished spans.

The thesis's evaluation is a *cost breakdown*: migration time decomposed
into negotiation, virtual-memory shipping, state packaging, and RPC
components.  The span layer records all of those; this module answers
the question the raw spans cannot: **what made this migration (or this
run) slow?**

Two causal edge kinds connect the spans into a DAG:

* **parent links** — a span's ``parent_sid``, set at emission (phases
  and transfer sub-steps hang off their ``mig.migrate`` root);
* **cross-host RPC edges** — every ``rpc.serve`` span carries the
  ``caller_sid`` of the ``rpc.call`` span that caused it (tagged at
  :class:`~repro.net.rpc.RpcPort`), so server-side work is attributed
  to the client-side call that waited on it.

Everything here is pure sim-time arithmetic over finished spans — no
wall clock, no randomness — so every report is byte-identical across
fixed-seed reruns and across sweep worker counts.

Attribution contract
--------------------
:func:`migration_critical_paths` emits one row per ``mig.migrate``
root.  The row's phases are the contiguous phase children (see
:data:`~repro.obs.export.MIGRATION_PHASES`), so their durations
partition ``MigrationRecord.total_time``; within each phase, part
seconds plus the explicit ``(self)`` remainder sum *exactly* to the
phase duration by construction (the remainder is computed as the
difference).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .export import MIGRATION_PHASES
from .spans import MIG_MIGRATE, RPC_CALL, RPC_SERVE, Span

__all__ = [
    "Attribution",
    "PhaseCritPath",
    "MigrationCritPath",
    "CritSegment",
    "SpanIndex",
    "migration_critical_paths",
    "run_critical_path",
    "critical_path_profile",
    "render_attribution_table",
    "render_run_path",
    "critpath_report",
]


# ----------------------------------------------------------------------
# Graph index
# ----------------------------------------------------------------------
class SpanIndex:
    """Finished spans indexed by sid, parent link, and RPC causal edge."""

    def __init__(self, spans: Sequence[Span]):
        self.spans: List[Span] = [s for s in spans if s.finished]
        self.by_sid: Dict[int, Span] = {s.sid: s for s in self.spans}
        self.children: Dict[int, List[Span]] = {}
        #: caller ``rpc.call`` sid -> the ``rpc.serve`` spans it caused.
        self.serves: Dict[int, List[Span]] = {}
        for span in self.spans:
            if span.parent_sid is not None:
                self.children.setdefault(span.parent_sid, []).append(span)
            if span.name == RPC_SERVE:
                caller = span.attrs.get("caller_sid")
                if caller is not None:
                    self.serves.setdefault(caller, []).append(span)
        for kids in self.children.values():
            kids.sort(key=lambda s: (s.start, s.sid))
        for kids in self.serves.values():
            kids.sort(key=lambda s: (s.start, s.sid))

    # ------------------------------------------------------------------
    def effective_parent(self, span: Span) -> Optional[Span]:
        """The causal parent: the span's parent link, or — for an
        ``rpc.serve`` span — the ``rpc.call`` that caused it."""
        if span.parent_sid is not None:
            return self.by_sid.get(span.parent_sid)
        if span.name == RPC_SERVE:
            caller = span.attrs.get("caller_sid")
            if caller is not None:
                return self.by_sid.get(caller)
        return None

    def depth(self, span: Span) -> int:
        """Causal depth (roots are 0); cycles are impossible because
        every edge points at an earlier-allocated sid."""
        depth = 0
        current: Optional[Span] = span
        while current is not None:
            current = self.effective_parent(current)
            if current is None:
                break
            depth += 1
        return depth

    def calls_from(self, host: str) -> List[Span]:
        """``rpc.call`` spans originating on ``host`` (by node name)."""
        source = f"rpc:{host}"
        return [s for s in self.spans
                if s.name == RPC_CALL and s.source == source]


# ----------------------------------------------------------------------
# Attribution rows
# ----------------------------------------------------------------------
@dataclass
class Attribution:
    """One critical-path component of a phase."""

    label: str          #: span name (``rpc.call(service)`` for calls) or ``(self)``
    seconds: float
    #: For parts backed by RPC calls: server-side seconds (from the
    #: linked ``rpc.serve`` spans) and the wire/wait remainder.
    serve_seconds: float = 0.0
    detail: str = ""


@dataclass
class PhaseCritPath:
    """One migration phase with its exact attribution."""

    phase: str          #: short phase name (``negotiate``, ``freeze`` …)
    seconds: float
    parts: List[Attribution] = field(default_factory=list)

    def parts_total(self) -> float:
        return sum(p.seconds for p in self.parts)


@dataclass
class MigrationCritPath:
    """The paper-style latency attribution for one migration."""

    pid: Optional[int]
    source: Optional[int]
    target: Optional[int]
    reason: Optional[str]
    refused: bool
    started: float
    ended: float
    phases: List[PhaseCritPath] = field(default_factory=list)

    @property
    def total(self) -> float:
        """Sum of the phase durations — the partitioned total."""
        return sum(p.seconds for p in self.phases)


def _clip(span: Span, lo: float, hi: float) -> Optional[Tuple[float, float]]:
    start = max(span.start, lo)
    end = min(span.end if span.end is not None else lo, hi)
    if end <= start:
        return None
    return (start, end)


def _sweep(
    interval: Tuple[float, float],
    covers: List[Tuple[Span, float, float, int]],
) -> Dict[int, float]:
    """Partition ``interval`` among clipped ``covers`` (priority wins).

    ``covers`` holds ``(span, clipped_start, clipped_end, tier)``;
    returns seconds per covering span sid.  Elementary sub-intervals
    are cut at every cover boundary; each is assigned to the covering
    span with the highest tier, then latest start, then earliest end,
    then highest sid — i.e. the highest-priority, most tightly nested
    one — so overlapping covers never double count and the assignment
    is deterministic.
    """
    lo, hi = interval
    bounds = {lo, hi}
    for _span, start, end, _tier in covers:
        bounds.add(start)
        bounds.add(end)
    cuts = sorted(bounds)
    assigned: Dict[int, float] = {}
    for left, right in zip(cuts, cuts[1:]):
        winner: Optional[Tuple[int, float, float, int]] = None
        winner_sid = None
        for span, start, end, tier in covers:
            if start <= left and end >= right:
                rank = (tier, start, -end, span.sid)
                if winner is None or rank > winner:
                    winner = rank
                    winner_sid = span.sid
        if winner_sid is not None:
            assigned[winner_sid] = assigned.get(winner_sid, 0.0) + (right - left)
    return assigned


def _rpc_detail(
    index: SpanIndex, call: Span
) -> Tuple[float, str]:
    """Server-side seconds and a rendered detail for one ``rpc.call``."""
    serve_seconds = sum(s.duration for s in index.serves.get(call.sid, ()))
    outcome = call.attrs.get("outcome", "?")
    dst = call.attrs.get("dst")
    if serve_seconds > 0.0:
        wire = max(0.0, call.duration - serve_seconds)
        detail = (f"dst={dst} serve={serve_seconds:.6f}s "
                  f"wire+wait={wire:.6f}s {outcome}")
    else:
        detail = f"dst={dst} {outcome}"
    return serve_seconds, detail


def migration_critical_paths(spans: Sequence[Span]) -> List[MigrationCritPath]:
    """Per-migration critical-path attribution rows.

    For every ``mig.migrate`` root: its phase children partition the
    total; within each phase, elementary intervals are attributed
    deepest-wins to the transfer sub-steps (``mig.vm_transfer``,
    ``mig.state_pack``, …) and, where no sub-step covers, to the
    ``rpc.call`` spans issued from the migration's host; whatever
    remains is the phase's own ``(self)`` time — so each phase's parts
    sum exactly to its duration.
    """
    index = SpanIndex(spans)
    rows: List[MigrationCritPath] = []
    for root in sorted(
        (s for s in index.spans if s.name == MIG_MIGRATE),
        key=lambda s: (s.start, s.sid),
    ):
        host = root.source.split(":", 1)[-1]
        kids = index.children.get(root.sid, [])
        phase_spans = {s.name: s for s in kids if s.name in MIGRATION_PHASES}
        substeps = [s for s in kids if s.name not in MIGRATION_PHASES]
        host_calls = index.calls_from(host)
        row = MigrationCritPath(
            pid=root.attrs.get("pid"),
            source=root.attrs.get("src"),
            target=root.attrs.get("dst"),
            reason=root.attrs.get("reason"),
            refused=bool(root.attrs.get("refused", False)),
            started=root.start,
            ended=root.end if root.end is not None else root.start,
        )
        for name in MIGRATION_PHASES:
            phase = phase_spans.get(name)
            short = name.split(".", 1)[1]
            if phase is None:
                row.phases.append(PhaseCritPath(phase=short, seconds=0.0))
                continue
            interval = (phase.start, phase.end)
            crit = PhaseCritPath(phase=short, seconds=phase.duration)
            # Tier 1: the migration's own transfer sub-steps (they carry
            # the paper's row labels, so they win over the RPC calls
            # they wrap).  Tier 0: RPC calls from this host fill what
            # tier 1 left uncovered (e.g. negotiate is pure RPC).
            substep_sids = {s.sid for s in substeps}
            covers = [
                (s, c[0], c[1], 1) for s in substeps
                if (c := _clip(s, *interval)) is not None
            ] + [
                (s, c[0], c[1], 0) for s in host_calls
                if (c := _clip(s, *interval)) is not None
            ]
            assigned = _sweep(interval, covers)
            parts: List[Attribution] = []
            for span in substeps:
                seconds = assigned.get(span.sid, 0.0)
                if seconds <= 0.0:
                    continue
                calls_inside = [
                    c for c in host_calls
                    if c.start >= span.start and c.end <= span.end
                ]
                serve_seconds = 0.0
                details = []
                for call in calls_inside:
                    serve, _detail = _rpc_detail(index, call)
                    serve_seconds += serve
                    details.append(call.attrs.get("service", "?"))
                parts.append(Attribution(
                    label=span.name,
                    seconds=seconds,
                    serve_seconds=serve_seconds,
                    detail=f"rpc: {', '.join(details)}" if details else "",
                ))
            for span in host_calls:
                if span.sid in substep_sids:
                    continue
                seconds = assigned.get(span.sid, 0.0)
                if seconds <= 0.0:
                    continue
                serve_seconds, detail = _rpc_detail(index, span)
                parts.append(Attribution(
                    label=f"rpc.call({span.attrs.get('service', '?')})",
                    seconds=seconds,
                    serve_seconds=serve_seconds,
                    detail=detail,
                ))
            parts.sort(key=lambda p: (-p.seconds, p.label))
            remainder = crit.seconds - sum(p.seconds for p in parts)
            if parts and remainder < 0.0:
                # Float-sum epsilon: fold it into the largest part so
                # the partition stays exact.
                parts[0].seconds += remainder
                remainder = 0.0
            parts.append(Attribution(label="(self)", seconds=remainder))
            crit.parts = parts
            row.phases.append(crit)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Whole-run critical path
# ----------------------------------------------------------------------
@dataclass
class CritSegment:
    """One maximal interval during which a single span was deepest."""

    start: float
    end: float
    label: str      #: span name, or ``(idle)`` when nothing was active
    source: str

    @property
    def seconds(self) -> float:
        return self.end - self.start


def run_critical_path(spans: Sequence[Span]) -> List[CritSegment]:
    """The run's critical path: at every instant, the causally deepest
    active span (parent links + RPC edges).

    Returns maximal constant-winner segments covering the run's extent
    (first span start to last span end), including explicit ``(idle)``
    segments where no span was active.  Deterministic: ties break by
    depth, then latest start, then highest sid.
    """
    index = SpanIndex(spans)
    if not index.spans:
        return []
    depths = {s.sid: index.depth(s) for s in index.spans}
    bounds = sorted({b for s in index.spans for b in (s.start, s.end)})
    segments: List[CritSegment] = []
    for left, right in zip(bounds, bounds[1:]):
        if right <= left:
            continue
        winner: Optional[Span] = None
        winner_rank: Optional[Tuple[int, float, int]] = None
        for span in index.spans:
            if span.start <= left and span.end >= right:
                rank = (depths[span.sid], span.start, span.sid)
                if winner_rank is None or rank > winner_rank:
                    winner_rank = rank
                    winner = span
        if winner is None:
            label, source = "(idle)", "-"
        else:
            label, source = winner.name, winner.source
        if segments and segments[-1].label == label and segments[-1].source == source:
            segments[-1].end = right
        else:
            segments.append(CritSegment(left, right, label, source))
    return segments


def critical_path_profile(
    segments: Sequence[CritSegment],
) -> List[Tuple[str, float, int]]:
    """Rollup: seconds and segment count on the critical path per span
    name, sorted by seconds descending (name ascending on ties)."""
    groups: Dict[str, Tuple[float, int]] = {}
    for segment in segments:
        seconds, count = groups.get(segment.label, (0.0, 0))
        groups[segment.label] = (seconds + segment.seconds, count + 1)
    return sorted(
        ((name, seconds, count) for name, (seconds, count) in groups.items()),
        key=lambda row: (-row[1], row[0]),
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_attribution_table(rows: Sequence[MigrationCritPath]) -> str:
    """The paper-style per-migration latency attribution table."""
    count = len(rows)
    lines: List[str] = [
        f"critical-path attribution ({count} "
        f"migration{'' if count == 1 else 's'}):",
        "",
    ]
    for row in rows:
        status = "refused" if row.refused else "ok"
        lines.append(
            f"migration pid={row.pid} {row.source}->{row.target} "
            f"reason={row.reason} ({status}) total={row.total:.6f}s"
        )
        lines.append(f"  {'phase':<16} {'part':<28} {'seconds':>10} {'%':>6}")
        total = row.total or 1.0
        for phase in row.phases:
            if phase.seconds == 0.0 and not phase.parts:
                lines.append(f"  {phase.phase:<16} {'(skipped)':<28} "
                             f"{0.0:>10.6f} {0.0:>6.1f}")
                continue
            first = True
            for part in phase.parts:
                head = phase.phase if first else ""
                first = False
                share = 100.0 * part.seconds / total
                suffix = f"  [{part.detail}]" if part.detail else ""
                lines.append(
                    f"  {head:<16} {part.label:<28} {part.seconds:>10.6f} "
                    f"{share:>6.1f}{suffix}"
                )
            lines.append(
                f"  {'':<16} {'= ' + phase.phase:<28} {phase.seconds:>10.6f} "
                f"{100.0 * phase.seconds / total:>6.1f}"
            )
        lines.append("")
    if not rows:
        lines.append("(no migrations in trace)")
    return "\n".join(lines).rstrip("\n")


def render_run_path(
    segments: Sequence[CritSegment], limit: int = 40
) -> str:
    """Rollup table plus the first ``limit`` critical-path segments."""
    lines = ["critical-path profile (whole run):",
             f"  {'span':<24} {'crit_s':>10} {'segments':>9}"]
    for name, seconds, count in critical_path_profile(segments):
        lines.append(f"  {name:<24} {seconds:>10.6f} {count:>9}")
    lines.append("")
    lines.append(f"critical-path segments (first {limit}):")
    for segment in list(segments)[:limit]:
        lines.append(
            f"  {segment.start:>12.6f} .. {segment.end:>12.6f} "
            f"{segment.seconds:>10.6f}s  {segment.label} [{segment.source}]"
        )
    dropped = max(0, len(segments) - limit)
    if dropped:
        lines.append(f"  ... {dropped} more segment(s) not shown")
    if not segments:
        lines.append("  (no finished spans)")
    return "\n".join(lines)


def critpath_report(spans: Sequence[Span], limit: int = 40) -> str:
    """The full deterministic report: attribution tables + run path."""
    rows = migration_critical_paths(spans)
    segments = run_critical_path(spans)
    return (
        render_attribution_table(rows)
        + "\n\n"
        + render_run_path(segments, limit=limit)
        + "\n"
    )
