"""Per-host and cluster-wide metrics: counters, gauges, timers, series.

The thesis's evaluation aggregates everything per host and per cluster
— migrations started/refused, forwarded kernel calls, RPC traffic by
service, freeze-time distributions, month-long load traces.  This
module is the registry those numbers live in:

* :class:`Counter` — monotone event counts, labelled by host address
  (``host=None`` is the cluster-wide/unlabelled series).
* :class:`Gauge` — last-value-wins instantaneous readings (load
  averages, queue depths).
* :class:`Timer` — duration accumulators backed by
  :class:`~repro.metrics.histogram.LatencyHistogram`, so percentile
  summaries come out without storing every sample.
* :class:`MetricsSampler` — polls registered probes on a sim-time
  interval and appends ``(time, value)`` points to the registry's time
  series, the shape the utilization plots consume.

The registry is pure bookkeeping: nothing here schedules events or
touches the simulation except the sampler, which follows the
load-average daemon's bare-callback pattern (no task frame per tick).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..metrics.histogram import LatencyHistogram

__all__ = ["Counter", "Gauge", "Timer", "MetricsRegistry", "MetricsSampler"]

#: Registry key: (metric name, host address or None for cluster-wide).
Key = Tuple[str, Optional[int]]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "host", "value")

    def __init__(self, name: str, host: Optional[int]):
        self.name = name
        self.host = host
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """An instantaneous reading (last value wins)."""

    __slots__ = ("name", "host", "value")

    def __init__(self, name: str, host: Optional[int]):
        self.name = name
        self.host = host
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Timer:
    """A duration accumulator with histogram-backed percentiles."""

    __slots__ = ("name", "host", "histogram")

    def __init__(self, name: str, host: Optional[int]):
        self.name = name
        self.host = host
        self.histogram = LatencyHistogram()

    def observe(self, seconds: float) -> None:
        self.histogram.add(seconds)

    def summary(self) -> Dict[str, float]:
        return self.histogram.summary()


class MetricsRegistry:
    """Get-or-create store for counters/gauges/timers plus time series."""

    def __init__(self) -> None:
        self.counters: Dict[Key, Counter] = {}
        self.gauges: Dict[Key, Gauge] = {}
        self.timers: Dict[Key, Timer] = {}
        #: Sampled time series: key -> [(sim_time, value), ...].
        self.series: Dict[Key, List[Tuple[float, float]]] = {}

    # ------------------------------------------------------------------
    # Get-or-create accessors
    # ------------------------------------------------------------------
    def counter(self, name: str, host: Optional[int] = None) -> Counter:
        key = (name, host)
        found = self.counters.get(key)
        if found is None:
            found = self.counters[key] = Counter(name, host)
        return found

    def gauge(self, name: str, host: Optional[int] = None) -> Gauge:
        key = (name, host)
        found = self.gauges.get(key)
        if found is None:
            found = self.gauges[key] = Gauge(name, host)
        return found

    def timer(self, name: str, host: Optional[int] = None) -> Timer:
        key = (name, host)
        found = self.timers.get(key)
        if found is None:
            found = self.timers[key] = Timer(name, host)
        return found

    # ------------------------------------------------------------------
    # Cluster-wide views
    # ------------------------------------------------------------------
    def total(self, name: str) -> int:
        """Sum of a counter across all host labels."""
        return sum(c.value for (n, _h), c in self.counters.items() if n == name)

    def merged_timer(self, name: str) -> LatencyHistogram:
        """All hosts' samples of one timer, merged into one histogram."""
        return LatencyHistogram.merge_all(
            timer.histogram
            for (n, _h), timer in self.timers.items()
            if n == name
        )

    def hosts_of(self, name: str) -> List[int]:
        """Host labels under which ``name`` has counter entries."""
        return sorted(
            h for (n, h) in self.counters if n == name and h is not None
        )

    # ------------------------------------------------------------------
    # Time series
    # ------------------------------------------------------------------
    def sample_point(
        self, name: str, host: Optional[int], time: float, value: float
    ) -> None:
        key = (name, host)
        points = self.series.get(key)
        if points is None:
            points = self.series[key] = []
        points.append((time, value))

    # ------------------------------------------------------------------
    # Cross-registry merges (sweep aggregation)
    # ------------------------------------------------------------------
    def merge_from(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry in place.

        Counters add; timers merge their histograms (via
        :meth:`LatencyHistogram.merge`, so bucket layouts must match —
        they always do for registries built by this library); series
        points append in call order; gauges are last-write-wins, so the
        *later* registry's reading survives.  Callers wanting a
        fingerprint-stable aggregate must fold registries in a
        deterministic order — :func:`repro.snapshot.sweep.forked_map`
        merges in cell-index order regardless of worker count.
        """
        for key, counter in other.counters.items():
            self.counter(*key).inc(counter.value)
        for key, gauge in other.gauges.items():
            self.gauge(*key).set(gauge.value)
        for key, timer in other.timers.items():
            self.timer(*key).histogram.merge(timer.histogram)
        for key, points in other.series.items():
            mine = self.series.get(key)
            if mine is None:
                mine = self.series[key] = []
            mine.extend(points)
        return self

    @classmethod
    def merge_all(cls, registries: Any) -> "MetricsRegistry":
        """A fresh registry holding the fold of ``registries`` (in
        iteration order)."""
        merged = cls()
        for registry in registries:
            if registry is not None:
                merged.merge_from(registry)
        return merged

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as plain JSON-able data."""

        def label(key: Key) -> str:
            name, host = key
            return name if host is None else f"{name}@{host}"

        return {
            "counters": {label(k): c.value for k, c in sorted(self.counters.items())},
            "gauges": {label(k): g.value for k, g in sorted(self.gauges.items())},
            "timers": {label(k): t.summary() for k, t in sorted(self.timers.items())},
            "series": {
                label(k): [[round(t, 6), v] for t, v in points]
                for k, points in sorted(self.series.items())
            },
        }


class MetricsSampler:
    """Polls probes into the registry's time series on a sim interval.

    Follows :class:`repro.kernel.loadavg.LoadAverage`'s pattern: a bare
    self-rescheduling callback, so each tick is one event with no task
    frame.  Like the load sampler, it keeps the event queue non-empty
    forever — drive bounded runs with ``run(until=...)`` or
    ``run_until_complete``, never an unbounded ``run()``.
    """

    def __init__(self, sim: Any, registry: MetricsRegistry, period: float = 5.0):
        if period <= 0:
            raise ValueError("sample period must be positive")
        self.sim = sim
        self.registry = registry
        self.period = period
        self.samples_taken = 0
        #: (name, host, zero-arg probe) triples polled every tick.
        self._probes: List[Tuple[str, Optional[int], Callable[[], float]]] = []
        self._started = False

    def add_probe(
        self, name: str, host: Optional[int], probe: Callable[[], float]
    ) -> None:
        self._probes.append((name, host, probe))

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.schedule(self.period, self._tick)

    def _tick(self) -> None:
        now = self.sim.now
        sample = self.registry.sample_point
        for name, host, probe in self._probes:
            sample(name, host, now, float(probe()))
        self.samples_taken += 1
        self.sim.schedule(self.period, self._tick)
