"""Workloads: the applications and traces the thesis evaluates with.

Parallel make (:mod:`.pmake`), independent simulation farms
(:mod:`.simfarm`), Zhou's process-lifetime distribution
(:mod:`.lifetimes`), diurnal user-activity traces (:mod:`.activity`),
and the end-to-end usage simulation (:mod:`.trace`).
"""

from .activity import ActivityDriver, ActivityModel, idle_fraction_by_hour
from .lifetimes import ZhouLifetimes, fit_hyperexponential
from .pmake import BuildTarget, Pmake, PmakeResult, SourceTree, build_job
from .simfarm import SimFarm, SimFarmResult, SimJobSpec, simulation_job
from .trace import UsageReport, UsageSimulation

__all__ = [
    "ActivityDriver",
    "ActivityModel",
    "BuildTarget",
    "Pmake",
    "PmakeResult",
    "SimFarm",
    "SimFarmResult",
    "SimJobSpec",
    "SourceTree",
    "UsageReport",
    "UsageSimulation",
    "ZhouLifetimes",
    "build_job",
    "fit_hyperexponential",
    "idle_fraction_by_hour",
    "simulation_job",
]
