"""Diurnal user-activity traces (ch. 8, experiment E9).

The availability results in the thesis — 65–70 % of hosts idle during
the day, ~80 % at night and on weekends — come from a month of tracing
real workstations.  We reproduce the statistics with a generative
model: each host's owner alternates *sessions* (at the console, typing)
and *absences*, with the session arrival rate modulated by hour of day
and day of week.

Two consumers:

* :meth:`ActivityModel.generate_intervals` produces the busy intervals
  analytically (pure numpy) for long horizons — benchmark E9 computes
  idle fractions from these without running the event loop.
* :class:`ActivityDriver` replays a trace into a live simulation,
  injecting ``user_input()`` events that drive availability and
  eviction for the end-to-end experiments (E10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Sequence, Tuple

import numpy as np

from ..kernel import Host
from ..sim import Effect, Sleep, spawn

__all__ = ["ActivityModel", "ActivityDriver", "idle_fraction_by_hour"]

DAY = 24 * 3600.0
WEEK = 7 * DAY


@dataclass
class ActivityModel:
    """Generates per-host (start, end) console-session intervals.

    ``day_busy_target`` / ``night_busy_target`` are the long-run
    fractions of time an average host's owner is active in each regime;
    defaults are tuned to land on the thesis's availability numbers
    (~32 % busy by day, ~18 % at night, less on weekends).
    """

    seed: int = 0
    session_mean: float = 20 * 60.0        # 20-minute sessions
    day_busy_target: float = 0.32
    night_busy_target: float = 0.18
    weekend_factor: float = 0.55           # weekends are this much busier than never
    day_start_hour: float = 9.0
    day_end_hour: float = 18.0

    def _gap_mean(self, t: float) -> float:
        """Mean absence duration at absolute trace time ``t``."""
        hour = (t % DAY) / 3600.0
        weekday = int(t // DAY) % 7 < 5
        daytime = self.day_start_hour <= hour < self.day_end_hour
        busy = self.day_busy_target if daytime else self.night_busy_target
        if not weekday:
            busy *= self.weekend_factor
        # busy = session / (session + gap)  =>  gap = session*(1-busy)/busy
        return self.session_mean * (1.0 - busy) / max(busy, 1e-3)

    def generate_intervals(
        self, host_index: int, duration: float, start: float = 0.0
    ) -> List[Tuple[float, float]]:
        """Busy intervals for one host over ``duration`` seconds."""
        rng = np.random.default_rng((self.seed << 16) ^ (host_index * 2654435761 % 2**31))
        intervals: List[Tuple[float, float]] = []
        t = start + float(rng.exponential(self._gap_mean(start)))
        end = start + duration
        while t < end:
            session = float(rng.exponential(self.session_mean))
            stop = min(t + session, end)
            intervals.append((t, stop))
            t = stop + float(rng.exponential(self._gap_mean(stop)))
        return intervals

    def busy_fraction(
        self, intervals: Sequence[Tuple[float, float]], window: Tuple[float, float]
    ) -> float:
        lo, hi = window
        busy = 0.0
        for start, stop in intervals:
            busy += max(0.0, min(stop, hi) - max(start, lo))
        return busy / (hi - lo) if hi > lo else 0.0


def idle_fraction_by_hour(
    model: ActivityModel,
    hosts: int,
    days: int,
    grace: float = 300.0,
) -> np.ndarray:
    """Mean fraction of hosts idle for each hour of the day (E9's curve).

    ``grace`` extends each busy interval: a host is 'available' only
    after the input-idle threshold passes, so short gaps inside a
    session do not count as idleness (matches the kernel's criterion).
    """
    duration = days * DAY
    hour_busy = np.zeros(24)
    hour_span = np.zeros(24)
    for index in range(hosts):
        intervals = [
            (start, min(stop + grace, duration))
            for start, stop in model.generate_intervals(index, duration)
        ]
        for day in range(days):
            for hour in range(24):
                window = (day * DAY + hour * 3600.0, day * DAY + (hour + 1) * 3600.0)
                hour_busy[hour] += model.busy_fraction(intervals, window)
                hour_span[hour] += 1.0
    return 1.0 - hour_busy / np.maximum(hour_span, 1.0)


class ActivityDriver:
    """Replays an activity trace into a live simulation.

    During each busy interval the driver marks the user present and
    injects input every few seconds (defeating the idle-input
    criterion and triggering eviction of any foreign processes).
    """

    def __init__(
        self,
        host: Host,
        intervals: Sequence[Tuple[float, float]],
        input_period: float = 5.0,
        start: bool = True,
    ):
        self.host = host
        self.intervals = sorted(intervals)
        self.input_period = input_period
        if start:
            spawn(
                host.sim,
                self._replay(),
                name=f"activity:{host.name}",
                daemon=True,
            )

    def _replay(self) -> Generator[Effect, None, None]:
        for start, stop in self.intervals:
            delay = start - self.host.sim.now
            if delay > 0:
                yield Sleep(delay)
            while self.host.sim.now < stop:
                self.host.user_input()
                yield Sleep(min(self.input_period, max(stop - self.host.sim.now, 0.01)))
            self.host.user_leaves()
