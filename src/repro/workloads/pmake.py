"""Parallel make (``pmake``) — the thesis's flagship workload (ch. 7).

``pmake`` builds a dependency graph, finds independent out-of-date
targets, and recreates them in parallel on hosts granted by the
selection facility [Fel79, RE87].  The reproduction models a compile
job faithfully at the file-system level: read the source and headers
through the client cache, burn compiler CPU, write the object file.
Every job is an exec of ``/bin/cc`` on (usually) another host, so the
file server's name lookups and the sequential link step bound the
speedup, exactly as the thesis reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import networkx as nx

from ..config import KB
from ..fs import OpenMode
from ..kernel import UserContext
from ..loadsharing import MigClient
from ..sim import Effect

__all__ = ["BuildTarget", "SourceTree", "Pmake", "PmakeResult"]


@dataclass
class BuildTarget:
    """One node in the dependency graph."""

    name: str
    inputs: List[str]
    output: str
    cpu_seconds: float
    read_bytes: int
    write_bytes: int
    kind: str = "compile"            # "compile" | "link"


class SourceTree:
    """A synthetic program source tree and its build graph."""

    def __init__(
        self,
        files: int = 12,
        root: str = "/src/prog",
        compile_cpu: float = 8.0,
        link_cpu: float = 4.0,
        src_bytes: int = 24 * KB,
        header_bytes: int = 16 * KB,
        obj_bytes: int = 20 * KB,
        shared_headers: int = 3,
        libs: int = 0,
        archive_cpu: float = 1.5,
    ):
        """``libs > 0`` groups objects into that many library archives
        between the compiles and the link — the deeper dependency chains
        of real multi-directory builds (compile → ar → ld)."""
        if files < 1:
            raise ValueError("need at least one source file")
        if libs > files:
            raise ValueError("cannot have more libraries than source files")
        self.root = root
        self.files = files
        self.compile_cpu = compile_cpu
        self.link_cpu = link_cpu
        self.src_bytes = src_bytes
        self.header_bytes = header_bytes
        self.obj_bytes = obj_bytes
        self.shared_headers = shared_headers
        self.libs = libs
        self.archive_cpu = archive_cpu
        self.graph = nx.DiGraph()
        self.targets: Dict[str, BuildTarget] = {}
        self._build_graph()

    def _build_graph(self) -> None:
        headers = [
            f"{self.root}/h{i}.h" for i in range(self.shared_headers)
        ]
        objects = []
        for i in range(self.files):
            src = f"{self.root}/f{i}.c"
            obj = f"{self.root}/f{i}.o"
            target = BuildTarget(
                name=f"compile:f{i}",
                inputs=[src] + headers,
                output=obj,
                cpu_seconds=self.compile_cpu,
                read_bytes=self.src_bytes + len(headers) * self.header_bytes,
                write_bytes=self.obj_bytes,
            )
            self.targets[target.name] = target
            self.graph.add_node(target.name)
            objects.append(obj)
        if self.libs > 0:
            link_inputs, link_deps = self._build_archives(objects)
        else:
            link_inputs = objects
            link_deps = [f"compile:f{i}" for i in range(self.files)]
        link = BuildTarget(
            name="link",
            inputs=link_inputs,
            output=f"{self.root}/prog",
            cpu_seconds=self.link_cpu,
            read_bytes=self.files * self.obj_bytes,
            write_bytes=self.files * self.obj_bytes,
            kind="link",
        )
        self.targets[link.name] = link
        self.graph.add_node(link.name)
        for dep in link_deps:
            self.graph.add_edge(dep, "link")
        assert nx.is_directed_acyclic_graph(self.graph)

    def _build_archives(self, objects: List[str]):
        """Group objects into library archives (the ``ar`` stage)."""
        link_inputs: List[str] = []
        link_deps: List[str] = []
        for lib_index in range(self.libs):
            members = objects[lib_index::self.libs]
            member_targets = [
                f"compile:f{i}" for i in range(lib_index, self.files, self.libs)
            ]
            archive_path = f"{self.root}/lib{lib_index}.a"
            archive = BuildTarget(
                name=f"archive:lib{lib_index}",
                inputs=members,
                output=archive_path,
                cpu_seconds=self.archive_cpu,
                read_bytes=len(members) * self.obj_bytes,
                write_bytes=len(members) * self.obj_bytes,
                kind="archive",
            )
            self.targets[archive.name] = archive
            self.graph.add_node(archive.name)
            for member in member_targets:
                self.graph.add_edge(member, archive.name)
            link_inputs.append(archive_path)
            link_deps.append(archive.name)
        return link_inputs, link_deps

    # ------------------------------------------------------------------
    def populate(self, cluster) -> None:
        """Create the sources/headers in the cluster's namespace."""
        for i in range(self.shared_headers):
            cluster.add_file(f"{self.root}/h{i}.h", size=self.header_bytes)
        for i in range(self.files):
            cluster.add_file(f"{self.root}/f{i}.c", size=self.src_bytes)

    def ready_after(self, done: set) -> List[str]:
        """Targets whose dependencies are all in ``done``."""
        return [
            name
            for name in self.graph.nodes
            if name not in done
            and all(dep in done for dep in self.graph.predecessors(name))
        ]

    def out_of_date(self, changed_files: Sequence[str]) -> set:
        """Targets needing a rebuild after ``changed_files`` changed.

        Exactly make's rule: a target is out of date if any input (or
        any input's producer) changed — i.e. the targets reading a
        changed file plus everything downstream in the graph.
        """
        changed = set(changed_files)
        dirty = {
            name
            for name, target in self.targets.items()
            if changed & set(target.inputs)
        }
        downstream = set()
        for name in dirty:
            downstream |= nx.descendants(self.graph, name)
        return dirty | downstream


def build_job(
    proc: UserContext, target: BuildTarget
) -> Generator[Effect, None, int]:
    """The body of one compile/link job (runs as its own process)."""
    for path in target.inputs:
        fd = yield from proc.open(path, OpenMode.READ)
        info = yield from proc.stat(path)
        yield from proc.read(fd, max(info["size"], 1))
        yield from proc.close(fd)
    yield from proc.compute(target.cpu_seconds)
    fd = yield from proc.open(target.output, OpenMode.WRITE | OpenMode.CREATE)
    yield from proc.write(fd, target.write_bytes)
    yield from proc.close(fd)
    return 0


@dataclass
class PmakeResult:
    elapsed: float
    targets_built: int
    remote_jobs: int
    local_jobs: int
    hosts_used: int
    detail: Dict[str, float] = field(default_factory=dict)

    def speedup_against(self, sequential_elapsed: float) -> float:
        return sequential_elapsed / self.elapsed if self.elapsed else 0.0


class Pmake:
    """The pmake coordinator: schedules the graph onto granted hosts."""

    def __init__(
        self,
        tree: SourceTree,
        client: Optional[MigClient] = None,
        max_jobs: int = 4,
        compiler_image: str = "/bin/cc",
        changed_files: Optional[Sequence[str]] = None,
    ):
        self.tree = tree
        self.client = client
        self.max_jobs = max_jobs
        self.compiler_image = compiler_image
        #: None = full build; else only the out-of-date subgraph
        #: (incremental rebuild, as make/pmake decide from timestamps).
        self.changed_files = changed_files

    def run(self, proc: UserContext) -> Generator[Effect, None, PmakeResult]:
        """Build everything out of date; call from the coordinator's context."""
        started = proc.now
        if self.changed_files is None:
            done: set = set()
        else:
            stale = self.tree.out_of_date(self.changed_files)
            done = set(self.tree.targets) - stale
        up_to_date = len(done)
        running: Dict[int, Tuple[str, Optional[int]]] = {}  # pid -> (target, host)
        free_slots: List[Optional[int]] = [None]            # local slot
        granted: List[int] = []
        remote_jobs = 0
        local_jobs = 0
        if self.client is not None and self.max_jobs > 1:
            granted = yield from self.client.acquire_hosts(self.max_jobs - 1)
            free_slots = list(granted) + [None]
        hosts_used = set()
        while len(done) < len(self.tree.targets):
            ready = [
                name for name in self.tree.ready_after(done)
                if name not in {t for t, _h in running.values()}
            ]
            while ready and free_slots:
                slot = free_slots.pop(0)
                name = ready.pop(0)
                target = self.tree.targets[name]
                pid = yield from proc.fork(
                    _job_wrapper, target, slot, self.compiler_image,
                    name=name,
                )
                running[pid] = (name, slot)
                if slot is None:
                    local_jobs += 1
                else:
                    remote_jobs += 1
                    hosts_used.add(slot)
            status = yield from proc.wait()
            name, slot = running.pop(status.pid)
            done.add(name)
            free_slots.append(slot)
        if self.client is not None and granted:
            yield from self.client.release_hosts(granted)
        return PmakeResult(
            elapsed=proc.now - started,
            targets_built=len(done) - up_to_date,
            remote_jobs=remote_jobs,
            local_jobs=local_jobs,
            hosts_used=len(hosts_used),
        )


def _job_wrapper(
    proc: UserContext,
    target: BuildTarget,
    slot: Optional[int],
    compiler_image: str,
) -> Generator[Effect, None, int]:
    """Child: exec the compiler (remotely when a host was granted)."""
    from ..migration import MigrationRefused

    if slot is not None:
        try:
            yield from proc.exec(
                build_job, target, host=slot,
                image_path=compiler_image, name=f"cc:{target.name}",
            )
        except MigrationRefused:
            pass
    yield from proc.exec(
        build_job, target, image_path=compiler_image, name=f"cc:{target.name}"
    )
