"""Independent simulation farms (ch. 7, experiment E6).

The thesis's second headline application: many independent simulator
runs with different parameters, farmed onto idle hosts.  Unlike pmake
there is no dependency structure and little file traffic, so the
*effective processor utilization* — total CPU consumed divided by
elapsed time — climbs past 800 % with enough hosts, against ~300 % for
the 12-way parallel compile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..config import KB
from ..fs import OpenMode
from ..kernel import UserContext
from ..loadsharing import MigClient
from ..sim import Effect

__all__ = ["SimJobSpec", "SimFarm", "SimFarmResult", "simulation_job"]


@dataclass
class SimJobSpec:
    """One simulator run: CPU demand plus a small result file."""

    index: int
    cpu_seconds: float = 100.0
    result_bytes: int = 4 * KB
    result_dir: str = "/results"


def simulation_job(
    proc: UserContext, spec: SimJobSpec
) -> Generator[Effect, None, int]:
    """Burn simulator CPU, then report the result to the shared FS."""
    yield from proc.use_memory(1024 * KB)
    yield from proc.compute(spec.cpu_seconds, dirty_bytes_per_second=2 * KB)
    fd = yield from proc.open(
        f"{spec.result_dir}/r{spec.index}.out", OpenMode.WRITE | OpenMode.CREATE
    )
    yield from proc.write(fd, spec.result_bytes)
    yield from proc.close(fd)
    return 0


@dataclass
class SimFarmResult:
    elapsed: float
    jobs: int
    total_cpu: float
    remote_jobs: int
    hosts_used: int

    @property
    def effective_utilization(self) -> float:
        """Total CPU-seconds per elapsed second, as a percentage."""
        return 100.0 * self.total_cpu / self.elapsed if self.elapsed else 0.0


class SimFarm:
    """Coordinator farming N independent simulations onto idle hosts."""

    def __init__(
        self,
        client: Optional[MigClient],
        jobs: int = 20,
        cpu_seconds: float = 100.0,
        simulator_image: str = "/bin/sim",
        max_hosts: Optional[int] = None,
    ):
        self.client = client
        self.specs = [SimJobSpec(index=i, cpu_seconds=cpu_seconds) for i in range(jobs)]
        self.simulator_image = simulator_image
        self.max_hosts = max_hosts

    def run(self, proc: UserContext) -> Generator[Effect, None, SimFarmResult]:
        started = proc.now
        total_cpu = sum(spec.cpu_seconds for spec in self.specs)
        if self.client is None:
            for spec in self.specs:
                pid = yield from proc.fork(simulation_job, spec, name=f"sim{spec.index}")
            yield from proc.wait_all()
            return SimFarmResult(
                elapsed=proc.now - started,
                jobs=len(self.specs),
                total_cpu=total_cpu,
                remote_jobs=0,
                hosts_used=1,
            )
        jobs = [
            (simulation_job, (spec,), f"sim{spec.index}") for spec in self.specs
        ]
        finished = yield from self.client.run_batch(
            proc,
            jobs,
            max_remote=self.max_hosts,
            image_path=self.simulator_image,
        )
        remote = [job for job in finished if job.target is not None and not job.fell_back_local]
        return SimFarmResult(
            elapsed=proc.now - started,
            jobs=len(finished),
            total_cpu=total_cpu,
            remote_jobs=len(remote),
            hosts_used=len({job.target for job in remote}) + 1,
        )
