"""Process-lifetime model from Zhou's trace study [Zho87].

Zhou traced a VAX-11/780 running 4.3BSD and measured process execution
times with mean 1.5 s and standard deviation 19.1 s — a heavy right
tail where most processes die young and a few run for minutes.  The
thesis leans on this distribution twice: it argues that *placement*
(exec-time migration) must be cheap because most processes are short,
and that only known-long-running processes are worth migrating once
active.

We fit a two-phase hyperexponential: with probability ``p`` a short
life (mean ``short_mean``), else a long one (mean ``long_mean``).
Matching the first two moments of (1.5, 19.1) gives approximately
p = 0.99, short mean 0.1515 s, long mean 135 s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

__all__ = ["ZhouLifetimes", "fit_hyperexponential"]


def fit_hyperexponential(
    mean: float, std: float, p_short: float = 0.99
) -> "tuple[float, float, float]":
    """Solve the moment equations; returns (p_short, short_mean, long_mean).

    ``p_short`` is treated as an upper bound: when the requested
    variance is unattainable at that mix, the tail is made rarer (p is
    raised) just enough to fit, and the effective p is returned.

    With X ~ p*Exp(m1) + (1-p)*Exp(m2):
      E[X]  = p*m1 + (1-p)*m2
      E[X²] = 2*(p*m1² + (1-p)*m2²)

    Substituting m1 out yields a quadratic in m2 which we solve exactly
    (taking the root with m2 > mean).  Requires a coefficient of
    variation >= 1, the regime where a hyperexponential is the right
    model (Zhou's data has CoV ≈ 12.7).
    """
    if std < mean:
        raise ValueError(
            f"hyperexponential needs std >= mean (got std={std}, mean={mean})"
        )
    second_moment = std * std + mean * mean
    # Feasibility: with mix probability p the largest attainable second
    # moment is 2*mean^2/q (at m1 -> 0).  Shrink q when the requested
    # variance needs a rarer, longer tail.
    q = 1.0 - p_short
    q_max = 2.0 * mean * mean / second_moment
    q = min(q, 0.9 * q_max)
    p = 1.0 - q
    # A*m2^2 + B*m2 + C = 0 with:
    coeff_a = q / p
    coeff_b = -2.0 * mean * q / p
    coeff_c = mean * mean / p - second_moment / 2.0
    disc = coeff_b * coeff_b - 4.0 * coeff_a * coeff_c
    if disc < 0:
        raise ValueError("moments not attainable with this mix probability")
    m2 = (-coeff_b + np.sqrt(disc)) / (2.0 * coeff_a)
    m1 = (mean - q * m2) / p
    if m1 <= 0:
        raise ValueError("moments not attainable with this mix probability")
    return float(p), float(m1), float(m2)


@dataclass
class ZhouLifetimes:
    """Sampler for process lifetimes (CPU-seconds of demand)."""

    mean: float = 1.5
    std: float = 19.1
    p_short: float = 0.99
    seed: int = 0

    def __post_init__(self) -> None:
        self.p_short, self.short_mean, self.long_mean = fit_hyperexponential(
            self.mean, self.std, self.p_short
        )
        self._rng = np.random.default_rng(self.seed)

    def sample(self) -> float:
        if self._rng.random() < self.p_short:
            return float(self._rng.exponential(self.short_mean))
        return float(self._rng.exponential(self.long_mean))

    def sample_many(self, n: int) -> np.ndarray:
        choices = self._rng.random(n) < self.p_short
        short = self._rng.exponential(self.short_mean, size=n)
        long_ = self._rng.exponential(self.long_mean, size=n)
        return np.where(choices, short, long_)

    def stream(self) -> Iterator[float]:
        while True:
            yield self.sample()

    def is_long_running(self, lifetime: float, threshold: Optional[float] = None) -> bool:
        """The thesis's policy cue: only migrate processes expected to
        live long; having survived ``threshold`` seconds is the signal
        ([Cab86]: long-lived processes are expected to live longer)."""
        threshold = 2.0 * self.mean if threshold is None else threshold
        return lifetime >= threshold
